"""Golden regression fixtures for the analytical cost model (tier 1).

One canonical mapping per Table 1 workload with its complete frozen
:class:`~repro.costmodel.stats.CostStats` lives in
``tests/golden/costmodel_golden.json``.  Both the scalar reference model
and the vectorized batch backend must keep reproducing every number —
per-tensor/per-level accesses and energies, NoC/MAC energy, cycles,
utilization, EDP.  This is the guard against *silent semantic drift*: a
rewrite that stays self-consistent (scalar/batch parity holds) but changes
what the model actually computes fails here.

To regenerate after an intentional model change:
``PYTHONPATH=src python tests/golden/generate_costmodel_golden.py``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.costmodel import CostModel, evaluate_batch, evaluate_megabatch
from repro.costmodel.accelerator import default_accelerator
from repro.mapspace.mapping import Mapping
from repro.workloads import TABLE1_PROBLEMS, problem_by_name

GOLDEN_PATH = Path(__file__).parent / "golden" / "costmodel_golden.json"
MEGABATCH_GOLDEN_PATH = Path(__file__).parent / "golden" / "megabatch_golden.json"

#: Tight tolerance: the fixtures were produced by this code on this
#: arithmetic; anything beyond a few ulps of platform noise is drift.
GOLDEN_RTOL = 1e-12

GOLDEN = json.loads(GOLDEN_PATH.read_text())

_ACCELERATOR = default_accelerator()
_MODEL = CostModel(_ACCELERATOR)


def test_fixture_covers_every_workload():
    assert set(GOLDEN["problems"]) == {p.name for p in TABLE1_PROBLEMS}


def test_fixture_matches_this_accelerator():
    assert GOLDEN["accelerator_fingerprint"] == _ACCELERATOR.fingerprint()


def _check_stats(stats, frozen):
    for tensor, level, accesses, energy_pj in frozen["records"]:
        np.testing.assert_allclose(
            stats.accesses_for(tensor, level), accesses, rtol=GOLDEN_RTOL
        )
        np.testing.assert_allclose(
            stats.energy_pj_for(tensor, level), energy_pj, rtol=GOLDEN_RTOL
        )
    assert len(stats.records) == len(frozen["records"])
    np.testing.assert_allclose(stats.noc_energy_pj, frozen["noc_energy_pj"], rtol=GOLDEN_RTOL)
    np.testing.assert_allclose(stats.mac_energy_pj, frozen["mac_energy_pj"], rtol=GOLDEN_RTOL)
    np.testing.assert_allclose(stats.cycles, frozen["cycles"], rtol=GOLDEN_RTOL)
    np.testing.assert_allclose(stats.utilization, frozen["utilization"], rtol=GOLDEN_RTOL)
    np.testing.assert_allclose(
        stats.total_energy_pj, frozen["total_energy_pj"], rtol=GOLDEN_RTOL
    )
    np.testing.assert_allclose(stats.edp, frozen["edp"], rtol=GOLDEN_RTOL)
    assert stats.spatial_pes == frozen["spatial_pes"]
    assert stats.clock_ghz == frozen["clock_ghz"]


@pytest.mark.parametrize("name", sorted(GOLDEN["problems"]))
def test_scalar_model_reproduces_golden(name):
    entry = GOLDEN["problems"][name]
    mapping = Mapping.from_dict(entry["mapping"])
    _check_stats(_MODEL.evaluate(mapping, problem_by_name(name)), entry["stats"])


@pytest.mark.parametrize("name", sorted(GOLDEN["problems"]))
def test_batch_backend_reproduces_golden(name):
    entry = GOLDEN["problems"][name]
    mapping = Mapping.from_dict(entry["mapping"])
    batch_stats = evaluate_batch(_ACCELERATOR, [mapping], problem_by_name(name))
    _check_stats(batch_stats.stats_at(0), entry["stats"])


# ----------------------------------------------------------------------
# Frozen mixed batch: the cross-problem megabatch backend vs. the fixture
# ----------------------------------------------------------------------

MEGABATCH_GOLDEN = json.loads(MEGABATCH_GOLDEN_PATH.read_text())


def test_megabatch_fixture_covers_every_workload_twice():
    names = [lane["problem"] for lane in MEGABATCH_GOLDEN["lanes"]]
    assert sorted(names) == sorted([p.name for p in TABLE1_PROBLEMS] * 2)
    assert MEGABATCH_GOLDEN["accelerator_fingerprint"] == _ACCELERATOR.fingerprint()


def test_megabatch_backend_reproduces_golden_mixed_batch():
    lanes = MEGABATCH_GOLDEN["lanes"]
    mappings = [Mapping.from_dict(lane["mapping"]) for lane in lanes]
    problems = [problem_by_name(lane["problem"]) for lane in lanes]
    mega = evaluate_megabatch(_ACCELERATOR, mappings, problems)
    assert len(mega) == len(lanes)
    for index, lane in enumerate(lanes):
        np.testing.assert_allclose(mega.edp[index], lane["edp"], rtol=GOLDEN_RTOL)
        np.testing.assert_allclose(
            mega.cycles[index], lane["cycles"], rtol=GOLDEN_RTOL
        )
        np.testing.assert_allclose(
            mega.utilization[index], lane["utilization"], rtol=GOLDEN_RTOL
        )
        np.testing.assert_allclose(
            mega.total_energy_pj[index], lane["total_energy_pj"], rtol=GOLDEN_RTOL
        )
        np.testing.assert_allclose(
            mega.noc_energy_pj[index], lane["noc_energy_pj"], rtol=GOLDEN_RTOL
        )
        row = mega.stats_at(index)
        assert row.problem_name == lane["problem"]
        np.testing.assert_allclose(row.edp, lane["edp"], rtol=GOLDEN_RTOL)
