"""Scalar <-> batched parity harness for the analytical cost model.

The vectorized backend (:mod:`repro.costmodel.batch`) is a rewrite of the
scalar model's reuse analysis, so these tests are the proof it is *exact*:

* a seeded property suite draws random valid mappings for **every** Table 1
  workload on **both** accelerator configurations and holds batched EDP to
  per-mapping ``evaluate(...).edp`` at rtol 1e-9;
* a hypothesis sweep over arbitrary ordered factorizations and loop orders
  exercises the corners random sampling rarely lands on — bound-1 loops in
  every slot (the nest-elision rule) and all-temporal/all-spatial splits;
* full-statistics checks (per-tensor/per-level accesses, NoC, cycles,
  utilization, meta vectors, codec targets) guard every field the batched
  path can feed downstream, not just the scalar objective.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TargetCodec
from repro.costmodel import (
    CostModel,
    algorithmic_minimum,
    compile_batch,
    edp_batch,
    evaluate_batch,
)
from repro.costmodel.accelerator import (
    MEMORY_LEVELS,
    default_accelerator,
    small_accelerator,
)
from repro.mapspace import MapSpace
from repro.mapspace.mapping import Mapping
from repro.utils import factorizations
from repro.workloads import TABLE1_PROBLEMS, make_cnn_layer, make_conv1d

PARITY_RTOL = 1e-9

ACCELERATORS = {"paper-256pe": default_accelerator(), "small-16pe": small_accelerator()}

_PROBLEM_IDS = [p.name for p in TABLE1_PROBLEMS]


def _assert_stats_parity(scalar, batch_stats, index):
    """Every field of the scalar CostStats against one batch row."""
    row = batch_stats.stats_at(index)
    assert row.problem_name == scalar.problem_name
    assert row.spatial_pes == scalar.spatial_pes
    assert row.clock_ghz == scalar.clock_ghz
    by_key = {(r.tensor, r.level): r for r in scalar.records}
    assert len(row.records) == len(scalar.records)
    for record in row.records:
        reference = by_key[(record.tensor, record.level)]
        np.testing.assert_allclose(record.accesses, reference.accesses, rtol=PARITY_RTOL)
        np.testing.assert_allclose(record.energy_pj, reference.energy_pj, rtol=PARITY_RTOL)
    np.testing.assert_allclose(row.noc_energy_pj, scalar.noc_energy_pj, rtol=PARITY_RTOL)
    np.testing.assert_allclose(row.mac_energy_pj, scalar.mac_energy_pj, rtol=PARITY_RTOL)
    np.testing.assert_allclose(row.cycles, scalar.cycles, rtol=PARITY_RTOL)
    np.testing.assert_allclose(row.utilization, scalar.utilization, rtol=PARITY_RTOL)
    np.testing.assert_allclose(row.edp, scalar.edp, rtol=PARITY_RTOL)


@pytest.fixture(params=sorted(ACCELERATORS), scope="module")
def accel(request):
    return ACCELERATORS[request.param]


class TestSeededParityAllWorkloads:
    """Satellite requirement: every registered workload x both accelerator
    configs, N >= 64 random valid mappings, rtol 1e-9."""

    N_MAPPINGS = 64

    @pytest.mark.parametrize("problem", TABLE1_PROBLEMS, ids=_PROBLEM_IDS)
    def test_edp_parity(self, problem, accel):
        space = MapSpace(problem, accel)
        model = CostModel(accel)
        population = space.sample_many(self.N_MAPPINGS, seed=0xC0DEC)
        scalar = np.array([model.evaluate(m, problem).edp for m in population])
        batched = np.array(model.evaluate_many(population, problem))
        np.testing.assert_allclose(batched, scalar, rtol=PARITY_RTOL)

    @pytest.mark.parametrize("problem", TABLE1_PROBLEMS, ids=_PROBLEM_IDS)
    def test_full_stats_parity_on_sample(self, problem, accel):
        space = MapSpace(problem, accel)
        model = CostModel(accel)
        population = space.sample_many(4, seed=7)
        batch_stats = model.evaluate_batch(population, problem)
        for index, mapping in enumerate(population):
            _assert_stats_parity(
                model.evaluate(mapping, problem), batch_stats, index
            )

    @pytest.mark.slow
    @pytest.mark.parametrize("problem", TABLE1_PROBLEMS, ids=_PROBLEM_IDS)
    def test_edp_parity_large_population(self, problem, accel):
        """The long sweep: N=256 per combination (slow lane only)."""
        space = MapSpace(problem, accel)
        model = CostModel(accel)
        population = space.sample_many(256, seed=0xBEEF)
        scalar = np.array([model.evaluate(m, problem).edp for m in population])
        np.testing.assert_allclose(
            edp_batch(accel, population, problem), scalar, rtol=PARITY_RTOL
        )


# ----------------------------------------------------------------------
# Hypothesis sweep: arbitrary structurally-valid mappings
# ----------------------------------------------------------------------

_EDGE_PROBLEM = make_cnn_layer("batch_edge", n=4, k=16, c=12, h=10, w=10, r=3, s=3)
_EDGE_ACCEL = default_accelerator()
_EDGE_MODEL = CostModel(_EDGE_ACCEL)


@st.composite
def structural_mappings(draw):
    """Any mapping whose factors multiply to the bounds — validity beyond
    that (capacity, PE count) is irrelevant to the cost model, so the sweep
    covers far more of the space than rejection sampling would."""
    dims = _EDGE_PROBLEM.dim_names
    bounds = _EDGE_PROBLEM.bounds
    tile = tuple(
        draw(st.sampled_from(factorizations(bounds[dim], 4))) for dim in dims
    )
    orders = tuple(tuple(draw(st.permutations(dims))) for _ in range(3))
    tensors = tuple(t.name for t in _EDGE_PROBLEM.tensors)
    return Mapping(
        dims=dims,
        tile_factors=tile,
        loop_orders=orders,
        tensors=tensors,
        allocation=((1,) * len(tensors), (1,) * len(tensors)),
    )


class TestHypothesisParity:
    @given(st.lists(structural_mappings(), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_structural_mappings(self, mappings):
        scalar = np.array(
            [_EDGE_MODEL.evaluate(m, _EDGE_PROBLEM).edp for m in mappings]
        )
        batched = evaluate_batch(_EDGE_ACCEL, mappings, _EDGE_PROBLEM).edp
        np.testing.assert_allclose(batched, scalar, rtol=PARITY_RTOL)


# ----------------------------------------------------------------------
# Targeted edge cases: bound-1 elision and sliding-window tensors
# ----------------------------------------------------------------------


class TestEdgeCases:
    def _parity(self, problem, accel, mappings):
        model = CostModel(accel)
        batch_stats = evaluate_batch(accel, mappings, problem)
        for index, mapping in enumerate(mappings):
            _assert_stats_parity(model.evaluate(mapping, problem), batch_stats, index)

    @pytest.mark.parametrize("slot", range(4), ids=["dram", "l2", "spatial", "l1"])
    def test_whole_bound_in_one_slot(self, slot):
        """Every other slot is a bound-1 loop: the nest-elision rule's
        extreme case (the scalar nest drops all but one level's loops)."""
        dims = _EDGE_PROBLEM.dim_names
        tensors = tuple(t.name for t in _EDGE_PROBLEM.tensors)
        factors = []
        for dim in dims:
            tile = [1, 1, 1, 1]
            tile[slot] = _EDGE_PROBLEM.bounds[dim]
            factors.append(tuple(tile))
        mapping = Mapping(
            dims=dims,
            tile_factors=tuple(factors),
            loop_orders=(dims, dims[::-1], dims),
            tensors=tensors,
            allocation=((1,) * len(tensors), (1,) * len(tensors)),
        )
        self._parity(_EDGE_PROBLEM, _EDGE_ACCEL, [mapping])

    def test_trailing_bound1_relevant_loop(self):
        """A bound-1 loop over a *relevant* dim in the innermost position
        must not extend the fill product (elision semantics): distinguishes
        the masked-relevance kernel from a naive last-relevant scan."""
        dims = _EDGE_PROBLEM.dim_names
        tensors = tuple(t.name for t in _EDGE_PROBLEM.tensors)
        # All iteration at DRAM except K, which is fully temporal at L2;
        # DRAM's loop order puts K (bound 1 at DRAM) innermost.
        factors = []
        for dim in dims:
            bound = _EDGE_PROBLEM.bounds[dim]
            factors.append((1, bound, 1, 1) if dim == "K" else (bound, 1, 1, 1))
        order_k_last = tuple([d for d in dims if d != "K"] + ["K"])
        mapping = Mapping(
            dims=dims,
            tile_factors=tuple(factors),
            loop_orders=(order_k_last, dims, dims),
            tensors=tensors,
            allocation=((1,) * len(tensors), (1,) * len(tensors)),
        )
        self._parity(_EDGE_PROBLEM, _EDGE_ACCEL, [mapping])

    def test_sliding_window_conv1d(self):
        """The X+R compound-axis tensors of 1D convolution (W and R tile
        extents add along one axis) on the small accelerator."""
        problem = make_conv1d("batch_conv1d", w=32, r=5)
        accel = small_accelerator()
        space = MapSpace(problem, accel)
        self._parity(problem, accel, space.sample_many(32, seed=11))

    def test_spatial_overcommit_still_priced(self):
        """Mappings beyond the PE count are structurally evaluable (the
        space would reject them; the model must still agree with itself)."""
        dims = _EDGE_PROBLEM.dim_names
        tensors = tuple(t.name for t in _EDGE_PROBLEM.tensors)
        factors = []
        for dim in dims:
            bound = _EDGE_PROBLEM.bounds[dim]
            factors.append((1, 1, bound, 1))  # everything spatial
        mapping = Mapping(
            dims=dims,
            tile_factors=tuple(factors),
            loop_orders=(dims, dims, dims),
            tensors=tensors,
            allocation=((1,) * len(tensors), (1,) * len(tensors)),
        )
        self._parity(_EDGE_PROBLEM, _EDGE_ACCEL, [mapping])


# ----------------------------------------------------------------------
# Batch surfaces: meta vectors, codec targets, compile validation
# ----------------------------------------------------------------------


class TestBatchSurfaces:
    @pytest.fixture(scope="class")
    def cnn_batch(self, cnn_problem, accelerator, cost_model):
        space = MapSpace(cnn_problem, accelerator)
        population = space.sample_many(16, seed=3)
        return population, cost_model.evaluate_batch(population, cnn_problem)

    def test_meta_matrix_matches_meta_vectors(self, cnn_batch, cnn_problem, cost_model):
        population, batch_stats = cnn_batch
        order = tuple(t.name for t in cnn_problem.tensors)
        meta = batch_stats.meta_matrix(order)
        for index, mapping in enumerate(population):
            expected = cost_model.evaluate(mapping, cnn_problem).meta_vector(order)
            np.testing.assert_allclose(meta[index], expected, rtol=PARITY_RTOL)

    def test_meta_matrix_unknown_tensor_raises(self, cnn_batch):
        _, batch_stats = cnn_batch
        with pytest.raises(KeyError):
            batch_stats.meta_matrix(("NotATensor",))

    @pytest.mark.parametrize("mode", ["meta", "edp"])
    def test_from_stats_batch_matches_scalar_codec(
        self, cnn_batch, cnn_problem, cost_model, mode
    ):
        population, batch_stats = cnn_batch
        order = tuple(t.name for t in cnn_problem.tensors)
        codec = TargetCodec(n_tensors=len(order), mode=mode)
        bound = algorithmic_minimum(cnn_problem, cost_model.accelerator)
        rows = codec.from_stats_batch(batch_stats, bound, order)
        assert rows.shape == (len(population), codec.width)
        for index, mapping in enumerate(population):
            expected = codec.from_stats(
                cost_model.evaluate(mapping, cnn_problem), bound, order
            )
            np.testing.assert_allclose(rows[index], expected, rtol=PARITY_RTOL)

    def test_empty_batch(self, cnn_problem, accelerator, cost_model):
        assert cost_model.evaluate_many([], cnn_problem) == []
        assert edp_batch(accelerator, [], cnn_problem).shape == (0,)

    def test_empty_batch_full_stats(self, cnn_problem, accelerator):
        """Regression: the full-statistics path used to die in the energy
        reshape on a zero-row batch; it must return a well-formed empty
        ``BatchCostStats`` instead."""
        stats = evaluate_batch(accelerator, [], cnn_problem)
        assert len(stats) == 0
        assert stats.accesses.shape[0] == 0
        for name in (
            "energies_pj",
            "memory_energy_pj",
            "noc_energy_pj",
            "total_energy_pj",
            "energy_j",
            "delay_s",
            "edp",
        ):
            assert getattr(stats, name).shape[0] == 0
        order = tuple(t.name for t in cnn_problem.tensors)
        assert stats.meta_matrix(order).shape == (0, 3 * len(order) + 3)

    def test_stats_at_rejects_negative_and_overflow(self, cnn_batch):
        """Regression: ``stats_at(-1)`` used to wrap around via numpy's
        negative indexing and silently serve the last row."""
        population, batch_stats = cnn_batch
        with pytest.raises(IndexError):
            batch_stats.stats_at(-1)
        with pytest.raises(IndexError):
            batch_stats.stats_at(len(population))

    def test_single_mapping_batch(self, cnn_problem, accelerator, cost_model):
        mapping = MapSpace(cnn_problem, accelerator).sample(5)
        (value,) = cost_model.evaluate_many([mapping], cnn_problem)
        np.testing.assert_allclose(
            value, cost_model.evaluate(mapping, cnn_problem).edp, rtol=PARITY_RTOL
        )

    def test_compile_rejects_wrong_dims(self, cnn_problem, mttkrp_problem, accelerator):
        mapping = MapSpace(mttkrp_problem, accelerator).sample(0)
        with pytest.raises(ValueError, match="do not match problem dims"):
            compile_batch([mapping], cnn_problem)

    def test_compile_rejects_wrong_factor_product(self, cnn_problem, accelerator):
        mapping = MapSpace(cnn_problem, accelerator).sample(0)
        factors = list(mapping.factors("K"))
        factors[0] *= 2
        broken = mapping.with_tile_factors("K", factors)
        with pytest.raises(ValueError, match="multiply to"):
            compile_batch([broken], cnn_problem)

    def test_level_extents_match_mapping(self, cnn_batch, cnn_problem):
        population, _ = cnn_batch
        batch = compile_batch(population, cnn_problem)
        for level in ("L1", "L2", "DRAM"):
            extents = batch.level_extents(level)
            for index, mapping in enumerate(population):
                expected = mapping.tile_extents(level)
                for d, dim in enumerate(cnn_problem.dim_names):
                    assert extents[index, d] == expected[dim]

    def test_level_extents_unknown_level_raises(self, cnn_batch, cnn_problem):
        population, _ = cnn_batch
        with pytest.raises(KeyError):
            compile_batch(population, cnn_problem).level_extents("L3")
