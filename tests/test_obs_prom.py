"""Prometheus text-exposition rendering tests (pure snapshot-in/text-out)."""

from __future__ import annotations

from repro.obs import prom
from repro.obs.trace import FakeClock
from repro.serve.metrics import MetricsRegistry


def _server_snapshot():
    clock = FakeClock(0.0)
    registry = MetricsRegistry(clock=clock)
    clock.advance(10.0)
    registry.inc("submitted", 4)
    registry.inc("served", 4)
    registry.observe_batch(3)
    registry.observe_batch(9)
    for ms in (10, 20, 30):
        registry.observe_latency(ms / 1e3)
    registry.inc_label("served_by_algorithm", "conv1d", 3)
    registry.inc_label("served_by_problem", "ab" * 8, 3)
    return registry.snapshot(queue_depth=2)


class TestServerRendering:
    def test_counters_render_as_totals(self):
        text = prom.render_prometheus(_server_snapshot())
        assert "# TYPE repro_served_total counter" in text
        assert "repro_served_total 4" in text
        assert "repro_queue_depth 2" in text

    def test_latency_renders_as_summary(self):
        text = prom.render_prometheus(_server_snapshot())
        assert "# TYPE repro_request_latency_seconds summary" in text
        assert 'repro_request_latency_seconds{quantile="0.5"} 0.02' in text
        assert "repro_request_latency_seconds_count 3" in text

    def test_batch_size_renders_as_cumulative_histogram(self):
        text = prom.render_prometheus(_server_snapshot())
        assert "# TYPE repro_batch_size histogram" in text
        # size 3 lands in <=4, size 9 in <=16; buckets are cumulative.
        assert 'repro_batch_size_bucket{le="4.0"} 1' in text
        assert 'repro_batch_size_bucket{le="16.0"} 2' in text
        assert 'repro_batch_size_bucket{le="+Inf"} 2' in text
        assert "repro_batch_size_sum 12" in text

    def test_label_dimensions_render_with_their_label(self):
        text = prom.render_prometheus(_server_snapshot())
        assert (
            'repro_served_by_algorithm_total{algorithm="conv1d"} 3' in text
        )
        assert f'repro_served_by_problem_total{{problem="{"ab" * 8}"}} 3' in text

    def test_every_sample_line_parses(self):
        for line in prom.render_prometheus(_server_snapshot()).splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE repro_")
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every exposition value must be numeric
            assert name_part.startswith("repro_")


class TestRouterRendering:
    def _fleet_snapshot(self):
        return {
            "uptime_s": 5.0,
            "throughput_rps": 2.0,
            "queue_depth": 1,
            "router": {
                "counters": {"submitted": 10, "failovers": 1},
                "latency": {"count": 10, "mean_ms": 5.0, "max_ms": 9.0,
                            "p50_ms": 4.0, "p95_ms": 8.0, "p99_ms": 9.0},
            },
            "fleet": {"counters": {"served": 10}},
            "shards": {
                "0": _server_snapshot(),
                "1": {"status": "unreachable"},
            },
        }

    def test_router_and_fleet_series(self):
        text = prom.render_prometheus(self._fleet_snapshot())
        assert "repro_router_failovers_total 1" in text
        assert "repro_fleet_served_total 10" in text
        assert (
            'repro_router_request_latency_seconds{quantile="0.5"} 0.004'
            in text
        )

    def test_per_shard_series_survive_with_shard_label(self):
        text = prom.render_prometheus(self._fleet_snapshot())
        assert 'repro_shard_up{shard="0"} 1' in text
        assert 'repro_shard_up{shard="1"} 0' in text
        assert 'repro_served_total{shard="0"} 4' in text
        assert (
            'repro_served_by_algorithm_total{algorithm="conv1d",shard="0"} 3'
            in text
        )


class TestEscaping:
    def test_label_values_escape_quotes_and_newlines(self):
        assert prom.escape_label_value('a"b\nc\\d') == 'a\\"b\\nc\\\\d'

    def test_escaped_value_round_trips_into_line(self):
        text = prom.render_samples(
            [("served_by_problem_total", {"problem": 'we"ird'}, 1)]
        )
        assert 'problem="we\\"ird"' in text
