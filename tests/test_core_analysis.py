"""Tests for surrogate fidelity diagnostics."""

import numpy as np
import pytest

from repro.core import surrogate_fidelity
from repro.core.analysis import _spearman
from repro.costmodel import CostModel
from repro.mapspace import MapSpace


class TestSpearman:
    def test_perfect_agreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert _spearman(a, a * 10 + 3) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert _spearman(a, -a) == pytest.approx(-1.0)

    def test_constant_input_is_zero(self):
        assert _spearman(np.ones(5), np.arange(5.0)) == 0.0

    def test_monotone_transform_invariant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=50)
        assert _spearman(a, np.exp(a)) == pytest.approx(1.0)


class TestSurrogateFidelity:
    def test_report_fields(self, trained_mm, cnn_problem, accelerator):
        space = MapSpace(cnn_problem, accelerator)
        report = surrogate_fidelity(
            trained_mm.surrogate, cnn_problem, space, CostModel(accelerator),
            samples=60, seed=0,
        )
        assert report.samples == 60
        assert -1.0 <= report.correlation <= 1.0
        assert -1.0 <= report.tail_correlation <= 1.0
        assert -1.0 <= report.rank_agreement <= 1.0
        assert report.mean_abs_error_log2 >= 0.0
        assert cnn_problem.name in report.describe()

    def test_trained_surrogate_has_positive_fidelity(
        self, trained_mm, cnn_problem, accelerator
    ):
        space = MapSpace(cnn_problem, accelerator)
        report = surrogate_fidelity(
            trained_mm.surrogate, cnn_problem, space, CostModel(accelerator),
            samples=80, seed=1,
        )
        assert report.correlation > 0.3
        assert report.rank_agreement > 0.3

    def test_deterministic(self, trained_mm, cnn_problem, accelerator):
        space = MapSpace(cnn_problem, accelerator)
        model = CostModel(accelerator)
        a = surrogate_fidelity(
            trained_mm.surrogate, cnn_problem, space, model, samples=30, seed=7
        )
        b = surrogate_fidelity(
            trained_mm.surrogate, cnn_problem, space, model, samples=30, seed=7
        )
        assert a == b

    def test_invalid_args_raise(self, trained_mm, cnn_problem, accelerator):
        space = MapSpace(cnn_problem, accelerator)
        model = CostModel(accelerator)
        with pytest.raises(ValueError):
            surrogate_fidelity(
                trained_mm.surrogate, cnn_problem, space, model, samples=2
            )
        with pytest.raises(ValueError):
            surrogate_fidelity(
                trained_mm.surrogate, cnn_problem, space, model, tail_fraction=0.0
            )
