"""Tests for surrogate fidelity diagnostics."""

import numpy as np
import pytest

from repro.core import surrogate_fidelity
from repro.core.analysis import _spearman, spearman_rank_correlation
from repro.costmodel import CostModel
from repro.mapspace import MapSpace


def _reference_spearman(a, b):
    """Quadratic-time tie-aware reference (textbook fractional ranks)."""
    def ranks(values):
        values = np.asarray(values, dtype=float)
        out = np.empty(len(values))
        for i, v in enumerate(values):
            less = np.sum(values < v)
            equal = np.sum(values == v)
            out[i] = less + (equal - 1) / 2.0
        return out

    ra, rb = ranks(a), ranks(b)
    if np.std(ra) == 0 or np.std(rb) == 0:
        return 0.0
    return float(np.corrcoef(ra, rb)[0, 1])


class TestSpearman:
    def test_perfect_agreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, a * 10 + 3) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, -a) == pytest.approx(-1.0)

    def test_constant_input_is_zero(self):
        assert spearman_rank_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_monotone_transform_invariant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=50)
        assert spearman_rank_correlation(a, np.exp(a)) == pytest.approx(1.0)

    def test_short_samples_are_zero(self):
        assert spearman_rank_correlation(np.array([1.0]), np.array([2.0])) == 0.0
        assert spearman_rank_correlation(np.empty(0), np.empty(0)) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation(np.arange(3.0), np.arange(4.0))

    def test_ties_get_average_ranks(self):
        # [1, 2, 2, 3] vs a strictly increasing partner: the tied pair
        # shares rank 1.5, and rho is the classic tie-aware value.
        a = np.array([1.0, 2.0, 2.0, 3.0])
        b = np.array([10.0, 20.0, 30.0, 40.0])
        assert spearman_rank_correlation(a, b) == pytest.approx(
            _reference_spearman(a, b)
        )
        # Position-broken ties (argsort-of-argsort) would give exactly 1.0
        # here; tie-aware must not.
        assert spearman_rank_correlation(a, b) < 1.0

    def test_matches_reference_on_heavy_ties(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            a = rng.integers(0, 5, size=40).astype(float)
            b = rng.integers(0, 5, size=40).astype(float)
            assert spearman_rank_correlation(a, b) == pytest.approx(
                _reference_spearman(a, b), abs=1e-12
            )

    def test_all_tied_both_sides_is_zero(self):
        a = np.full(8, 2.0)
        assert spearman_rank_correlation(a, a) == 0.0

    def test_private_alias_kept(self):
        assert _spearman is spearman_rank_correlation


class TestSurrogateFidelity:
    def test_report_fields(self, trained_mm, cnn_problem, accelerator):
        space = MapSpace(cnn_problem, accelerator)
        report = surrogate_fidelity(
            trained_mm.surrogate, cnn_problem, space, CostModel(accelerator),
            samples=60, seed=0,
        )
        assert report.samples == 60
        assert -1.0 <= report.correlation <= 1.0
        assert -1.0 <= report.tail_correlation <= 1.0
        assert -1.0 <= report.rank_agreement <= 1.0
        assert report.mean_abs_error_log2 >= 0.0
        assert cnn_problem.name in report.describe()

    def test_trained_surrogate_has_positive_fidelity(
        self, trained_mm, cnn_problem, accelerator
    ):
        space = MapSpace(cnn_problem, accelerator)
        report = surrogate_fidelity(
            trained_mm.surrogate, cnn_problem, space, CostModel(accelerator),
            samples=80, seed=1,
        )
        assert report.correlation > 0.3
        assert report.rank_agreement > 0.3

    def test_deterministic(self, trained_mm, cnn_problem, accelerator):
        space = MapSpace(cnn_problem, accelerator)
        model = CostModel(accelerator)
        a = surrogate_fidelity(
            trained_mm.surrogate, cnn_problem, space, model, samples=30, seed=7
        )
        b = surrogate_fidelity(
            trained_mm.surrogate, cnn_problem, space, model, samples=30, seed=7
        )
        assert a == b

    def test_invalid_args_raise(self, trained_mm, cnn_problem, accelerator):
        space = MapSpace(cnn_problem, accelerator)
        model = CostModel(accelerator)
        with pytest.raises(ValueError):
            surrogate_fidelity(
                trained_mm.surrogate, cnn_problem, space, model, samples=2
            )
        with pytest.raises(ValueError):
            surrogate_fidelity(
                trained_mm.surrogate, cnn_problem, space, model, tail_fraction=0.0
            )
