"""Tests for layers, containers, and the MLP."""

import numpy as np
import pytest

from repro.nn import MLP, Linear, Module, ReLU, Sequential, Tanh, Tensor


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_parameters(self):
        layer = Linear(4, 3, rng=0)
        params = layer.parameters()
        assert len(params) == 2
        assert params[0].shape == (4, 3)
        assert params[1].shape == (3,)

    def test_bias_starts_zero(self):
        assert (Linear(4, 3, rng=0).bias.data == 0).all()

    def test_init_schemes(self):
        he = Linear(100, 100, init="he", rng=0)
        xavier = Linear(100, 100, init="xavier", rng=0)
        assert he.weight.data.std() > xavier.weight.data.std() * 0.8

    def test_invalid_init_raises(self):
        with pytest.raises(ValueError):
            Linear(4, 3, init="magic")

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_deterministic_init(self):
        a = Linear(4, 3, rng=7)
        b = Linear(4, 3, rng=7)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestActivations:
    def test_relu_clips_negative(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_array_equal(out.data, [0.0, 2.0])

    def test_tanh_bounds(self):
        out = Tanh()(Tensor(np.array([-100.0, 100.0])))
        np.testing.assert_allclose(out.data, [-1.0, 1.0])


class TestSequential:
    def test_applies_in_order(self):
        seq = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        out = seq(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)

    def test_collects_parameters(self):
        seq = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        assert len(seq.parameters()) == 4

    def test_len_and_iter(self):
        seq = Sequential(Linear(2, 2, rng=0), ReLU())
        assert len(seq) == 2
        assert len(list(seq)) == 2


class TestMLP:
    def test_paper_cnn_topology_sizes(self):
        # 62 inputs, 9 layers, 12 outputs (paper section 5.5)
        sizes = [62, 64, 256, 1024, 2048, 2048, 1024, 256, 64, 12]
        mlp = MLP(sizes, rng=0)
        out = mlp(Tensor(np.zeros((1, 62))))
        assert out.shape == (1, 12)

    def test_num_parameters(self):
        mlp = MLP([4, 8, 2], rng=0)
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_too_few_layers_raise(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            MLP([4, 4, 2], activation="softplus")

    def test_tanh_variant(self):
        mlp = MLP([4, 8, 2], activation="tanh", rng=0)
        assert mlp(Tensor(np.ones((1, 4)))).shape == (1, 2)


class TestStateDict:
    def test_roundtrip(self):
        a = MLP([4, 8, 2], rng=0)
        b = MLP([4, 8, 2], rng=99)
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 4)))
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_shape_mismatch_raises(self):
        a = MLP([4, 8, 2], rng=0)
        b = MLP([4, 6, 2], rng=0)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_count_mismatch_raises(self):
        a = MLP([4, 8, 2], rng=0)
        b = MLP([4, 8, 8, 2], rng=0)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_zero_grad_clears_all(self):
        mlp = MLP([4, 8, 2], rng=0)
        loss = (mlp(Tensor(np.ones((2, 4)))) ** 2).sum()
        loss.backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())
