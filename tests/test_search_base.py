"""Tests for budget accounting and search-result traces."""

import math

import pytest

from repro.search.base import BudgetedObjective, SearchResult


def _objective(mapping):
    # mappings in these tests are plain ints; cost = value
    return float(mapping)


class TestBudgetedObjective:
    def test_counts_evaluations(self):
        budget = BudgetedObjective(_objective, 3)
        budget.evaluate(5)
        budget.evaluate(2)
        assert budget.used == 2
        assert budget.remaining == 1
        assert not budget.exhausted

    def test_exhausts_at_max(self):
        budget = BudgetedObjective(_objective, 2)
        budget.evaluate(1)
        budget.evaluate(2)
        assert budget.exhausted
        with pytest.raises(RuntimeError):
            budget.evaluate(3)

    def test_record_external_value(self):
        budget = BudgetedObjective(_objective, 2)
        budget.record(7, 3.25)
        assert budget.values == [3.25]
        assert budget.used == 1

    def test_simulated_latency_charges_time(self):
        budget = BudgetedObjective(_objective, 100, time_budget_s=1.0,
                                   simulated_latency_s=0.4)
        budget.evaluate(1)
        budget.evaluate(2)
        budget.evaluate(3)
        # 3 * 0.4s of virtual time > 1.0s budget
        assert budget.exhausted
        assert budget.used == 3

    def test_times_monotone(self):
        budget = BudgetedObjective(_objective, 5, simulated_latency_s=0.01)
        for i in range(5):
            budget.evaluate(i)
        assert budget.times == sorted(budget.times)
        assert budget.times[-1] >= 0.05

    def test_result_freezes_trace(self):
        budget = BudgetedObjective(_objective, 3)
        budget.evaluate(3)
        budget.evaluate(1)
        result = budget.result("Test", "prob")
        assert result.n_evaluations == 2
        assert result.objective_values == [3.0, 1.0]
        budget.evaluate(9)
        assert result.n_evaluations == 2  # frozen copy

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            BudgetedObjective(_objective, 0)
        with pytest.raises(ValueError):
            BudgetedObjective(_objective, 1, simulated_latency_s=-1.0)


class TestSearchResult:
    def _result(self):
        return SearchResult(
            searcher="S",
            problem="p",
            mappings=["a", "b", "c", "d"],
            objective_values=[4.0, 1.0, 3.0, 2.0],
            eval_times=[0.1, 0.2, 0.3, 0.4],
            wall_time=0.4,
        )

    def test_best_tracking(self):
        result = self._result()
        assert result.best_index == 1
        assert result.best_mapping == "b"
        assert result.best_objective == 1.0

    def test_best_so_far_curve(self):
        assert self._result().best_so_far() == [4.0, 1.0, 1.0, 1.0]

    def test_empty_result_raises(self):
        empty = SearchResult(searcher="S", problem="p")
        with pytest.raises(ValueError):
            _ = empty.best_index


class TestSearchResultSerialization:
    def _mapping(self):
        from repro.mapspace.mapping import Mapping

        return Mapping(
            dims=("X", "R"),
            tile_factors=((2, 7, 2, 1), (1, 1, 1, 5)),
            loop_orders=(("X", "R"), ("R", "X"), ("X", "R")),
            tensors=("Input", "Filter", "Output"),
            allocation=((4, 2, 2), (2, 1, 1)),
        )

    def test_dict_roundtrip(self):
        mapping = self._mapping()
        result = SearchResult(
            searcher="S",
            problem="p",
            mappings=[mapping, mapping],
            objective_values=[4.0, 1.0],
            eval_times=[0.1, 0.2],
            wall_time=0.25,
        )
        restored = SearchResult.from_dict(result.to_dict())
        assert restored == result
        assert restored.best_mapping == mapping

    def test_json_roundtrip(self):
        import json

        mapping = self._mapping()
        result = SearchResult(
            searcher="S",
            problem="p",
            mappings=[mapping],
            objective_values=[1.5],
            eval_times=[0.05],
            wall_time=0.1,
        )
        payload = json.loads(json.dumps(result.to_dict()))
        assert SearchResult.from_dict(payload) == result
