"""Tests for the Stopwatch used by iso-time experiments."""

import time

from repro.utils import Stopwatch


class TestStopwatch:
    def test_starts_at_zero(self):
        assert Stopwatch().elapsed == 0.0

    def test_measures_time(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        assert watch.elapsed >= 0.009

    def test_stop_freezes(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        frozen = watch.stop()
        time.sleep(0.01)
        assert watch.elapsed == frozen

    def test_resume_accumulates(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        first = watch.stop()
        watch.start()
        time.sleep(0.005)
        assert watch.elapsed > first

    def test_reset(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        watch.reset()
        assert watch.elapsed == 0.0

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.005)
        assert watch.elapsed >= 0.004
        frozen = watch.elapsed
        time.sleep(0.005)
        assert watch.elapsed == frozen

    def test_double_start_is_noop(self):
        watch = Stopwatch().start()
        watch.start()
        time.sleep(0.002)
        assert watch.elapsed > 0
