"""MappingEngine: serving behaviour, artifact cache, batch determinism."""

import pytest

from repro.core import MindMappings, MindMappingsConfig, TrainingConfig
from repro.costmodel import algorithmic_minimum
from repro.costmodel.accelerator import small_accelerator
from repro.engine import EngineConfig, MappingEngine, MappingRequest
from repro.search import SearchResult
from repro.workloads import make_conv1d


TRAIN_PROBLEMS = (
    make_conv1d("eng_train_a", w=48, r=3),
    make_conv1d("eng_train_b", w=64, r=5),
)

TARGETS = (
    make_conv1d("eng_target_a", w=32, r=5),
    make_conv1d("eng_target_b", w=56, r=3),
)


def _engine_config():
    return EngineConfig(
        mm_config=MindMappingsConfig(
            dataset_samples=600,
            n_problems=2,
            training=TrainingConfig(hidden_layers=(16, 16), epochs=3),
        ),
        train_seed=0,
        training_problems={"conv1d": TRAIN_PROBLEMS},
    )


@pytest.fixture(scope="module")
def engine():
    return MappingEngine(small_accelerator(), _engine_config())


class TestMap:
    def test_gradient_response_complete(self, engine):
        response = engine.map(
            MappingRequest(TARGETS[0], searcher="gradient", iterations=40, seed=1,
                           tag="req-1")
        )
        assert response.tag == "req-1"
        assert response.problem == TARGETS[0].name
        assert response.searcher == "gradient"
        assert response.norm_edp >= 1.0 - 1e-9
        assert response.stats.edp > 0
        assert 1 <= response.n_evaluations <= 40
        assert response.search_time_s <= response.total_time_s
        assert response.provenance["accel_fingerprint"] == engine.accelerator.fingerprint()
        assert len(response.convergence) == response.n_evaluations

    def test_alias_and_baseline_searchers(self, engine):
        for name in ("sa", "random", "ga"):
            response = engine.map(
                MappingRequest(TARGETS[0], searcher=name, iterations=20, seed=2)
            )
            assert response.norm_edp >= 1.0 - 1e-9

    def test_map_is_deterministic_per_seed(self, engine):
        request = MappingRequest(TARGETS[1], searcher="gradient", iterations=30, seed=9)
        a = engine.map(request)
        b = engine.map(request)
        assert a.mapping == b.mapping
        assert a.stats.edp == b.stats.edp

    def test_searcher_config_forwarded(self, engine):
        response = engine.map(
            MappingRequest(
                TARGETS[0],
                searcher="genetic",
                iterations=20,
                seed=0,
                searcher_config={"population_size": 4},
            )
        )
        assert response.n_evaluations <= 20

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ValueError):
            MappingRequest(TARGETS[0], iterations=0)

    def test_zero_time_budget_rejected(self):
        with pytest.raises(ValueError, match="time_budget_s"):
            MappingRequest(TARGETS[0], time_budget_s=0.0)

    def test_expired_budget_is_a_clear_error(self, engine):
        """A budget too small for even one evaluation must name the budget,
        not leak an internal 'empty search result' error."""
        request = MappingRequest(
            TARGETS[0], searcher="random", iterations=10, seed=0,
            time_budget_s=1e-12,
        )
        with pytest.raises(RuntimeError, match="time_budget_s"):
            engine.map(request)

    def test_oracle_stats_none_for_counterless_backend(self):
        from repro.engine import AnalyticalOracle

        accel = small_accelerator()
        engine = MappingEngine(accel, _engine_config(), oracle=AnalyticalOracle(accel))
        assert engine.oracle_stats() is None

    def test_surrogate_oracle_falls_back_for_reporting(self):
        """A pluggable oracle without full stats (SurrogateOracle) must not
        break map(): the engine falls back to the analytical model for the
        reporting query, as the CostOracle protocol documents."""
        from repro.engine import SurrogateOracle

        trainer = MappingEngine(small_accelerator(), _engine_config())
        surrogate = trainer.surrogate_for("conv1d")
        engine = MappingEngine(
            small_accelerator(), _engine_config(), oracle=SurrogateOracle(surrogate)
        )
        response = engine.map(
            MappingRequest(TARGETS[0], searcher="random", iterations=10, seed=3)
        )
        assert response.stats.edp > 0  # exact stats despite surrogate oracle

    def test_search_traffic_flows_through_shared_oracle(self, engine):
        """Baseline searchers price candidates via the engine's memoized
        oracle, not a private CostModel — in-search queries are observable
        (and cacheable) at the engine."""
        engine.oracle.clear()
        engine.map(MappingRequest(TARGETS[0], searcher="random", iterations=12, seed=8))
        snapshot = engine.oracle_stats()
        assert snapshot.queries >= 12  # 12 in-search + 1 reporting query

    def test_custom_surrogate_searcher_gets_injection(self, engine):
        """Surrogate injection is signature-driven, not a hardcoded name
        list: any registered searcher with a `surrogate` parameter works."""
        from repro.core import GradientSearcher
        from repro.engine import register_searcher

        try:
            register_searcher("test-grad-like")(GradientSearcher)
        except ValueError:
            pass  # already registered by a previous fixture reuse
        response = engine.map(
            MappingRequest(TARGETS[0], searcher="test-grad-like", iterations=10, seed=2)
        )
        assert response.norm_edp >= 1.0 - 1e-9
        assert "surrogate" in response.provenance

    def test_response_serializes(self, engine):
        response = engine.map(
            MappingRequest(TARGETS[0], searcher="random", iterations=10, seed=3)
        )
        payload = response.to_dict(include_trace=True)
        assert payload["problem"] == TARGETS[0].name
        restored = SearchResult.from_dict(payload["result"])
        assert restored.best_mapping == response.mapping


class TestBatchDeterminism:
    """Acceptance: batched serving matches sequential serving bit for bit —
    against MindMappings.find_mapping for gradient requests, and against
    solo engine.map for coalesced oracle-searcher cohorts."""

    def test_map_batch_matches_sequential_mindmappings(self, engine):
        requests = [
            MappingRequest(TARGETS[i % 2], searcher="gradient", iterations=30,
                           seed=seed)
            for i, seed in enumerate(range(8))
        ]
        responses = engine.map_batch(requests)
        assert [r.problem for r in responses] == [
            req.problem.name for req in requests
        ]

        config = _engine_config()
        mm = MindMappings.train(
            "conv1d",
            engine.accelerator,
            config.mm_config,
            problems=TRAIN_PROBLEMS,
            seed=config.train_seed,
        )
        for request, response in zip(requests, responses):
            mapping, stats = mm.find_mapping(
                request.problem, iterations=request.iterations, seed=request.seed
            )
            assert response.mapping == mapping
            assert response.stats.edp == stats.edp
            bound = algorithmic_minimum(request.problem, engine.accelerator).edp
            assert response.norm_edp == pytest.approx(stats.edp / bound)

    def test_coalesced_cohort_bit_identical_to_solo(self, engine):
        """The core serving guarantee: a same-problem cohort of oracle
        searchers shares prewarmed vectorized oracle rounds, yet every
        response — winner, true stats, and the full objective trace — is
        bit-identical to serving that request alone."""
        requests = [
            MappingRequest(TARGETS[0], searcher=name, iterations=25, seed=seed)
            for name in ("random", "annealing", "genetic")
            for seed in range(3)
        ]
        engine.oracle.clear()
        solo = [engine.map(request) for request in requests]
        engine.oracle.clear()
        coalesced = engine.map_batch(requests)
        for left, right in zip(solo, coalesced):
            assert left.mapping == right.mapping
            assert left.stats == right.stats
            assert left.result.mappings == right.result.mappings
            assert left.result.objective_values == right.result.objective_values
        # The cohort actually coalesced: the scheduler prewarmed entries.
        assert engine.oracle_stats().prewarmed > 0

    def test_mixed_searcher_batch(self, engine):
        requests = [
            MappingRequest(TARGETS[0], searcher=name, iterations=15, seed=4)
            for name in ("gradient", "random", "annealing", "genetic")
        ]
        responses = engine.map_batch(requests)
        assert [r.searcher for r in responses] == [
            "gradient", "random", "annealing", "genetic"
        ]

    def test_workers_parameter_removed(self, engine):
        """The deprecated thread-pool knob is gone, not silently ignored."""
        with pytest.raises(TypeError):
            engine.map_batch([], workers=2)


class TestArtifactCache:
    def test_surrogate_persisted_and_reloaded(self, tmp_path):
        config = _engine_config()
        config.artifact_dir = tmp_path
        first = MappingEngine(small_accelerator(), config)
        request = MappingRequest(TARGETS[0], searcher="gradient", iterations=20, seed=5)
        response_first = first.map(request)
        assert "trained+saved" in first.loaded_algorithms()["conv1d"]
        artifacts = list(tmp_path.glob("conv1d-*.npz"))
        assert len(artifacts) == 1
        assert small_accelerator().fingerprint() in artifacts[0].name

        second = MappingEngine(small_accelerator(), config)
        response_second = second.map(request)
        assert second.loaded_algorithms()["conv1d"].startswith("loaded:")
        assert response_second.mapping == response_first.mapping
        assert response_second.stats.edp == response_first.stats.edp

    def test_artifact_not_shared_across_accelerators(self, tmp_path):
        """A different accelerator gets its own artifact, not a stale one."""
        config = _engine_config()
        config.artifact_dir = tmp_path
        small = MappingEngine(small_accelerator(), config)
        small.surrogate_for("conv1d")

        other_accel = small_accelerator()
        other_accel = type(other_accel)(
            name="other", num_pes=8, l1_bytes=4 * 1024, l2_bytes=32 * 1024,
            l1_banks=4, l2_banks=8,
        )
        other = MappingEngine(other_accel, config)
        other.surrogate_for("conv1d")
        assert "trained" in other.loaded_algorithms()["conv1d"]
        assert len(list(tmp_path.glob("conv1d-*.npz"))) == 2

    def test_different_training_config_gets_own_artifact(self, tmp_path):
        """Two engines sharing an artifact dir but differing in training
        recipe must not serve each other's surrogates."""
        weak = _engine_config()
        weak.artifact_dir = tmp_path
        MappingEngine(small_accelerator(), weak).surrogate_for("conv1d")

        strong = _engine_config()
        strong.artifact_dir = tmp_path
        strong.mm_config.training.epochs = 5  # different recipe
        engine = MappingEngine(small_accelerator(), strong)
        engine.surrogate_for("conv1d")
        assert "trained" in engine.loaded_algorithms()["conv1d"]
        assert len(list(tmp_path.glob("conv1d-*.npz"))) == 2

    def test_corrupt_artifact_treated_as_miss(self, tmp_path):
        config = _engine_config()
        config.artifact_dir = tmp_path
        MappingEngine(small_accelerator(), config).surrogate_for("conv1d")
        artifact = next(tmp_path.glob("conv1d-*.npz"))
        artifact.write_bytes(b"not an npz")
        fresh = MappingEngine(small_accelerator(), config)
        with pytest.warns(UserWarning, match="unreadable surrogate artifact"):
            fresh.surrogate_for("conv1d")
        assert "trained+saved" in fresh.loaded_algorithms()["conv1d"]
        # The bad artifact was overwritten with a loadable one.
        third = MappingEngine(small_accelerator(), config)
        third.surrogate_for("conv1d")
        assert third.loaded_algorithms()["conv1d"].startswith("loaded:")

    def test_install_pipeline_validates(self, engine):
        from repro.costmodel import default_accelerator

        pipeline = engine.pipeline_for("conv1d")
        other = MappingEngine(default_accelerator(), _engine_config())
        with pytest.raises(ValueError, match="fingerprint"):
            other.install_pipeline("conv1d", pipeline)
        with pytest.raises(ValueError, match="conv1d"):
            engine.install_pipeline("cnn-layer", pipeline)

    def test_oracle_cache_observable(self, engine):
        engine.oracle.clear()
        request = MappingRequest(TARGETS[0], searcher="random", iterations=10, seed=6)
        engine.map(request)
        engine.map(request)
        snapshot = engine.oracle_stats()
        assert snapshot.hits >= 1


class TestSelftest:
    def test_module_selftest_passes(self):
        from repro.engine.__main__ import selftest

        assert selftest(verbose=False) == 0
