"""Tests for Phase 1 training."""

import numpy as np
import pytest

from repro.core import TrainingConfig, edp_prediction_mse, evaluate_loss, train_surrogate


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig()

    def test_unknown_loss_raises(self):
        with pytest.raises(ValueError):
            TrainingConfig(loss="hinge")

    def test_unknown_optimizer_raises(self):
        with pytest.raises(ValueError):
            TrainingConfig(optimizer="lbfgs")

    def test_zero_epochs_raise(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)


class TestTrainSurrogate:
    def test_loss_decreases(self, cnn_dataset):
        config = TrainingConfig(hidden_layers=(32, 32), epochs=6)
        _, history = train_surrogate(cnn_dataset, config, seed=0)
        assert history.epochs == 6
        assert history.train_loss[-1] < history.train_loss[0]

    def test_test_loss_tracked(self, cnn_dataset):
        config = TrainingConfig(hidden_layers=(32, 32), epochs=4)
        _, history = train_surrogate(cnn_dataset, config, seed=0)
        assert len(history.test_loss) == 4
        assert all(np.isfinite(history.test_loss))
        assert history.generalization_gap() >= 0

    def test_deterministic_given_seed(self, cnn_dataset):
        config = TrainingConfig(hidden_layers=(16,), epochs=2)
        _, h1 = train_surrogate(cnn_dataset, config, seed=5)
        _, h2 = train_surrogate(cnn_dataset, config, seed=5)
        assert h1.train_loss == h2.train_loss

    def test_callback_invoked(self, cnn_dataset):
        calls = []
        config = TrainingConfig(hidden_layers=(16,), epochs=3)
        train_surrogate(
            cnn_dataset, config, seed=0,
            callback=lambda e, tr, te: calls.append((e, tr, te)),
        )
        assert [c[0] for c in calls] == [0, 1, 2]

    def test_lr_decays_per_schedule(self, cnn_dataset):
        config = TrainingConfig(
            hidden_layers=(16,), epochs=6, lr_decay_every=2, lr_decay_factor=0.5,
            learning_rate=0.01,
        )
        _, history = train_surrogate(cnn_dataset, config, seed=0)
        assert history.learning_rates[0] == pytest.approx(0.01)
        assert history.learning_rates[-1] < 0.01

    def test_adam_variant(self, cnn_dataset):
        config = TrainingConfig(hidden_layers=(16,), epochs=2, optimizer="adam",
                                learning_rate=1e-3)
        _, history = train_surrogate(cnn_dataset, config, seed=0)
        assert history.epochs == 2

    @pytest.mark.parametrize("loss", ["huber", "mse", "mae"])
    def test_all_paper_losses_train(self, cnn_dataset, loss):
        config = TrainingConfig(hidden_layers=(16,), epochs=2, loss=loss)
        _, history = train_surrogate(cnn_dataset, config, seed=0)
        assert np.isfinite(history.final_train_loss)


class TestEvaluationHelpers:
    def test_evaluate_loss(self, trained_mm, cnn_dataset):
        inputs, targets = cnn_dataset.whitened()
        value = evaluate_loss(trained_mm.surrogate, inputs[:100], targets[:100])
        assert np.isfinite(value)
        assert value >= 0

    def test_edp_prediction_mse(self, trained_mm, cnn_dataset):
        value = edp_prediction_mse(trained_mm.surrogate, cnn_dataset)
        assert np.isfinite(value)
        assert value >= 0

    def test_trained_beats_untrained(self, cnn_dataset):
        config = TrainingConfig(hidden_layers=(32, 32), epochs=8)
        _, history = train_surrogate(cnn_dataset, config, seed=0)
        assert history.final_test_loss < history.test_loss[0] * 0.9
