"""Tests for the algorithmic-minimum oracle (paper Appendix A)."""

import pytest

from repro.costmodel import algorithmic_minimum, default_accelerator
from repro.workloads import make_cnn_layer, make_conv1d, problem_by_name


class TestAlgorithmicMinimum:
    def test_energy_formula(self):
        acc = default_accelerator()
        problem = make_conv1d("c", w=16, r=3)
        bound = algorithmic_minimum(problem, acc)
        per_word = (
            acc.energy.dram_access + acc.energy.l2_access + acc.energy.l1_access
        )
        data_words = 16 + 3 + 14  # Input + Filter + Output
        expected = data_words * per_word + problem.total_ops * acc.energy.mac
        assert bound.energy_pj == pytest.approx(expected)

    def test_cycles_formula(self):
        acc = default_accelerator()
        problem = problem_by_name("ResNet_Conv4")
        bound = algorithmic_minimum(problem, acc)
        assert bound.cycles == pytest.approx(problem.total_ops / acc.num_pes)

    def test_tiny_problem_cycle_floor(self):
        acc = default_accelerator()
        problem = make_conv1d("c", w=4, r=2)
        # total ops (6) < num PEs (256): floor at one cycle
        assert algorithmic_minimum(problem, acc).cycles == 1.0

    def test_edp_units(self):
        acc = default_accelerator()
        problem = problem_by_name("ResNet_Conv3")
        bound = algorithmic_minimum(problem, acc)
        assert bound.edp == pytest.approx(bound.energy_j * bound.delay_s)
        assert bound.energy_j == pytest.approx(bound.energy_pj * 1e-12)
        assert bound.delay_s == pytest.approx(bound.cycles / 1e9)

    def test_monotone_in_problem_size(self):
        acc = default_accelerator()
        small = make_cnn_layer("s", n=1, k=32, c=32, h=8, w=8, r=3, s=3)
        large = make_cnn_layer("l", n=8, k=64, c=64, h=16, w=16, r=3, s=3)
        assert (
            algorithmic_minimum(large, acc).edp > algorithmic_minimum(small, acc).edp
        )

    def test_carries_problem_name(self):
        acc = default_accelerator()
        assert algorithmic_minimum(problem_by_name("VGG_Conv2"), acc).problem_name == "VGG_Conv2"
