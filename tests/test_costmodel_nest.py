"""Tests for loop-nest construction and the temporal-reuse rule."""

import pytest

from repro.costmodel.nest import Loop, LoopNest, build_nest, distinct_tiles, fill_events


def _loops(*spec):
    """spec: (dim, bound, level) triples."""
    return tuple(Loop(dim=d, bound=b, level=lv) for d, b, lv in spec)


class TestLoop:
    def test_zero_bound_raises(self):
        with pytest.raises(ValueError):
            Loop(dim="X", bound=0, level="DRAM")


class TestFillEvents:
    def test_no_loops(self):
        assert fill_events((), {"X"}) == 1

    def test_all_relevant(self):
        loops = _loops(("X", 4, "DRAM"), ("Y", 3, "DRAM"))
        assert fill_events(loops, {"X", "Y"}) == 12

    def test_trailing_irrelevant_reused(self):
        # Outer relevant X, inner irrelevant K: tile stays resident over K.
        loops = _loops(("X", 4, "DRAM"), ("K", 8, "DRAM"))
        assert fill_events(loops, {"X"}) == 4

    def test_leading_irrelevant_refetches(self):
        # Outer irrelevant K forces a refetch per K iteration.
        loops = _loops(("K", 8, "DRAM"), ("X", 4, "DRAM"))
        assert fill_events(loops, {"X"}) == 32

    def test_interleaved(self):
        loops = _loops(("K", 2, "DRAM"), ("X", 4, "DRAM"), ("C", 3, "DRAM"))
        # last relevant is X at index 1: product of bounds 0..1 = 8
        assert fill_events(loops, {"X"}) == 8

    def test_no_relevant_loop_fills_once(self):
        loops = _loops(("K", 8, "DRAM"), ("C", 3, "DRAM"))
        assert fill_events(loops, {"X"}) == 1


class TestDistinctTiles:
    def test_counts_only_relevant(self):
        loops = _loops(("K", 2, "DRAM"), ("X", 4, "DRAM"), ("C", 3, "DRAM"))
        assert distinct_tiles(loops, {"X"}) == 4
        assert distinct_tiles(loops, {"K", "C"}) == 6

    def test_fills_at_least_distinct(self):
        loops = _loops(("K", 2, "DRAM"), ("X", 4, "DRAM"), ("C", 3, "DRAM"))
        for relevant in ({"X"}, {"K"}, {"C"}, {"X", "K"}):
            assert fill_events(loops, relevant) >= distinct_tiles(loops, relevant)


class TestBuildNest:
    def test_elides_unit_loops(self, cnn_space):
        mapping = cnn_space.sample(0)
        nest = build_nest(mapping)
        assert all(loop.bound > 1 for loop in nest.loops)

    def test_temporal_points(self, cnn_space):
        mapping = cnn_space.sample(0)
        nest = build_nest(mapping)
        expected = 1
        for dim in cnn_space.dims:
            dram, l2, spatial, l1 = mapping.factors(dim)
            expected *= dram * l2 * l1
        assert nest.temporal_points == expected

    def test_level_partitions(self, cnn_space):
        nest = build_nest(cnn_space.sample(3))
        assert set(nest.loops) == set(
            nest.at_level("DRAM") + nest.at_level("L2") + nest.at_level("L1")
        )

    def test_above_level_ordering(self, cnn_space):
        nest = build_nest(cnn_space.sample(3))
        assert nest.above_level("DRAM") == ()
        assert nest.above_level("L2") == nest.at_level("DRAM")
        assert nest.above_level("L1") == nest.at_level("DRAM") + nest.at_level("L2")
        assert nest.above_level("REG") == nest.loops

    def test_unknown_level_raises(self, cnn_space):
        nest = build_nest(cnn_space.sample(3))
        with pytest.raises(KeyError):
            nest.above_level("L7")

    def test_order_respected_within_level(self, cnn_space):
        mapping = cnn_space.sample(4)
        nest = build_nest(mapping)
        dram_loops = nest.at_level("DRAM")
        order = mapping.loop_order("DRAM")
        positions = [order.index(loop.dim) for loop in dram_loops]
        assert positions == sorted(positions)
