"""Tests for designer-defined objectives (paper section 2.3)."""

import pytest

from repro.costmodel import OBJECTIVES, get_objective, weighted_objective


@pytest.fixture(scope="module")
def sample_stats(cnn_space, cost_model, cnn_problem):
    return cost_model.evaluate(cnn_space.sample(0), cnn_problem)


class TestBuiltins:
    def test_registry_contents(self):
        assert set(OBJECTIVES) == {"edp", "ed2p", "energy", "delay"}

    def test_edp_matches_stats(self, sample_stats):
        assert get_objective("edp")(sample_stats) == pytest.approx(sample_stats.edp)

    def test_ed2p_formula(self, sample_stats):
        expected = sample_stats.energy_j * sample_stats.delay_s**2
        assert get_objective("ed2p")(sample_stats) == pytest.approx(expected)

    def test_energy_and_delay(self, sample_stats):
        assert get_objective("energy")(sample_stats) == pytest.approx(sample_stats.energy_j)
        assert get_objective("delay")(sample_stats) == pytest.approx(sample_stats.delay_s)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_objective("carbon")


class TestWeighted:
    def test_weighted_sum(self, sample_stats):
        objective = weighted_objective({"energy": 2.0, "delay": 3.0})
        expected = 2.0 * sample_stats.energy_j + 3.0 * sample_stats.delay_s
        assert objective(sample_stats) == pytest.approx(expected)

    def test_zero_weight_drops_term(self, sample_stats):
        objective = weighted_objective({"energy": 1.0, "delay": 0.0})
        assert objective(sample_stats) == pytest.approx(sample_stats.energy_j)

    def test_name(self):
        assert weighted_objective({"edp": 1.0}, name="mine").name == "mine"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            weighted_objective({})

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_objective({"energy": -1.0})

    def test_objectives_rank_differently(self, cnn_space, cost_model, cnn_problem):
        """Energy-only and delay-only objectives must disagree on *some*
        pair of mappings — otherwise the abstraction is pointless."""
        stats = [
            cost_model.evaluate(cnn_space.sample(seed), cnn_problem)
            for seed in range(12)
        ]
        energy = get_objective("energy")
        delay = get_objective("delay")
        energy_order = sorted(range(len(stats)), key=lambda i: energy(stats[i]))
        delay_order = sorted(range(len(stats)), key=lambda i: delay(stats[i]))
        assert energy_order != delay_order
