"""CLI exit codes, select/ignore, JSON output, and suppression handling."""

from __future__ import annotations

import json
import textwrap

from repro.analysis.cli import main

CLEAN = """\
def _double(x):
    return 2 * x
"""

DIRTY = """\
import time


def _deadline(budget_s):
    return time.time() + budget_s
"""


def write(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    write(tmp_path, CLEAN)
    assert main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_exit_one_on_findings(tmp_path, capsys):
    write(tmp_path, DIRTY)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPR102" in out and "mod.py:5" in out


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2


def test_exit_two_on_no_paths(capsys):
    assert main([]) == 2


def test_exit_two_on_unknown_select(tmp_path, capsys):
    write(tmp_path, CLEAN)
    assert main([str(tmp_path), "--select", "RPR777"]) == 2
    assert "RPR777" in capsys.readouterr().err


def test_select_narrows_rules(tmp_path):
    write(tmp_path, DIRTY)
    assert main([str(tmp_path), "--select", "RPR0"]) == 0
    assert main([str(tmp_path), "--select", "RPR102"]) == 1


def test_ignore_disables_rules(tmp_path):
    write(tmp_path, DIRTY)
    assert main([str(tmp_path), "--ignore", "RPR102"]) == 0


def test_json_format(tmp_path, capsys):
    write(tmp_path, DIRTY)
    assert main([str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "RPR102"
    assert finding["line"] == 5


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR003", "RPR101", "RPR201"):
        assert rule_id in out


def test_selftest_passes(capsys):
    assert main(["--selftest"]) == 0


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def test_justified_suppression_silences_finding(tmp_path, capsys):
    write(
        tmp_path,
        """\
        import time


        def _deadline(budget_s):
            return time.time() + budget_s  # repro: ignore[RPR102] -- test fixture wants wall time
        """,
    )
    assert main([str(tmp_path)]) == 0
    assert "1 suppressed" in capsys.readouterr().out


def test_standalone_pragma_covers_next_line(tmp_path):
    write(
        tmp_path,
        """\
        import time


        def _deadline(budget_s):
            # repro: ignore[RPR102] -- test fixture wants wall time
            return time.time() + budget_s
        """,
    )
    assert main([str(tmp_path)]) == 0


def test_unjustified_pragma_is_rpr900_and_suppresses_nothing(tmp_path, capsys):
    source = """\
import time


def _deadline(budget_s):
    return time.time() + budget_s  # PRAGMA
""".replace("# PRAGMA", "# repro: " + "ignore[RPR102]")
    (tmp_path / "mod.py").write_text(source, encoding="utf-8")
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPR900" in out
    assert "RPR102" in out  # the original finding survives


def test_unknown_rule_id_in_pragma_is_rpr900(tmp_path, capsys):
    source = """\
import time


def _deadline(budget_s):
    return time.time() + budget_s  # PRAGMA -- sounds legit
""".replace("PRAGMA", "repro: " + "ignore[RPR042]")
    (tmp_path / "mod.py").write_text(source, encoding="utf-8")
    assert main([str(tmp_path)]) == 1
    assert "RPR900" in capsys.readouterr().out


def test_suppression_must_name_the_right_rule(tmp_path, capsys):
    source = """\
import time


def _deadline(budget_s):
    return time.time() + budget_s  # repro: ignore[RPR101] -- wrong rule named
"""
    (tmp_path / "mod.py").write_text(source, encoding="utf-8")
    assert main([str(tmp_path)]) == 1
    assert "RPR102" in capsys.readouterr().out
