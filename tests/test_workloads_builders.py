"""Tests for workload builders, the Table 1 zoo, and problem samplers."""

import pytest

from repro.workloads import (
    TABLE1_PROBLEMS,
    TRANSFORMER_PROBLEMS,
    cnn_problems,
    make_cnn_layer,
    make_conv1d,
    make_gemm,
    make_mttkrp,
    mttkrp_problems,
    problem_by_name,
    sampler_for_algorithm,
    transformer_problems,
)


class TestConv1d:
    def test_output_bound(self):
        problem = make_conv1d("c", w=32, r=5)
        assert problem.bounds == {"X": 28, "R": 5}

    def test_tensor_sizes(self):
        problem = make_conv1d("c", w=32, r=5)
        assert problem.tensor_size(problem.tensor("Input")) == 32
        assert problem.tensor_size(problem.tensor("Filter")) == 5
        assert problem.tensor_size(problem.output) == 28

    def test_filter_too_large_raises(self):
        with pytest.raises(ValueError):
            make_conv1d("c", w=4, r=5)


class TestCnnLayer:
    def test_output_spatial_derivation(self):
        problem = make_cnn_layer("c", n=1, k=8, c=4, h=14, w=28, r=3, s=5)
        assert problem.bounds["X"] == 26  # (28 - 3) + 1
        assert problem.bounds["Y"] == 10  # (14 - 5) + 1

    def test_stride(self):
        problem = make_cnn_layer("c", n=1, k=8, c=4, h=28, w=28, r=3, s=3, stride=2)
        assert problem.bounds["X"] == 13

    def test_macs(self):
        problem = make_cnn_layer("c", n=2, k=4, c=3, h=8, w=8, r=3, s=3)
        assert problem.total_ops == 2 * 4 * 3 * 6 * 6 * 3 * 3

    def test_input_tensor_has_sliding_windows(self):
        problem = make_cnn_layer("c", n=1, k=8, c=4, h=8, w=8, r=3, s=3)
        input_tensor = problem.tensor("Input")
        assert ("X", "R") in input_tensor.axes
        assert ("Y", "S") in input_tensor.axes

    def test_input_size_matches_hw(self):
        problem = make_cnn_layer("c", n=2, k=8, c=4, h=14, w=14, r=3, s=3)
        # footprint of full problem: N*C*W*H = 2*4*14*14
        assert problem.tensor_size(problem.tensor("Input")) == 2 * 4 * 14 * 14

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            make_cnn_layer("c", n=0, k=1, c=1, h=8, w=8, r=3, s=3)
        with pytest.raises(ValueError):
            make_cnn_layer("c", n=1, k=1, c=1, h=2, w=2, r=3, s=3)


class TestMttkrp:
    def test_dims(self):
        problem = make_mttkrp("m", i=4, j=8, k=16, l=32)
        assert problem.dim_names == ("I", "J", "K", "L")

    def test_four_tensors(self):
        problem = make_mttkrp("m", i=4, j=8, k=16, l=32)
        assert len(problem.tensors) == 4
        assert problem.output.name == "Output"

    def test_tensor_sizes(self):
        problem = make_mttkrp("m", i=4, j=8, k=16, l=32)
        assert problem.tensor_size(problem.tensor("A")) == 4 * 16 * 32
        assert problem.tensor_size(problem.tensor("B")) == 16 * 8
        assert problem.tensor_size(problem.tensor("C")) == 32 * 8
        assert problem.tensor_size(problem.output) == 4 * 8


class TestGemm:
    def test_structure(self):
        problem = make_gemm("g", m=4, n=8, k=16)
        assert problem.dim_names == ("M", "N", "K")
        assert problem.total_ops == 4 * 8 * 16


class TestZoo:
    def test_eight_problems(self):
        assert len(TABLE1_PROBLEMS) == 8

    def test_six_cnn_two_mttkrp(self):
        assert len(cnn_problems()) == 6
        assert len(mttkrp_problems()) == 2

    def test_resnet_conv4_shape(self):
        problem = problem_by_name("ResNet_Conv4")
        assert problem.bounds["N"] == 16
        assert problem.bounds["K"] == 256
        assert problem.bounds["C"] == 256
        assert problem.bounds["X"] == 12  # 14 - 3 + 1
        assert problem.bounds["R"] == 3

    def test_alexnet_conv2_filter(self):
        problem = problem_by_name("AlexNet_Conv2")
        assert problem.bounds["R"] == 5
        assert problem.bounds["X"] == 23  # 27 - 5 + 1

    def test_mttkrp0_shape(self):
        problem = problem_by_name("MTTKRP_0")
        assert problem.bounds == {"I": 128, "J": 1024, "K": 4096, "L": 2048}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            problem_by_name("NoSuchLayer")

    def test_unique_names(self):
        names = [p.name for p in TABLE1_PROBLEMS + TRANSFORMER_PROBLEMS]
        assert len(set(names)) == len(names)

    def test_table1_untouched_by_extensions(self):
        """The transformer entries extend the zoo without rewriting the
        paper's Table 1 tuple."""
        assert len(TABLE1_PROBLEMS) == 8
        assert all(p.algorithm != "gemm" for p in TABLE1_PROBLEMS)


class TestTransformerZoo:
    def test_four_bert_gemms(self):
        assert len(TRANSFORMER_PROBLEMS) == 4
        assert transformer_problems() == TRANSFORMER_PROBLEMS
        assert all(p.algorithm == "gemm" for p in TRANSFORMER_PROBLEMS)

    def test_bert_base_shapes(self):
        qkv = problem_by_name("BERT_QKV")
        assert qkv.bounds == {"M": 512, "N": 2304, "K": 768}  # 3 * 768 fused
        ffn1 = problem_by_name("BERT_FFN1")
        assert ffn1.bounds == {"M": 512, "N": 3072, "K": 768}
        ffn2 = problem_by_name("BERT_FFN2")
        assert ffn2.bounds == {"M": 512, "N": 768, "K": 3072}
        attn = problem_by_name("BERT_AttnOut")
        assert attn.bounds == {"M": 512, "N": 768, "K": 768}

    def test_servable_end_to_end(self):
        """A BERT GEMM flows through space sampling and the cost model."""
        from repro.costmodel import CostModel
        from repro.costmodel.accelerator import small_accelerator
        from repro.mapspace import MapSpace

        problem = problem_by_name("BERT_AttnOut")
        accelerator = small_accelerator()
        space = MapSpace(problem, accelerator)
        mapping = space.sample(0)
        stats = CostModel(accelerator).evaluate(mapping, problem)
        assert stats.edp > 0


class TestSamplers:
    @pytest.mark.parametrize("algorithm", ["cnn-layer", "mttkrp", "gemm", "conv1d"])
    def test_samples_right_algorithm(self, algorithm):
        sampler = sampler_for_algorithm(algorithm)
        problem = sampler.sample(seed=0)
        assert problem.algorithm == algorithm

    def test_deterministic(self):
        sampler = sampler_for_algorithm("cnn-layer")
        assert sampler.sample(seed=3).pid() == sampler.sample(seed=3).pid()

    def test_sample_many_varies(self):
        sampler = sampler_for_algorithm("cnn-layer")
        problems = sampler.sample_many(10, seed=0)
        assert len({p.pid() for p in problems}) > 1

    def test_cnn_filter_never_exceeds_input(self):
        sampler = sampler_for_algorithm("cnn-layer")
        for problem in sampler.sample_many(30, seed=1):
            assert problem.bounds["X"] >= 1
            assert problem.bounds["Y"] >= 1

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            sampler_for_algorithm("quantum-annealing")
