"""Cross-problem megabatch parity: heterogeneous lanes, homogeneous answers.

The megabatch backend (:func:`repro.costmodel.batch.evaluate_megabatch`)
prices (mapping, problem) lanes over *different* problems — different dim
counts, tensor counts, and shapes — in one padded/masked kernel pass.
These tests hold it to the two contracts everything upstream leans on:

* **bitwise** identity with :func:`evaluate_batch` over each problem's
  slice of the union (the padding/masking layout is inert), and
* rtol 1e-9 parity with the scalar model for every Table 1 and
  transformer workload on both accelerator configurations, in mixed
  shuffled batches.

A hypothesis sweep drives conv and GEMM lanes (7-dim and 3-dim problems)
through one union to exercise heterogeneous dim-count padding, and the
wide-nest fallback path (bit-packed fills recovery disabled) is pinned
bitwise against the default path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.costmodel.batch as batch_mod
from repro.costmodel import (
    CostModel,
    compile_megabatch,
    evaluate_batch,
    evaluate_megabatch,
)
from repro.costmodel.accelerator import default_accelerator, small_accelerator
from repro.mapspace import MapSpace
from repro.workloads import (
    TABLE1_PROBLEMS,
    TRANSFORMER_PROBLEMS,
    make_cnn_layer,
    make_conv1d,
    make_gemm,
)

PARITY_RTOL = 1e-9

ACCELERATORS = {"paper-256pe": default_accelerator(), "small-16pe": small_accelerator()}

ALL_PROBLEMS = tuple(TABLE1_PROBLEMS) + tuple(TRANSFORMER_PROBLEMS)


@pytest.fixture(params=sorted(ACCELERATORS), scope="module")
def accel(request):
    return ACCELERATORS[request.param]


def _mixed_lanes(problems, accel, per_problem, seed):
    """Shuffled (mappings, problems) lanes mixing every given problem."""
    mappings, lane_problems = [], []
    for problem in problems:
        space = MapSpace(problem, accel)
        for mapping in space.sample_many(per_problem, seed=seed):
            mappings.append(mapping)
            lane_problems.append(problem)
    order = np.random.RandomState(seed).permutation(len(mappings))
    return [mappings[i] for i in order], [lane_problems[i] for i in order]


class TestMixedParity:
    """The acceptance sweep: every workload, both accelerators, one union."""

    def test_bitwise_vs_homogeneous_batch(self, accel):
        mappings, lane_problems = _mixed_lanes(ALL_PROBLEMS, accel, 4, seed=3)
        mega = evaluate_megabatch(accel, mappings, lane_problems)
        assert len(mega) == len(mappings)
        for g, problem in enumerate(mega.problems):
            lanes = mega.problem_lanes(g)
            assert all(lane_problems[i].name == problem.name for i in lanes)
            ref = evaluate_batch(accel, [mappings[i] for i in lanes], problem)
            nt = len(problem.tensors)
            assert np.array_equal(mega.accesses[lanes][:, :nt, :], ref.accesses)
            assert np.array_equal(mega.accesses[lanes][:, nt:, :], 0.0 * mega.accesses[lanes][:, nt:, :])
            assert np.array_equal(mega.noc_words[lanes], ref.noc_words)
            assert np.array_equal(mega.cycles[lanes], ref.cycles)
            assert np.array_equal(mega.utilization[lanes], ref.utilization)
            assert np.array_equal(mega.edp[lanes], ref.edp)

    def test_scalar_parity_all_workloads(self, accel):
        mappings, lane_problems = _mixed_lanes(ALL_PROBLEMS, accel, 3, seed=11)
        model = CostModel(accel)
        edp = model.evaluate_many_grouped(mappings, lane_problems)
        scalar = [model.evaluate(m, p).edp for m, p in zip(mappings, lane_problems)]
        np.testing.assert_allclose(edp, scalar, rtol=PARITY_RTOL)

    def test_problem_slice_bitwise(self, accel):
        mappings, lane_problems = _mixed_lanes(TABLE1_PROBLEMS[:3], accel, 5, seed=5)
        mega = evaluate_megabatch(accel, mappings, lane_problems)
        for g, problem in enumerate(mega.problems):
            lanes = mega.problem_lanes(g)
            ref = evaluate_batch(accel, [mappings[i] for i in lanes], problem)
            got = mega.problem_slice(g)
            assert got.problem_name == ref.problem_name
            assert got.tensor_names == ref.tensor_names
            assert np.array_equal(got.accesses, ref.accesses)
            assert np.array_equal(got.noc_words, ref.noc_words)
            assert np.array_equal(got.cycles, ref.cycles)
            assert np.array_equal(got.edp, ref.edp)

    def test_stats_at_matches_scalar(self, accel):
        mappings, lane_problems = _mixed_lanes(
            (TABLE1_PROBLEMS[0], TABLE1_PROBLEMS[-1]), accel, 3, seed=9
        )
        model = CostModel(accel)
        mega = model.evaluate_megabatch(mappings, lane_problems)
        for i, (mapping, problem) in enumerate(zip(mappings, lane_problems)):
            scalar = model.evaluate(mapping, problem)
            row = mega.stats_at(i)
            assert row.problem_name == scalar.problem_name
            np.testing.assert_allclose(row.edp, scalar.edp, rtol=PARITY_RTOL)
            by_key = {(r.tensor, r.level): r for r in scalar.records}
            assert len(row.records) == len(scalar.records)
            for record in row.records:
                ref = by_key[(record.tensor, record.level)]
                np.testing.assert_allclose(
                    record.accesses, ref.accesses, rtol=PARITY_RTOL
                )


class TestHeterogeneousDims:
    """Different dim counts in one union: conv (7 dims) next to GEMM (3)."""

    CONV = make_cnn_layer("mega_conv", n=2, k=8, c=6, h=8, w=8, r=3, s=3)
    GEMM = make_gemm("mega_gemm", m=24, n=16, k=32)
    CONV1D = make_conv1d("mega_1d", w=40, r=5)

    def test_three_way_dim_mix_bitwise(self, accel):
        problems = (self.CONV, self.GEMM, self.CONV1D)
        mappings, lane_problems = _mixed_lanes(problems, accel, 6, seed=17)
        mega = evaluate_megabatch(accel, mappings, lane_problems)
        assert mega.accesses.shape[1] == max(len(p.tensors) for p in problems)
        for g, problem in enumerate(mega.problems):
            lanes = mega.problem_lanes(g)
            ref = evaluate_batch(accel, [mappings[i] for i in lanes], problem)
            assert np.array_equal(mega.edp[lanes], ref.edp)
            assert np.array_equal(mega.cycles[lanes], ref.cycles)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_hypothesis_conv_gemm_union(self, data):
        accel = small_accelerator()
        conv_space = MapSpace(self.CONV, accel)
        gemm_space = MapSpace(self.GEMM, accel)
        seeds = data.draw(
            st.lists(st.integers(0, 2**16), min_size=2, max_size=6),
            label="seeds",
        )
        lanes = []
        for i, seed in enumerate(seeds):
            if data.draw(st.booleans(), label=f"use_conv_{i}"):
                lanes.append((conv_space.sample(seed), self.CONV))
            else:
                lanes.append((gemm_space.sample(seed), self.GEMM))
        mappings = [m for m, _ in lanes]
        lane_problems = [p for _, p in lanes]
        mega = evaluate_megabatch(accel, mappings, lane_problems)
        model = CostModel(accel)
        for i, (mapping, problem) in enumerate(lanes):
            np.testing.assert_allclose(
                mega.edp[i], model.evaluate(mapping, problem).edp, rtol=PARITY_RTOL
            )

    def test_wide_nest_fallback_bitwise(self, accel, monkeypatch):
        """The masked-position fallback must agree with the bit-packed path."""
        problems = (self.CONV, self.GEMM)
        mappings, lane_problems = _mixed_lanes(problems, accel, 4, seed=23)
        mega = compile_megabatch(mappings, lane_problems)
        fast = batch_mod.evaluate_mega_compiled(accel, mega)
        monkeypatch.setattr(batch_mod, "_BITPACK_MAX_WIDTH", 0)
        slow = batch_mod.evaluate_mega_compiled(accel, mega)
        assert np.array_equal(fast.accesses, slow.accesses)
        assert np.array_equal(fast.noc_words, slow.noc_words)
        assert np.array_equal(fast.cycles, slow.cycles)
        assert np.array_equal(fast.edp, slow.edp)


class TestEdgesAndValidation:
    PROBLEM = make_cnn_layer("mega_edge", n=2, k=8, c=6, h=8, w=8, r=3, s=3)

    def test_empty_megabatch(self):
        accel = default_accelerator()
        mega = evaluate_megabatch(accel, [], [])
        assert len(mega) == 0
        assert mega.edp.shape == (0,)
        assert CostModel(accel).evaluate_many_grouped([], []) == []

    def test_single_lane(self):
        accel = default_accelerator()
        mapping = MapSpace(self.PROBLEM, accel).sample(1)
        mega = evaluate_megabatch(accel, [mapping], [self.PROBLEM])
        ref = evaluate_batch(accel, [mapping], self.PROBLEM)
        assert np.array_equal(mega.edp, ref.edp)

    def test_misaligned_lanes_raise(self):
        accel = default_accelerator()
        mapping = MapSpace(self.PROBLEM, accel).sample(0)
        with pytest.raises(ValueError, match="misaligned"):
            compile_megabatch([mapping], [self.PROBLEM, self.PROBLEM])

    def test_wrong_dims_raise(self):
        accel = default_accelerator()
        gemm = make_gemm("mega_val_gemm", m=8, n=8, k=8)
        mapping = MapSpace(gemm, accel).sample(0)
        with pytest.raises(ValueError, match="do not match problem dims"):
            compile_megabatch([mapping], [self.PROBLEM])

    def test_wrong_factor_product_raises(self):
        accel = default_accelerator()
        mapping = MapSpace(self.PROBLEM, accel).sample(0)
        factors = list(mapping.factors("K"))
        factors[0] *= 2
        broken = mapping.with_tile_factors("K", factors)
        good = MapSpace(self.PROBLEM, accel).sample(1)
        with pytest.raises(ValueError, match="multiply to"):
            compile_megabatch([good, broken], [self.PROBLEM, self.PROBLEM])

    def test_stats_at_rejects_out_of_range(self):
        accel = default_accelerator()
        mappings = MapSpace(self.PROBLEM, accel).sample_many(3, seed=2)
        mega = evaluate_megabatch(accel, mappings, [self.PROBLEM] * 3)
        with pytest.raises(IndexError):
            mega.stats_at(-1)
        with pytest.raises(IndexError):
            mega.stats_at(3)

    def test_equal_problems_behind_different_objects_merge(self):
        accel = default_accelerator()
        twin = make_cnn_layer("mega_edge", n=2, k=8, c=6, h=8, w=8, r=3, s=3)
        mappings = MapSpace(self.PROBLEM, accel).sample_many(4, seed=4)
        mega = compile_megabatch(mappings, [self.PROBLEM, twin, self.PROBLEM, twin])
        assert len(mega.problems) == 1
        assert len(mega) == 4
