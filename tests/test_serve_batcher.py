"""MicroBatcher flush policy under a fake clock: size, deadline, priority."""

from concurrent.futures import Future

import pytest

from repro.engine import MappingRequest
from repro.serve import MicroBatcher, PendingRequest, Priority, problem_group_key
from repro.workloads import make_conv1d, problem_by_name

PROBLEM_A = make_conv1d("batcher_a", w=32, r=3)
PROBLEM_B = make_conv1d("batcher_b", w=48, r=5)


def _pending(problem=PROBLEM_A, priority=Priority.NORMAL, seed=0):
    request = MappingRequest(problem, searcher="random", iterations=10, seed=seed)
    return PendingRequest(request=request, future=Future(), priority=priority)


class TestSizeTrigger:
    def test_flushes_exactly_at_max_batch(self):
        batcher = MicroBatcher(max_batch=3, max_wait_s=10.0)
        assert batcher.add(_pending(seed=0), now=0.0) is None
        assert batcher.add(_pending(seed=1), now=0.1) is None
        batch = batcher.add(_pending(seed=2), now=0.2)
        assert batch is not None
        assert batch.trigger == "size"
        assert len(batch) == 3
        assert batcher.depth == 0

    def test_default_group_mixes_problems(self):
        """The default policy batches across problems: the megabatched
        kernels price a mixed union in one pass, so a cross-problem pair
        fills (and flushes) one shared group."""
        batcher = MicroBatcher(max_batch=2, max_wait_s=10.0)
        assert batcher.add(_pending(PROBLEM_A, seed=0), now=0.0) is None
        batch = batcher.add(_pending(PROBLEM_B, seed=1), now=0.0)
        assert batch is not None
        assert batch.trigger == "size"
        assert {p.request.problem.name for p in batch.items} == {
            PROBLEM_A.name,
            PROBLEM_B.name,
        }
        assert batcher.depth == 0

    def test_problem_groups_fill_independently(self):
        batcher = MicroBatcher(
            max_batch=2, max_wait_s=10.0, group_key=problem_group_key
        )
        assert batcher.add(_pending(PROBLEM_A, seed=0), now=0.0) is None
        assert batcher.add(_pending(PROBLEM_B, seed=1), now=0.0) is None
        assert batcher.depth == 2
        batch = batcher.add(_pending(PROBLEM_A, seed=2), now=0.0)
        assert batch is not None
        assert all(
            p.request.problem.name == PROBLEM_A.name for p in batch.items
        )
        assert batcher.depth == 1  # PROBLEM_B still waiting


class TestDeadlineTrigger:
    def test_poll_respects_max_wait(self):
        batcher = MicroBatcher(max_batch=100, max_wait_s=0.5)
        batcher.add(_pending(seed=0), now=10.0)
        assert batcher.poll(now=10.4) == []
        flushed = batcher.poll(now=10.5)
        assert len(flushed) == 1
        assert flushed[0].trigger == "deadline"

    def test_deadline_set_by_oldest_member(self):
        batcher = MicroBatcher(max_batch=100, max_wait_s=0.5)
        batcher.add(_pending(seed=0), now=0.0)
        batcher.add(_pending(seed=1), now=0.4)  # same group, newer
        assert batcher.next_deadline() == pytest.approx(0.5)
        flushed = batcher.poll(now=0.5)
        assert len(flushed) == 1
        assert len(flushed[0]) == 2

    def test_next_deadline_empty(self):
        assert MicroBatcher().next_deadline() is None

    def test_lone_request_not_stuck(self):
        """A request in a group that never fills still ships at deadline."""
        batcher = MicroBatcher(max_batch=64, max_wait_s=0.01)
        batcher.add(_pending(seed=0), now=0.0)
        assert [len(b) for b in batcher.poll(now=0.011)] == [1]


class TestPriorityLane:
    def test_high_priority_flushes_group_immediately(self):
        batcher = MicroBatcher(max_batch=100, max_wait_s=10.0)
        batcher.add(_pending(seed=0), now=0.0)
        batch = batcher.add(_pending(priority=Priority.HIGH, seed=1), now=0.1)
        assert batch is not None
        assert batch.trigger == "priority"
        # Rides with the compatible request that was already waiting.
        assert len(batch) == 2

    def test_items_ordered_high_first(self):
        batcher = MicroBatcher(max_batch=3, max_wait_s=10.0)
        batcher.add(_pending(seed=0), now=0.0)
        batcher.add(_pending(seed=1, priority=Priority.HIGH), now=0.0)
        # HIGH arrival flushed the group of two already; refill:
        batcher = MicroBatcher(max_batch=3, max_wait_s=10.0)
        normal = _pending(seed=0)
        high = _pending(seed=1, priority=Priority.HIGH)
        batcher.add(normal, now=0.0)
        batch = batcher.add(high, now=0.0)
        assert [item.priority for item in batch.items] == [
            Priority.HIGH, Priority.NORMAL,
        ]
        assert batch.priority == Priority.HIGH


class TestDrain:
    def test_flush_all_empties_every_group(self):
        batcher = MicroBatcher(
            max_batch=100, max_wait_s=10.0, group_key=problem_group_key
        )
        batcher.add(_pending(PROBLEM_A, seed=0), now=0.0)
        batcher.add(_pending(PROBLEM_B, seed=1), now=0.0)
        batches = batcher.flush_all(now=0.0)
        assert sorted(len(b) for b in batches) == [1, 1]
        assert all(b.trigger == "drain" for b in batches)
        assert batcher.depth == 0
        assert batcher.next_deadline() is None


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_s=-1.0)

    def test_problem_group_key_separates_zoo_problems(self):
        batcher = MicroBatcher(
            max_batch=2, max_wait_s=10.0, group_key=problem_group_key
        )
        batcher.add(_pending(problem_by_name("BERT_QKV"), seed=0), now=0.0)
        batcher.add(_pending(problem_by_name("BERT_FFN1"), seed=1), now=0.0)
        assert batcher.depth == 2  # sharded policy keeps GEMM shapes apart
