"""OnlineLearner: taps, background steps, gated hot-swap, hammer tests."""

import threading

import numpy as np
import pytest

from repro.core import MindMappings, MindMappingsConfig, TrainingConfig
from repro.costmodel.accelerator import small_accelerator
from repro.engine.engine import EngineConfig, MappingEngine, MappingRequest
from repro.learn.gate import GateConfig
from repro.learn.lifecycle import LearnConfig, OnlineLearner
from repro.learn.registry import ModelRegistry
from repro.learn.replay import ReplayConfig
from repro.learn.trainer import OnlineTrainerConfig
from repro.workloads import make_conv1d

TARGET = make_conv1d("lc_target", w=48, r=5)


def _engine() -> MappingEngine:
    config = EngineConfig(
        mm_config=MindMappingsConfig(
            dataset_samples=300,
            training=TrainingConfig(hidden_layers=(16, 16), epochs=2),
        ),
        train_seed=0,
        training_problems={
            "conv1d": (
                make_conv1d("lc_train_a", w=8, r=2),
                make_conv1d("lc_train_b", w=12, r=3),
            )
        },
    )
    return MappingEngine(small_accelerator(), config)


def _learn_config(**overrides) -> LearnConfig:
    defaults = dict(
        replay=ReplayConfig(
            capacity_per_problem=256,
            holdout_capacity_per_problem=96,
            holdout_every=4,
        ),
        trainer=OnlineTrainerConfig(steps=250, batch_size=64),
        gate=GateConfig(min_samples=24),
        min_new_samples=128,
    )
    defaults.update(overrides)
    return LearnConfig(**defaults)


def _traffic(engine, rounds=1, base_seed=0, iterations=60):
    for index in range(rounds):
        for searcher in ("random", "annealing"):
            for offset in range(3):
                engine.map(MappingRequest(
                    TARGET, searcher=searcher, iterations=iterations,
                    seed=base_seed + 100 * index + 10 * offset
                    + (5 if searcher == "annealing" else 0),
                ))


class TestTaps:
    def test_request_path_only_enqueues(self):
        """Serving with taps attached observes samples but trains nothing
        until the background step runs — zero learning on the hot path."""
        engine = _engine()
        learner = OnlineLearner(engine, _learn_config()).attach()
        _traffic(engine, rounds=1)
        assert learner.observed.value > 0
        assert learner.train_rounds.value == 0
        assert learner.replay_buffer("conv1d") is None  # not even ingested
        learner.ingest()
        assert learner.replay_buffer("conv1d").depth > 0

    def test_detach_removes_taps(self):
        engine = _engine()
        learner = OnlineLearner(engine, _learn_config()).attach()
        learner.detach()
        _traffic(engine, rounds=1)
        assert learner.observed.value == 0

    def test_finalize_tap_captures_winners(self):
        """Even surrogate-driven searches (no oracle misses mid-search)
        contribute their finalized winner."""
        engine = _engine()
        learner = OnlineLearner(engine, _learn_config()).attach()
        engine.map(MappingRequest(TARGET, searcher="gradient", iterations=10, seed=0))
        # At minimum the winner's final true-cost evaluation was observed
        # (as an oracle miss and/or the finalize tap).
        assert learner.observed.value >= 1

    def test_winner_not_double_counted(self):
        """The finalize scoring re-prices the winner through the oracle (an
        upgrade miss); the sample must still be observed exactly once."""
        engine = _engine()
        learner = OnlineLearner(engine, _learn_config()).attach()
        engine.map(MappingRequest(TARGET, searcher="random", iterations=10, seed=0))
        stats = engine.oracle_stats()
        # Every unique candidate was observed once; the finalize upgrade
        # miss (counted in `misses`) was deliberately not re-reported.
        assert learner.observed.value == stats.misses - 1

    def test_finalize_tap_is_fallback_for_untapped_oracles(self):
        """An oracle without a miss listener still feeds the learner: the
        finalize tap captures each served winner (and only the winner)."""
        from repro.engine.oracle import AnalyticalOracle

        engine = _engine()
        engine.oracle = AnalyticalOracle(engine.accelerator)
        learner = OnlineLearner(engine, _learn_config()).attach()
        assert not learner._miss_tap_active
        engine.map(MappingRequest(TARGET, searcher="random", iterations=10, seed=0))
        assert learner.observed.value == 1

    def test_queue_bound_drops_oldest(self):
        engine = _engine()
        learner = OnlineLearner(engine, _learn_config(max_pending=2)).attach()
        _traffic(engine, rounds=1)
        assert learner.dropped.value > 0
        with learner._pending_lock:
            assert len(learner._pending) <= 2


class TestLifecycle:
    def test_traffic_trains_gates_and_swaps(self):
        engine = _engine()
        learner = OnlineLearner(engine, _learn_config()).attach()
        frozen = engine.surrogate_for("conv1d")
        swapped = False
        for round_index in range(6):
            _traffic(engine, rounds=1, base_seed=1000 * round_index)
            learner.step()
            if learner.swaps.value:
                swapped = True
                break
        assert swapped
        assert engine.surrogate_for("conv1d") is not frozen
        assert engine.loaded_algorithms()["conv1d"].startswith("online:v")
        report = learner.last_report("conv1d")
        assert report is not None and report.accepted
        assert report.candidate_spearman >= report.incumbent_spearman

    def test_impossible_gate_keeps_incumbent(self):
        engine = _engine()
        learner = OnlineLearner(
            engine,
            _learn_config(gate=GateConfig(min_samples=24, min_spearman_gain=10.0)),
        ).attach()
        frozen = engine.surrogate_for("conv1d")
        _traffic(engine, rounds=2)
        reports = learner.step()
        assert learner.train_rounds.value >= 1
        assert learner.swaps.value == 0
        assert learner.rejected_swaps.value >= 1
        assert all(not report.accepted for report in reports)
        assert engine.surrogate_for("conv1d") is frozen

    def test_registry_records_accepted_swaps(self, tmp_path):
        engine = _engine()
        registry = ModelRegistry(tmp_path)
        learner = OnlineLearner(engine, _learn_config(), registry=registry).attach()
        for round_index in range(6):
            _traffic(engine, rounds=1, base_seed=1000 * round_index)
            learner.step()
            if learner.swaps.value:
                break
        assert registry.latest_version("conv1d") == 1
        meta = registry.metadata("conv1d", 1)
        assert "gate_spearman" in meta
        assert engine.loaded_algorithms()["conv1d"] == "online:v1"

    def test_rollback_reinstalls_prior_version(self, tmp_path):
        engine = _engine()
        registry = ModelRegistry(tmp_path)
        learner = OnlineLearner(engine, _learn_config(), registry=registry)
        # Two published versions (direct publishes stand in for two
        # accepted rounds).
        pipeline = engine.pipeline_for("conv1d")
        registry.publish(pipeline)
        variant = MindMappings(pipeline.surrogate.clone(), engine.accelerator)
        for parameter in variant.surrogate.network.parameters():
            parameter.data += 1e-3
        registry.publish(variant)
        restored = learner.rollback("conv1d")
        assert restored == 1
        assert engine.loaded_algorithms()["conv1d"] == "online:v1(rollback)"
        served = engine.surrogate_for("conv1d")
        for key, value in served.network.state_dict().items():
            np.testing.assert_array_equal(
                value, pipeline.surrogate.network.state_dict()[key]
            )

    def test_rollback_without_registry_raises(self):
        learner = OnlineLearner(_engine(), _learn_config())
        with pytest.raises(RuntimeError):
            learner.rollback("conv1d")

    def test_background_thread_runs_steps(self):
        engine = _engine()
        learner = OnlineLearner(
            engine, _learn_config(poll_interval_s=0.01)
        )
        with learner:
            _traffic(engine, rounds=1, iterations=40)
            deadline = threading.Event()
            for _ in range(200):  # up to ~2s for the daemon to ingest
                if learner.replay_buffer("conv1d") is not None:
                    break
                deadline.wait(0.01)
        assert learner.replay_buffer("conv1d") is not None
        assert learner.replay_buffer("conv1d").depth > 0
        # Context exit stopped the thread and detached the taps.
        assert learner._thread is None

    def test_metrics_snapshot_schema(self):
        engine = _engine()
        learner = OnlineLearner(engine, _learn_config()).attach()
        for round_index in range(6):
            _traffic(engine, rounds=1, base_seed=1000 * round_index)
            learner.step()
            if learner.swaps.value:
                break
        snapshot = learner.metrics_snapshot()
        assert set(snapshot) >= {
            "pending", "observed", "dropped", "train_rounds", "swaps",
            "rejected_swaps", "replay", "versions", "gate", "last_train_loss",
        }
        assert snapshot["replay"]["conv1d"]["depth"] > 0
        assert snapshot["versions"]["conv1d"] >= 1
        assert snapshot["gate"]["conv1d"]["accepted"] is True

    def test_server_snapshot_carries_learning(self):
        from repro.serve.server import MappingServer, ServeConfig

        engine = _engine()
        learner = OnlineLearner(engine, _learn_config()).attach()
        with MappingServer(
            engine, ServeConfig(max_batch=4, max_wait_s=0.005), learner=learner
        ) as server:
            server.map(MappingRequest(TARGET, searcher="random",
                                      iterations=20, seed=3))
            snapshot = server.metrics_snapshot()
        assert "learning" in snapshot
        assert snapshot["learning"]["observed"] > 0


class TestHotSwapHammer:
    def test_swap_is_atomic_under_concurrent_serving(self):
        """Serving threads hammer gradient searches while the main thread
        hot-swaps surrogate versions as fast as it can: every response must
        be valid, every search must finish on a coherent surrogate object,
        and nothing may deadlock or tear."""
        engine = _engine()
        base = engine.pipeline_for("conv1d")
        versions = [base]
        for seed in (1, 2):
            surrogate = base.surrogate.clone()
            rng = np.random.default_rng(seed)
            for parameter in surrogate.network.parameters():
                parameter.data += rng.normal(scale=1e-3, size=parameter.data.shape)
            versions.append(MindMappings(surrogate, engine.accelerator))

        errors = []
        responses = []
        responses_lock = threading.Lock()
        stop = threading.Event()

        def serve(worker: int) -> None:
            try:
                for index in range(12):
                    response = engine.map(MappingRequest(
                        TARGET, searcher="gradient", iterations=8,
                        seed=worker * 100 + index,
                    ))
                    with responses_lock:
                        responses.append(response)
            except BaseException as error:  # noqa: BLE001 — report, don't hang
                errors.append(error)

        def swapper() -> None:
            index = 0
            while not stop.is_set():
                engine.install_pipeline(
                    "conv1d", versions[index % len(versions)],
                    source=f"hammer:v{index}",
                )
                index += 1

        workers = [
            threading.Thread(target=serve, args=(w,), daemon=True)
            for w in range(4)
        ]
        swap_thread = threading.Thread(target=swapper, daemon=True)
        swap_thread.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        stop.set()
        swap_thread.join(timeout=10)

        assert not errors, f"serving under hot-swap failed: {errors[:3]}"
        assert len(responses) == 4 * 12
        for response in responses:
            assert response.norm_edp >= 1.0 - 1e-9
            assert response.n_evaluations >= 1

    def test_inflight_search_keeps_resolved_surrogate(self):
        """A prepared search holds its surrogate through a swap: the
        object resolved at prepare time is what the searcher uses, even
        after install_pipeline replaces the engine's current version."""
        engine = _engine()
        prepared = engine._prepare_search(
            MappingRequest(TARGET, searcher="gradient", iterations=8, seed=0)
        )
        old_surrogate = prepared.searcher.surrogate
        replacement = MindMappings(
            engine.pipeline_for("conv1d").surrogate.clone(), engine.accelerator
        )
        engine.install_pipeline("conv1d", replacement, source="swap-test")
        assert prepared.searcher.surrogate is old_surrogate
        assert engine.surrogate_for("conv1d") is replacement.surrogate
        # The in-flight search still completes against its own version.
        result = prepared.searcher.run(8, seed=0)
        assert result.n_evaluations >= 1
