"""Gradient-correctness tests for the autograd engine.

Every differentiable op is checked against central finite differences on
random inputs — the foundation everything in Phase 1/Phase 2 rests on.
"""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad

RNG = np.random.default_rng(0)
EPS = 1e-6
TOL = 1e-5


def finite_difference(f, x: np.ndarray) -> np.ndarray:
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        up = f(x.copy().reshape(x.shape))
        flat[i] = original - EPS
        down = f(x.copy().reshape(x.shape))
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * EPS)
    return grad


def check_gradient(op, shape=(3, 4), positive=False):
    """Compare autograd to finite differences for scalar loss sum(op(x))."""
    data = RNG.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    x = Tensor(data.copy(), requires_grad=True)
    loss = op(x).sum()
    loss.backward()

    def scalar(values):
        return op(Tensor(values)).sum().item()

    expected = finite_difference(scalar, data.copy())
    np.testing.assert_allclose(x.grad, expected, rtol=TOL, atol=TOL)


class TestElementwiseGradients:
    def test_add_constant(self):
        check_gradient(lambda x: x + 3.0)

    def test_neg(self):
        check_gradient(lambda x: -x)

    def test_mul_constant(self):
        check_gradient(lambda x: x * 2.5)

    def test_mul_self(self):
        check_gradient(lambda x: x * x)

    def test_div(self):
        check_gradient(lambda x: 1.0 / x, positive=True)

    def test_pow(self):
        check_gradient(lambda x: x**3)

    def test_relu(self):
        check_gradient(lambda x: x.relu())

    def test_tanh(self):
        check_gradient(lambda x: x.tanh())

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid())

    def test_abs(self):
        # keep inputs away from the kink
        check_gradient(lambda x: x.abs(), positive=True)

    def test_exp(self):
        check_gradient(lambda x: x.exp())

    def test_log(self):
        check_gradient(lambda x: x.log(), positive=True)

    def test_clip(self):
        check_gradient(lambda x: x.clip(-0.5, 0.5))

    def test_composite(self):
        check_gradient(lambda x: ((x * 2 + 1).tanh() * x).relu())


class TestMatmulGradients:
    def test_matrix_matrix(self):
        w = RNG.normal(size=(4, 2))
        check_gradient(lambda x: x.matmul(w), shape=(3, 4))

    def test_matmul_left_operand(self):
        x_data = RNG.normal(size=(3, 4))
        w = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        loss = Tensor(x_data).matmul(w).sum()
        loss.backward()

        def scalar(values):
            return (x_data @ values).sum()

        expected = finite_difference(scalar, w.data.copy())
        np.testing.assert_allclose(w.grad, expected, rtol=TOL, atol=TOL)

    def test_vector_matrix(self):
        w = RNG.normal(size=(4, 2))
        check_gradient(lambda x: x.matmul(w), shape=(4,))


class TestReductionsAndShaping:
    def test_sum_all(self):
        check_gradient(lambda x: x.sum())

    def test_sum_axis(self):
        check_gradient(lambda x: x.sum(axis=0))

    def test_mean(self):
        check_gradient(lambda x: x.mean())

    def test_reshape(self):
        check_gradient(lambda x: x.reshape(12) * np.arange(12.0))

    def test_select(self):
        check_gradient(lambda x: x.select(1, axis=-1) * 2.0)

    def test_concat(self):
        a_data = RNG.normal(size=(3, 2))
        b = Tensor(RNG.normal(size=(3, 3)), requires_grad=True)
        loss = (Tensor.concat([Tensor(a_data), b], axis=1) ** 2).sum()
        loss.backward()

        def scalar(values):
            return (np.concatenate([a_data, values], axis=1) ** 2).sum()

        expected = finite_difference(scalar, b.data.copy())
        np.testing.assert_allclose(b.grad, expected, rtol=TOL, atol=TOL)


class TestBroadcasting:
    def test_bias_broadcast(self):
        bias = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        x = RNG.normal(size=(3, 4))
        loss = (Tensor(x) + bias).sum()
        loss.backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0), rtol=TOL)

    def test_scalar_broadcast(self):
        scale = Tensor(2.0, requires_grad=True)
        x = RNG.normal(size=(3, 4))
        loss = (Tensor(x) * scale).sum()
        loss.backward()
        np.testing.assert_allclose(scale.grad, x.sum(), rtol=TOL)


class TestGraphMechanics:
    def test_gradient_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        loss = (x * 3) + (x * 5)
        loss.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [8.0])

    def test_detach_stops_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x.detach() * 3
        assert not y.requires_grad

    def test_no_grad_context(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        with no_grad():
            y = x * 3
        assert not y.requires_grad

    def test_backward_on_nonscalar_needs_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_without_grad_flag_raises(self):
        x = Tensor(np.ones(1))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_zero_grad(self):
        x = Tensor(np.ones(1), requires_grad=True)
        (x * 2).backward(np.ones(1))
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_repr(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))
        assert "shape=(2,)" in repr(Tensor(np.ones(2)))
