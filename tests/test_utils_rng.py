"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=10)
        b = ensure_rng(42).integers(0, 1_000_000, size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=10)
        b = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert (a != b).any()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 1_000_000, size=20)
        b = children[1].integers(0, 1_000_000, size=20)
        assert (a != b).any()

    def test_deterministic_from_seed(self):
        a = spawn_rngs(7, 3)[1].integers(0, 1_000_000, size=5)
        b = spawn_rngs(7, 3)[1].integers(0, 1_000_000, size=5)
        assert (a == b).all()

    def test_from_generator(self):
        parent = np.random.default_rng(0)
        children = spawn_rngs(parent, 3)
        assert len(children) == 3

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
