"""Tests for CSV/JSON curve export."""

import csv

import numpy as np
import pytest

from repro.harness import MethodCurve, curves_to_csv, curves_to_json, load_curves_json


@pytest.fixture
def curves():
    def make(name, finals):
        values = np.asarray(finals, dtype=float)
        return MethodCurve(
            method=name,
            problem="toy",
            grid=np.arange(1.0, len(values) + 1),
            mean_best_norm_edp=values,
            std_best_norm_edp=values * 0.1,
            runs=3,
        )

    return {"MM": make("MM", [9, 4, 2]), "SA": make("SA", [9, 8, 7])}


class TestCsv:
    def test_long_format(self, curves, tmp_path):
        path = tmp_path / "curves.csv"
        curves_to_csv(curves, path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["problem", "method", "grid", "mean_best_norm_edp", "std"]
        assert len(rows) == 1 + 6  # header + 2 methods x 3 points
        methods = {row[1] for row in rows[1:]}
        assert methods == {"MM", "SA"}

    def test_values_roundtrip_textually(self, curves, tmp_path):
        path = tmp_path / "curves.csv"
        curves_to_csv(curves, path)
        content = path.read_text()
        assert "toy,MM,3,2" in content


class TestJson:
    def test_roundtrip(self, curves, tmp_path):
        path = tmp_path / "curves.json"
        curves_to_json(curves, path)
        loaded = load_curves_json(path)
        assert set(loaded) == {"MM", "SA"}
        for name in curves:
            np.testing.assert_allclose(
                loaded[name].mean_best_norm_edp, curves[name].mean_best_norm_edp
            )
            assert loaded[name].runs == curves[name].runs
            assert loaded[name].problem == "toy"
            assert loaded[name].final_norm_edp == curves[name].final_norm_edp


class TestSearchResultJson:
    def test_roundtrip(self, tmp_path, conv1d_space):
        from repro.engine import make_searcher
        from repro.harness import load_result_json, result_to_json

        result = make_searcher("random", conv1d_space).search(12, seed=0)
        path = tmp_path / "trace.json"
        result_to_json(result, path)
        loaded = load_result_json(path)
        assert loaded.searcher == result.searcher
        assert loaded.problem == result.problem
        assert loaded.mappings == result.mappings
        assert loaded.objective_values == result.objective_values
        assert loaded.best_mapping == result.best_mapping
        assert loaded.wall_time == result.wall_time


class TestResponseExport:
    def test_response_file_roundtrip(self, tmp_path):
        """response_to_json and the HTTP gateway share one codec: files
        written here load back bit-equal through MappingResponse.from_dict."""
        from repro.costmodel.accelerator import small_accelerator
        from repro.engine import EngineConfig, MappingEngine, MappingRequest
        from repro.harness import load_response_json, response_to_json
        from repro.workloads import make_conv1d

        engine = MappingEngine(small_accelerator(), EngineConfig())
        response = engine.map(
            MappingRequest(make_conv1d("export_t", w=32, r=3),
                           searcher="random", iterations=10, seed=4,
                           tag="export")
        )
        path = tmp_path / "response.json"
        response_to_json(response, path)
        loaded = load_response_json(path)
        assert loaded.tag == "export"
        assert loaded.mapping == response.mapping
        assert loaded.stats == response.stats
        assert loaded.result.objective_values == response.result.objective_values

    def test_traceless_export(self, tmp_path):
        from repro.costmodel.accelerator import small_accelerator
        from repro.engine import EngineConfig, MappingEngine, MappingRequest
        from repro.harness import load_response_json, response_to_json
        from repro.workloads import make_conv1d

        engine = MappingEngine(small_accelerator(), EngineConfig())
        response = engine.map(
            MappingRequest(make_conv1d("export_u", w=32, r=3),
                           searcher="random", iterations=10, seed=4)
        )
        path = tmp_path / "response.json"
        response_to_json(response, path, include_trace=False)
        loaded = load_response_json(path)
        assert loaded.mapping == response.mapping
        assert loaded.n_evaluations == response.n_evaluations
