"""ModelRegistry: versioning, restart persistence, fingerprints, rollback."""

import numpy as np
import pytest

from repro.core import MindMappings, MindMappingsConfig, TrainingConfig
from repro.costmodel.accelerator import default_accelerator, small_accelerator
from repro.learn.registry import ModelRegistry
from repro.workloads import make_conv1d

ACCEL = small_accelerator()
TRAIN_PROBLEMS = (
    make_conv1d("reg_train_a", w=8, r=2),
    make_conv1d("reg_train_b", w=12, r=3),
)


@pytest.fixture(scope="module")
def pipeline():
    config = MindMappingsConfig(
        dataset_samples=200,
        training=TrainingConfig(hidden_layers=(8, 8), epochs=1),
    )
    return MindMappings.train("conv1d", ACCEL, config, problems=TRAIN_PROBLEMS, seed=0)


def _variant(pipeline, seed):
    """A pipeline with perturbed weights (a distinct 'version')."""
    surrogate = pipeline.surrogate.clone()
    rng = np.random.default_rng(seed)
    for parameter in surrogate.network.parameters():
        parameter.data += rng.normal(scale=1e-3, size=parameter.data.shape)
    return MindMappings(surrogate, pipeline.accelerator)


def _weights(surrogate):
    return surrogate.network.state_dict()


class TestPublishLoad:
    def test_versions_monotonic(self, tmp_path, pipeline):
        registry = ModelRegistry(tmp_path)
        assert registry.latest_version("conv1d") is None
        assert registry.publish(pipeline) == 1
        assert registry.publish(_variant(pipeline, 1)) == 2
        assert registry.versions("conv1d") == [1, 2]
        assert registry.latest_version("conv1d") == 2
        assert registry.algorithms() == ["conv1d"]

    def test_load_round_trips_weights_exactly(self, tmp_path, pipeline):
        registry = ModelRegistry(tmp_path)
        registry.publish(pipeline)
        loaded, version = registry.load("conv1d", ACCEL)
        assert version == 1
        original = _weights(pipeline.surrogate)
        restored = _weights(loaded.surrogate)
        assert set(original) == set(restored)
        for key in original:
            np.testing.assert_array_equal(original[key], restored[key])

    def test_metadata_recorded(self, tmp_path, pipeline):
        registry = ModelRegistry(tmp_path)
        registry.publish(pipeline, metadata={"gate_spearman": "0.9"})
        meta = registry.metadata("conv1d", 1)
        assert meta["algorithm"] == "conv1d"
        assert meta["version"] == "1"
        assert meta["accel_fingerprint"] == ACCEL.fingerprint()
        assert meta["gate_spearman"] == "0.9"

    def test_no_temp_files_left_behind(self, tmp_path, pipeline):
        registry = ModelRegistry(tmp_path)
        registry.publish(pipeline)
        leftovers = [p.name for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []

    def test_concurrent_publisher_never_clobbered(self, tmp_path, pipeline):
        """Another process publishing into the same directory must not be
        overwritten: the foreign artifact's bytes survive, and this
        registry's publish lands on the next free number."""
        ours = ModelRegistry(tmp_path)
        ours.publish(pipeline)  # v1
        # A "foreign process" (a second registry over the same dir, opened
        # after v1 so both believe v2 is next) publishes v2 first.
        theirs = ModelRegistry(tmp_path)
        assert theirs.publish(_variant(pipeline, 11)) == 2
        foreign_bytes = theirs.path_for("conv1d", 2).read_bytes()
        # Our registry's high-water still says 1; its publish must detect
        # the on-disk v2 and claim v3 instead of clobbering it.
        assert ours.publish(_variant(pipeline, 12)) == 3
        assert theirs.path_for("conv1d", 2).read_bytes() == foreign_bytes
        assert ModelRegistry(tmp_path).versions("conv1d") == [1, 2, 3]

    def test_unknown_version_raises(self, tmp_path, pipeline):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(LookupError):
            registry.load("conv1d", ACCEL)
        registry.publish(pipeline)
        with pytest.raises(LookupError):
            registry.load("conv1d", ACCEL, version=7)


class TestRestartPersistence:
    def test_index_rebuilt_from_disk(self, tmp_path, pipeline):
        first = ModelRegistry(tmp_path)
        first.publish(pipeline)
        first.publish(_variant(pipeline, 2))
        # "Process restart": a brand-new registry over the same directory.
        reopened = ModelRegistry(tmp_path)
        assert reopened.versions("conv1d") == [1, 2]
        loaded, version = reopened.load("conv1d", ACCEL)
        assert version == 2
        for key, value in _weights(loaded.surrogate).items():
            np.testing.assert_array_equal(
                value, _weights(_variant(pipeline, 2).surrogate)[key]
            )

    def test_restart_preserves_highwater_after_rollback(self, tmp_path, pipeline):
        first = ModelRegistry(tmp_path)
        first.publish(pipeline)
        first.publish(_variant(pipeline, 3))
        first.rollback("conv1d")
        reopened = ModelRegistry(tmp_path)
        assert reopened.versions("conv1d") == [1]
        # v2's number stays reserved even across restart.
        assert reopened.publish(_variant(pipeline, 4)) == 3


class TestFingerprints:
    def test_mismatched_accelerator_rejected(self, tmp_path, pipeline):
        registry = ModelRegistry(tmp_path)
        registry.publish(pipeline)
        with pytest.raises(ValueError, match="fingerprint"):
            registry.load("conv1d", default_accelerator())


class TestRollback:
    def test_rollback_restores_prior_version_byte_identically(
        self, tmp_path, pipeline
    ):
        registry = ModelRegistry(tmp_path)
        registry.publish(pipeline)
        v1_bytes = registry.path_for("conv1d", 1).read_bytes()
        registry.publish(_variant(pipeline, 5))
        restored = registry.rollback("conv1d")
        assert restored == 1
        assert registry.latest_version("conv1d") == 1
        # The artifact file was never rewritten: bytes identical.
        assert registry.path_for("conv1d", 1).read_bytes() == v1_bytes
        loaded, _ = registry.load("conv1d", ACCEL)
        for key, value in _weights(loaded.surrogate).items():
            np.testing.assert_array_equal(value, _weights(pipeline.surrogate)[key])

    def test_retired_artifact_kept_for_audit(self, tmp_path, pipeline):
        registry = ModelRegistry(tmp_path)
        registry.publish(pipeline)
        registry.publish(_variant(pipeline, 6))
        registry.rollback("conv1d")
        retired = list(tmp_path.glob("*.rolledback"))
        assert len(retired) == 1
        assert "v000002" in retired[0].name

    def test_rollback_requires_prior_version(self, tmp_path, pipeline):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(LookupError):
            registry.rollback("conv1d")
        registry.publish(pipeline)
        with pytest.raises(LookupError):
            registry.rollback("conv1d")

    def test_versions_stay_monotonic_after_rollback(self, tmp_path, pipeline):
        registry = ModelRegistry(tmp_path)
        registry.publish(pipeline)                       # v1
        registry.publish(_variant(pipeline, 7))          # v2
        registry.rollback("conv1d")                      # back to v1
        assert registry.publish(_variant(pipeline, 8)) == 3
        assert registry.versions("conv1d") == [1, 3]
