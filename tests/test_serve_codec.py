"""Wire codec: problem/request round-trips, MappingResponse.from_dict identity."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.stats import CostStats, TensorLevelEnergy
from repro.engine import MappingRequest, MappingResponse
from repro.mapspace import MapSpace, Mapping
from repro.costmodel.accelerator import small_accelerator
from repro.search import SearchResult
from repro.serve import (
    problem_from_dict,
    problem_to_dict,
    request_from_dict,
    request_key,
    request_to_dict,
)
from repro.workloads import (
    TABLE1_PROBLEMS,
    TRANSFORMER_PROBLEMS,
    make_conv1d,
    problem_by_name,
)

PROBLEM = make_conv1d("codec_target", w=32, r=5)
SPACE = MapSpace(PROBLEM, small_accelerator())


class TestProblemCodec:
    @pytest.mark.parametrize(
        "problem",
        TABLE1_PROBLEMS + TRANSFORMER_PROBLEMS + (PROBLEM,),
        ids=lambda p: p.name,
    )
    def test_round_trip_through_json(self, problem):
        payload = json.loads(json.dumps(problem_to_dict(problem)))
        restored = problem_from_dict(payload)
        assert restored == problem

    def test_rejects_invalid_problem(self):
        payload = problem_to_dict(PROBLEM)
        payload["tensors"] = payload["tensors"][:1]  # drops the output tensor
        with pytest.raises(ValueError):
            problem_from_dict(payload)


class TestRequestCodec:
    def test_round_trip(self):
        request = MappingRequest(
            PROBLEM, searcher="sa", iterations=123, seed=9,
            searcher_config={"probe_moves": 4}, tag="abc",
        )
        restored = request_from_dict(json.loads(json.dumps(request_to_dict(request))))
        assert restored == request

    def test_non_wire_safe_config_raises(self):
        request = MappingRequest(
            PROBLEM, searcher="random", searcher_config={"cost_model": object()}
        )
        with pytest.raises(TypeError):
            request_to_dict(request)

    def test_defaults_fill_in(self):
        payload = {"problem": problem_to_dict(PROBLEM)}
        request = request_from_dict(payload)
        assert request.searcher == "gradient"
        assert request.iterations == 500
        assert request.seed is None


class TestRequestKey:
    def test_identical_requests_share_a_key(self):
        a = MappingRequest(PROBLEM, searcher="sa", iterations=50, seed=1, tag="x")
        b = MappingRequest(PROBLEM, searcher="annealing", iterations=50, seed=1,
                           tag="y")
        # Aliases canonicalize and tags are excluded: same work, same key.
        assert request_key(a) == request_key(b) is not None

    def test_differences_change_the_key(self):
        base = MappingRequest(PROBLEM, searcher="random", iterations=50, seed=1)
        for other in (
            MappingRequest(PROBLEM, searcher="random", iterations=51, seed=1),
            MappingRequest(PROBLEM, searcher="random", iterations=50, seed=2),
            MappingRequest(PROBLEM, searcher="genetic", iterations=50, seed=1),
            MappingRequest(problem_by_name("BERT_QKV"), searcher="random",
                           iterations=50, seed=1),
            MappingRequest(PROBLEM, searcher="random", iterations=50, seed=1,
                           searcher_config={"batch_size": 4}),
        ):
            assert request_key(base) != request_key(other)

    def test_non_idempotent_requests_have_no_key(self):
        assert request_key(
            MappingRequest(PROBLEM, searcher="random", iterations=5, seed=None)
        ) is None
        assert request_key(
            MappingRequest(PROBLEM, searcher="random", iterations=5, seed=1,
                           time_budget_s=1.0)
        ) is None
        assert request_key(
            MappingRequest(PROBLEM, searcher="random", iterations=5, seed=1,
                           searcher_config={"cost_model": object()})
        ) is None


def _mapping(seed: int) -> Mapping:
    return SPACE.sample(seed)


@st.composite
def responses(draw):
    """Synthesize structurally-valid MappingResponses with arbitrary floats."""
    finite = st.floats(min_value=1e-12, max_value=1e12, allow_nan=False)
    n_trace = draw(st.integers(min_value=1, max_value=4))
    mappings = [_mapping(draw(st.integers(0, 7))) for _ in range(n_trace)]
    values = [draw(finite) for _ in range(n_trace)]
    times = sorted(draw(finite) for _ in range(n_trace))
    result = SearchResult(
        searcher="Random", problem=PROBLEM.name, mappings=mappings,
        objective_values=values, eval_times=times, wall_time=draw(finite),
    )
    records = tuple(
        TensorLevelEnergy(tensor, level, draw(finite), draw(finite))
        for tensor in ("W", "I", "O")
        for level in ("L1", "L2", "DRAM")
    )
    stats = CostStats(
        problem_name=PROBLEM.name, records=records,
        noc_energy_pj=draw(finite), mac_energy_pj=draw(finite),
        cycles=draw(finite), utilization=draw(st.floats(0.01, 1.0)),
        spatial_pes=draw(st.integers(1, 4096)),
    )
    return MappingResponse(
        tag=draw(st.text(max_size=8)),
        problem=PROBLEM.name,
        searcher="Random",
        mapping=result.best_mapping,
        stats=stats,
        norm_edp=draw(finite),
        best_objective=result.best_objective,
        n_evaluations=n_trace,
        search_time_s=draw(finite),
        total_time_s=draw(finite),
        result=result,
        provenance={"engine": "repro.engine"},
    )


class TestResponseCodec:
    @settings(max_examples=40, deadline=None)
    @given(response=responses())
    def test_to_dict_from_dict_identity(self, response):
        """Satellite acceptance: to_dict → (JSON) → from_dict is lossless,
        trace included, and re-encoding reproduces the payload exactly."""
        payload = json.loads(json.dumps(response.to_dict(include_trace=True)))
        restored = MappingResponse.from_dict(payload)
        assert restored.tag == response.tag
        assert restored.mapping == response.mapping
        assert restored.stats == response.stats
        assert restored.norm_edp == response.norm_edp
        assert restored.best_objective == response.best_objective
        assert restored.n_evaluations == response.n_evaluations
        assert restored.result.mappings == response.result.mappings
        assert restored.result.objective_values == response.result.objective_values
        assert restored.result.eval_times == response.result.eval_times
        assert restored.provenance == response.provenance
        assert restored.to_dict(include_trace=True) == payload

    @settings(max_examples=10, deadline=None)
    @given(response=responses())
    def test_traceless_payload_still_loads(self, response):
        payload = json.loads(json.dumps(response.to_dict(include_trace=False)))
        restored = MappingResponse.from_dict(payload)
        assert restored.mapping == response.mapping
        assert restored.stats == response.stats
        # The reconstructed minimal trace keeps the winner reachable.
        assert restored.result.best_mapping == response.mapping
        assert restored.convergence == [response.best_objective]
