"""Serving drain/health surface: begin_drain, healthz versions, SIGTERM.

Covers the serving-layer contracts the cluster rides on: non-blocking
drain (shards answer health checks while finishing in-flight work),
surrogate registry versions surfaced through ``health_snapshot``/
``/v1/healthz``/``metrics_snapshot``, ``SO_REUSEADDR`` rebinds, and the
signal-driven graceful shutdown of the serving entry point.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.core import MindMappings, MindMappingsConfig, TrainingConfig
from repro.costmodel.accelerator import small_accelerator
from repro.engine.engine import EngineConfig, MappingEngine, MappingRequest
from repro.serve.http import Gateway, install_signal_drain, start_gateway
from repro.serve.server import MappingServer, ServeConfig, ServerClosed
from repro.workloads import make_conv1d

REPO_ROOT = Path(__file__).resolve().parent.parent
PROBLEM = make_conv1d("drain_health", w=24, r=3)


def _engine() -> MappingEngine:
    return MappingEngine(small_accelerator(), EngineConfig())


def _training_engine() -> MappingEngine:
    """An engine whose lazy Phase-1 training is test-sized."""
    return MappingEngine(small_accelerator(), EngineConfig(
        mm_config=MindMappingsConfig(
            dataset_samples=200,
            training=TrainingConfig(hidden_layers=(8, 8), epochs=1),
        ),
        train_seed=0,
        training_problems={
            "conv1d": (
                make_conv1d("dh_train_a", w=8, r=2),
                make_conv1d("dh_train_b", w=12, r=3),
            )
        },
    ))


class TestBeginDrain:
    def test_begin_drain_is_non_blocking_and_serves_inflight(self):
        server = MappingServer(_engine(), ServeConfig(max_batch=4,
                                                      max_wait_s=0.01))
        future = server.submit(MappingRequest(
            PROBLEM, searcher="random", iterations=30, seed=0
        ))
        server.begin_drain()  # returns immediately, work still in flight
        assert not server.accepting
        with pytest.raises(ServerClosed):
            server.submit(MappingRequest(
                PROBLEM, searcher="random", iterations=10, seed=1
            ))
        # The admitted request still completes.
        assert future.result(timeout=60).n_evaluations >= 1
        assert server.shutdown(timeout=30)

    def test_begin_drain_idempotent(self):
        server = MappingServer(_engine(), ServeConfig())
        server.begin_drain()
        server.begin_drain()
        assert not server.accepting
        assert server.shutdown(timeout=10)

    def test_health_reports_draining(self):
        server = MappingServer(_engine(), ServeConfig())
        assert server.health_snapshot()["status"] == "ok"
        server.begin_drain()
        assert server.health_snapshot()["status"] == "draining"
        server.shutdown(timeout=10)


class TestSurrogateVersionReporting:
    def test_engine_versions_track_installs(self):
        engine = _training_engine()
        assert engine.surrogate_versions() == {}  # nothing loaded yet
        engine.map(MappingRequest(
            PROBLEM, searcher="random", iterations=10, seed=0
        ))
        # Oracle-driven traffic loads no surrogate: still empty.
        assert "conv1d" not in engine.surrogate_versions()

        pipeline = engine.pipeline_for("conv1d")  # lazy Phase-1 train
        versions = engine.surrogate_versions()
        assert versions["conv1d"]["version"] is None  # not from a registry
        assert versions["conv1d"]["fingerprint"] == (
            engine.accelerator.fingerprint()
        )

        engine.install_pipeline(
            "conv1d",
            MindMappings(pipeline.surrogate.clone(), engine.accelerator),
            source="registry:v3",
            version=3,
        )
        assert engine.surrogate_versions()["conv1d"] == {
            "version": 3,
            "fingerprint": engine.accelerator.fingerprint(),
            "source": "registry:v3",
        }
        # Installing without a version clears the registry association.
        engine.install_pipeline(
            "conv1d",
            MindMappings(pipeline.surrogate.clone(), engine.accelerator),
            source="manual",
        )
        assert engine.surrogate_versions()["conv1d"]["version"] is None

    def test_healthz_and_metrics_carry_versions(self):
        engine = _training_engine()
        pipeline = engine.pipeline_for("conv1d")
        engine.install_pipeline(
            "conv1d",
            MindMappings(pipeline.surrogate.clone(), engine.accelerator),
            source="registry:v7",
            version=7,
        )
        server = MappingServer(engine, ServeConfig())
        try:
            health = server.health_snapshot()
            assert health["surrogate_versions"]["conv1d"]["version"] == 7
            metrics = server.metrics_snapshot()
            assert metrics["surrogate_versions"]["conv1d"]["version"] == 7

            gateway = start_gateway(server)
            try:
                with urllib.request.urlopen(
                    f"{gateway.address}/v1/healthz", timeout=10
                ) as reply:
                    payload = json.loads(reply.read())
                assert payload["status"] == "ok"
                assert payload["surrogate_versions"]["conv1d"]["version"] == 7
            finally:
                gateway.shutdown()
        finally:
            server.shutdown(timeout=10)


class TestPortReuse:
    def test_gateway_rebinds_same_port_immediately(self):
        """SO_REUSEADDR: a restarted gateway must not die on EADDRINUSE
        while the previous incarnation's sockets sit in TIME_WAIT."""
        server = MappingServer(_engine(), ServeConfig())
        try:
            first = start_gateway(server)
            port = first.server_address[1]
            # Create a real connection so TIME_WAIT state exists.
            with urllib.request.urlopen(
                f"{first.address}/v1/healthz", timeout=10
            ) as reply:
                assert json.loads(reply.read())["status"] == "ok"
            first.shutdown()
            first.server_close()  # release the listener; TIME_WAIT remains
            second = Gateway(server, host="127.0.0.1", port=port)
            try:
                assert second.server_address[1] == port
            finally:
                second.server_close()
        finally:
            server.shutdown(timeout=10)


class TestSignalDrain:
    def test_install_signal_drain_sets_event(self):
        previous = {
            signum: signal.getsignal(signum)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            stop = install_signal_drain()
            assert not stop.is_set()
            os.kill(os.getpid(), signal.SIGTERM)
            assert stop.wait(timeout=10)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def test_custom_signal_set(self):
        previous = signal.getsignal(signal.SIGUSR1)
        try:
            stop = install_signal_drain(signals=(signal.SIGUSR1,))
            os.kill(os.getpid(), signal.SIGUSR1)
            assert stop.wait(timeout=10)
        finally:
            signal.signal(signal.SIGUSR1, previous)

    def test_serve_entry_point_sigterm_graceful_exit(self):
        """``python -m repro.serve`` exits 0 on SIGTERM after draining —
        the supervisor-restart contract (no dropped in-flight work, no
        dirty exit codes)."""
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{existing}" if existing else src
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0", "--quiet"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving on" in banner, f"unexpected banner: {banner!r}"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, f"exit {proc.returncode}:\n{out}"
            assert "draining" in out
        finally:
            if proc.poll() is None:
                proc.kill()
