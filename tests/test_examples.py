"""Smoke tests: every example script must at least import and expose main().

Full example runs train surrogates (minutes); importing them catches API
drift — stale imports, renamed symbols — which is the failure mode examples
actually suffer in practice.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {"quickstart", "compare_searchers", "mttkrp_search",
                "custom_accelerator", "cost_surface"} <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None))

    def test_custom_accelerator_helpers(self):
        """The custom-workload example's builders must produce valid parts."""
        module = _load(Path(__file__).parent.parent / "examples" / "custom_accelerator.py")
        accelerator = module.make_edge_accelerator()
        assert accelerator.num_pes == 64
        problem = module.make_grouped_conv("t", g=4, k=8, x=16, r=3)
        assert problem.algorithm == "grouped-conv1d"
        from repro.mapspace import MapSpace

        space = MapSpace(problem, accelerator)
        assert space.is_member(space.sample(0))
