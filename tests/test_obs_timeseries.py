"""Unit tests for the rolling-window telemetry ring on a fake clock."""

from __future__ import annotations

import pytest

from repro.obs.timeseries import (
    LATENCY_BUCKET_BOUNDS_S,
    LatencyDigest,
    MetricsSampler,
    TimeseriesRing,
)
from repro.obs.trace import FakeClock


@pytest.fixture
def clock():
    return FakeClock(1000.0)


@pytest.fixture
def ring(clock):
    return TimeseriesRing(interval_s=1.0, capacity=4, clock=clock)


class TestLatencyDigest:
    def test_moments_and_quantiles(self):
        digest = LatencyDigest()
        for ms in (1, 2, 3, 4, 100):
            digest.observe(ms / 1e3, {})
        snap = digest.snapshot()
        assert snap["count"] == 5
        assert snap["min_ms"] == pytest.approx(1.0)
        assert snap["max_ms"] == pytest.approx(100.0)
        assert snap["mean_ms"] == pytest.approx(22.0)
        # Quantiles interpolate within log2 buckets but stay in [min, max].
        assert snap["min_ms"] <= snap["p50_ms"] <= snap["max_ms"]
        assert snap["p50_ms"] <= snap["p99_ms"]

    def test_over_threshold_counts_are_exact(self):
        digest = LatencyDigest()
        thresholds = {"slo": 0.010}
        for seconds in (0.001, 0.010, 0.011, 0.5):
            digest.observe(seconds, thresholds)
        # Strictly above: 0.010 itself is within the objective.
        assert digest.over == {"slo": 2}

    def test_empty_digest_snapshot(self):
        assert LatencyDigest().snapshot() == {"count": 0}
        assert LatencyDigest().quantile(0.99) is None

    def test_bucket_bounds_double(self):
        assert LATENCY_BUCKET_BOUNDS_S[0] == pytest.approx(0.0005)
        for lower, upper in zip(LATENCY_BUCKET_BOUNDS_S,
                                LATENCY_BUCKET_BOUNDS_S[1:]):
            assert upper == pytest.approx(lower * 2)


class TestWindowing:
    def test_observations_land_in_clocked_windows(self, ring, clock):
        ring.observe_latency(0.01)
        clock.advance(1.0)
        ring.observe_latency(0.02)
        ring.observe_latency(0.03)
        windows = ring.snapshot()["windows"]
        assert [w["latency"]["count"] for w in windows] == [1, 2]
        assert windows[0]["index"] + 1 == windows[1]["index"]

    def test_absent_windows_read_as_no_activity(self, ring, clock):
        ring.observe_latency(0.01)
        clock.advance(3.0)  # two empty windows in between
        ring.observe_latency(0.01)
        windows = ring.snapshot()["windows"]
        assert len(windows) == 2  # idle windows are never materialized

    def test_capacity_evicts_oldest(self, ring, clock):
        for _ in range(6):
            ring.observe_latency(0.01)
            clock.advance(1.0)
        windows = ring.snapshot()["windows"]
        assert len(windows) == 4
        # Newest windows retained: the two oldest indices are gone.
        assert windows[0]["index"] == 2

    def test_partial_window_rates_use_elapsed_time(self, ring, clock):
        ring.record_counters({"served": 10.0})
        clock.advance(0.5)
        [window] = ring.snapshot()["windows"]
        assert window["complete"] is False
        assert window["rates"]["served"] == pytest.approx(20.0)  # 10 in 0.5s
        clock.advance(0.5)
        [window] = ring.snapshot()["windows"]
        assert window["complete"] is True
        assert window["rates"]["served"] == pytest.approx(10.0)

    def test_batch_stats(self, ring):
        ring.observe_batch(4)
        ring.observe_batch(8)
        [window] = ring.snapshot()["windows"]
        assert window["batch"] == {"count": 2, "mean": 6.0, "max": 8}


class TestCounterDeltas:
    def test_deltas_are_non_cumulative(self, ring, clock):
        ring.record_counters({"served": 5.0})
        clock.advance(1.0)
        ring.record_counters({"served": 12.0})
        windows = ring.snapshot()["windows"]
        assert [w["counters"].get("served") for w in windows] == [5.0, 7.0]

    def test_multiple_samples_accumulate_in_one_window(self, ring):
        ring.record_counters({"served": 5.0})
        ring.record_counters({"served": 9.0})
        [window] = ring.snapshot()["windows"]
        assert window["counters"]["served"] == pytest.approx(9.0)

    def test_counter_reset_clamps_to_zero(self, ring, clock):
        ring.record_counters({"served": 100.0})
        clock.advance(1.0)
        ring.record_counters({"served": 3.0})  # upstream restarted
        windows = ring.snapshot()["windows"]
        assert "served" not in windows[-1]["counters"]
        clock.advance(1.0)
        ring.record_counters({"served": 7.0})  # counting resumes from 3
        windows = ring.snapshot()["windows"]
        assert windows[-1]["counters"]["served"] == pytest.approx(4.0)

    def test_gauges_last_sample_wins(self, ring):
        ring.record_gauges({"queue_depth": 5.0})
        ring.record_gauges({"queue_depth": 2.0})
        [window] = ring.snapshot()["windows"]
        assert window["gauges"]["queue_depth"] == 2.0


class TestTotals:
    def test_totals_cover_the_horizon_only(self, ring, clock):
        ring.register_threshold("slo", 0.1)
        ring.observe_latency(0.5)            # bad, will age out
        ring.record_counters({"served": 1.0})
        clock.advance(2.0)
        ring.observe_latency(0.01)           # good, inside horizon
        ring.record_counters({"served": 3.0})
        totals = ring.totals(2.0)
        assert totals["latency_count"] == 1
        assert totals["over_threshold"] == {}
        assert totals["counters"] == {"served": 2.0}
        wide = ring.totals(10.0)
        assert wide["latency_count"] == 2
        assert wide["over_threshold"] == {"slo": 1}
        assert wide["counters"] == {"served": 3.0}

    def test_registered_threshold_counts_from_first_observation(self, ring):
        ring.register_threshold("slo", 0.1)
        ring.observe_latency(0.2)
        assert ring.totals(5.0)["over_threshold"] == {"slo": 1}


class TestSnapshotProjection:
    def test_metric_projects_a_dotted_path(self, ring, clock):
        ring.record_counters({"served": 2.0})
        clock.advance(1.0)
        ring.record_counters({"served": 5.0})
        snap = ring.snapshot(metric="counters.served")
        assert snap["metric"] == "counters.served"
        assert [p["value"] for p in snap["series"]] == [2.0, 3.0]
        assert all({"index", "start_s", "end_s", "complete", "value"}
                   <= set(p) for p in snap["series"])

    def test_unknown_metric_path_raises_keyerror(self, ring):
        ring.observe_latency(0.01)
        with pytest.raises(KeyError):
            ring.snapshot(metric="rates.bogus")
        with pytest.raises(KeyError):
            ring.snapshot(metric="bogus.path")

    def test_windows_truncates_to_newest(self, ring, clock):
        for _ in range(3):
            ring.observe_latency(0.01)
            clock.advance(1.0)
        snap = ring.snapshot(windows=2)
        assert len(snap["windows"]) == 2
        with pytest.raises(ValueError):
            ring.snapshot(windows=-1)

    def test_latest_rates_prefers_complete_windows(self, ring, clock):
        ring.record_counters({"served": 4.0})
        clock.advance(1.0)
        ring.record_counters({"served": 6.0})  # partial current window
        latest = ring.latest_rates()
        assert latest["counters"]["served"] == 4.0  # the complete one
        assert latest["complete"] is True

    def test_latest_rates_falls_back_to_partial(self, ring, clock):
        clock.advance(0.25)
        ring.record_counters({"served": 1.0})
        assert ring.latest_rates()["complete"] is False
        assert TimeseriesRing(clock=FakeClock()).latest_rates() == {}


class TestMetricsSampler:
    def test_sample_records_and_notifies(self, ring, clock):
        cumulative = {"served": 0.0}
        evaluations = []
        sampler = MetricsSampler(
            lambda: (dict(cumulative), {"queue_depth": 3.0}),
            ring,
            listeners=[lambda: evaluations.append(clock())],
            clock=clock,
        )
        cumulative["served"] = 5.0
        sampler.sample()
        clock.advance(1.0)
        cumulative["served"] = 8.0
        sampler.sample()
        assert sampler.samples == 2
        assert evaluations == [1000.0, 1001.0]
        windows = ring.snapshot()["windows"]
        assert [w["counters"]["served"] for w in windows] == [5.0, 3.0]
        assert windows[-1]["gauges"]["queue_depth"] == 3.0

    def test_constructor_validation(self, ring):
        with pytest.raises(ValueError):
            MetricsSampler(lambda: ({}, {}), ring, interval_s=0.0)
        with pytest.raises(ValueError):
            TimeseriesRing(interval_s=0.0)
        with pytest.raises(ValueError):
            TimeseriesRing(capacity=1)
