"""End-to-end cluster tests: real shard processes behind the router.

The module-scoped 2-shard cluster amortizes process spawn across the
read-only tests; lifecycle tests (failover, drain, overload) build their
own small fleets.  The slow-marked propagation test is the PR's
acceptance bar: a surrogate gate-passed by ONE shard's online learner is
hot-swapped into EVERY shard through the shared registry, no restarts.
"""

import json
import time
import urllib.request

import pytest

from repro.cluster.router import ClusterConfig, ClusterRouter
from repro.core import MindMappingsConfig, TrainingConfig
from repro.costmodel.accelerator import small_accelerator
from repro.engine.engine import (
    EngineConfig,
    MappingEngine,
    MappingRequest,
    MappingResponse,
)
from repro.serve.codec import request_to_dict
from repro.serve.http import start_gateway
from repro.serve.server import ServeConfig, ServerClosed, ServerOverloaded
from repro.workloads import make_conv1d

PROBLEMS = [make_conv1d(f"cluster_{w}", w=w, r=5) for w in (16, 24, 32, 48)]


def _requests(iterations=40, seeds=(0, 1)):
    return [
        MappingRequest(
            problem, searcher=searcher, iterations=iterations, seed=seed,
            tag=f"{problem.name}/{searcher}/{seed}",
        )
        for problem in PROBLEMS
        for searcher in ("random", "annealing")
        for seed in seeds
    ]


def _config(**overrides) -> ClusterConfig:
    defaults = dict(
        num_shards=2,
        accelerator=small_accelerator(),
        engine=EngineConfig(),
        serve=ServeConfig(max_batch=8, max_wait_s=0.01),
        health_interval_s=0.2,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@pytest.fixture(scope="module")
def cluster():
    router = ClusterRouter(_config()).start()
    yield router
    router.shutdown(timeout=30)


@pytest.fixture(scope="module")
def solo():
    return MappingEngine(small_accelerator(), EngineConfig())


class TestRouting:
    def test_responses_bit_identical_to_solo(self, cluster, solo):
        requests = _requests()
        futures = [cluster.submit(request) for request in requests]
        for request, future in zip(requests, futures):
            response = future.result(timeout=120)
            reference = solo.map(request)
            assert response.tag == request.tag
            assert response.mapping == reference.mapping
            assert response.stats.edp == reference.stats.edp
            assert response.norm_edp == reference.norm_edp

    def test_problem_locality(self, cluster):
        """Every request for one problem routes to the same shard, and the
        catalog spreads across both shards."""
        owners = {}
        for request in _requests(seeds=(0, 1, 2, 3)):
            owner = cluster.shard_for(request)
            assert owners.setdefault(request.problem.name, owner) == owner
        assert set(owners.values()) == {0, 1}

    def test_unknown_searcher_rejected_at_the_door(self, cluster):
        with pytest.raises(KeyError):
            cluster.submit(MappingRequest(
                PROBLEMS[0], searcher="nope", iterations=10, seed=0
            ))
        # Wire-unsafe searcher config refused before dispatch, like serve.
        with pytest.raises(TypeError):
            cluster.submit(MappingRequest(
                PROBLEMS[0], searcher="random", iterations=10, seed=0,
                searcher_config={"callback": lambda: None},
            ))


class TestFleetViews:
    def test_metrics_aggregation(self, cluster, solo):
        cluster.map(MappingRequest(
            PROBLEMS[0], searcher="random", iterations=20, seed=50,
        ), timeout=120)
        snapshot = cluster.metrics_snapshot()
        assert set(snapshot["shards"]) == {"0", "1"}
        router_counters = snapshot["router"]["counters"]
        assert router_counters["served"] >= 1
        assert router_counters["served"] <= snapshot["fleet"]["counters"]["served"]
        assert snapshot["router"]["latency"]["count"] >= 1
        for shard in snapshot["shards"].values():
            assert shard["pid"] > 0
            assert "surrogate_versions" in shard
        assert "surrogate_versions" in snapshot["fleet"]

    def test_health_snapshot(self, cluster):
        health = cluster.health_snapshot()
        assert health["status"] == "ok"
        assert health["shards_live"] == 2
        assert health["shards_total"] == 2
        assert set(health["shards"]) == {"0", "1"}
        for shard in health["shards"].values():
            assert shard["status"] == "ok"
        assert "surrogate_versions" in health

    def test_gateway_fronts_router(self, cluster, solo):
        gateway = start_gateway(cluster)
        try:
            with urllib.request.urlopen(
                f"{gateway.address}/v1/healthz", timeout=10
            ) as reply:
                health = json.loads(reply.read())
            assert health["status"] == "ok"
            assert health["shards_live"] == 2

            request = MappingRequest(
                PROBLEMS[2], searcher="random", iterations=30, seed=77,
                tag="http",
            )
            body = json.dumps(
                {"request": request_to_dict(request)}
            ).encode("utf-8")
            with urllib.request.urlopen(
                urllib.request.Request(
                    f"{gateway.address}/v1/map", data=body,
                    headers={"Content-Type": "application/json"},
                ),
                timeout=120,
            ) as reply:
                served = MappingResponse.from_dict(
                    json.loads(reply.read())["response"]
                )
            assert served.mapping == solo.map(request).mapping

            with urllib.request.urlopen(
                f"{gateway.address}/v1/metrics", timeout=10
            ) as reply:
                metrics = json.loads(reply.read())
            assert metrics["router"]["counters"]["served"] >= 1
        finally:
            gateway.shutdown()


class TestLifecycle:
    def test_failover_and_respawn(self):
        """SIGKILL one shard: its keys fail over bit-identical, the monitor
        respawns it with the same shard id on a fresh process."""
        router = ClusterRouter(_config(health_interval_s=0.1)).start()
        try:
            request = MappingRequest(
                PROBLEMS[0], searcher="random", iterations=30, seed=5,
                tag="failover",
            )
            reference = MappingEngine(
                small_accelerator(), EngineConfig()
            ).map(request)
            victim = router._handles[router.shard_for(request)]
            victim_pid = victim.pid
            victim.process.kill()
            victim.process.join(timeout=10)

            response = router.map(request, timeout=120)
            assert response.mapping == reference.mapping
            assert router.counters["failovers"].value >= 1

            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if victim.live and victim.pid != victim_pid:
                    break
                time.sleep(0.05)
            assert victim.live and victim.pid != victim_pid, "no respawn"
            assert router.counters["respawns"].value >= 1
            assert router.map(request, timeout=120).mapping == reference.mapping
        finally:
            router.shutdown(timeout=30)

    def test_drain_refuses_new_work(self):
        router = ClusterRouter(_config()).start()
        assert router.accepting
        assert router.shutdown(timeout=60)
        assert not router.accepting
        with pytest.raises(ServerClosed):
            router.submit(MappingRequest(
                PROBLEMS[0], searcher="random", iterations=10, seed=0
            ))

    def test_router_backpressure(self):
        """The router's own in-flight bound rejects with ServerOverloaded
        (the gateway's 429) before shards are even asked."""
        router = ClusterRouter(_config(max_inflight=2)).start()
        try:
            overloaded = 0
            futures = []
            for seed in range(10):
                try:
                    futures.append(router.submit(MappingRequest(
                        PROBLEMS[1], searcher="random", iterations=60,
                        seed=seed,
                    )))
                except ServerOverloaded as exc:
                    assert exc.retry_after_s > 0
                    overloaded += 1
            assert overloaded >= 1, "in-flight bound never tripped"
            assert router.counters["rejected"].value == overloaded
            # Every attempt counts as submitted — rejected included — so
            # the availability SLO's bad/total stays meaningful under
            # overload (a full outage must read 100% bad, not 0/0).
            assert router.counters["submitted"].value == 10
            for future in futures:
                future.result(timeout=120)
        finally:
            router.shutdown(timeout=30)


@pytest.mark.slow
def test_surrogate_propagates_fleet_wide_without_restart(tmp_path):
    """The PR's acceptance bar: traffic for one problem lands on its owner
    shard, whose online learner gate-passes and publishes a surrogate to
    the shared registry; the OTHER shard's watcher must hot-swap it in —
    same version everywhere, no process restarted."""
    from repro.learn.gate import GateConfig
    from repro.learn.lifecycle import LearnConfig
    from repro.learn.replay import ReplayConfig
    from repro.learn.trainer import OnlineTrainerConfig

    target = make_conv1d("cluster_learn_target", w=48, r=5)
    engine_config = EngineConfig(
        mm_config=MindMappingsConfig(
            dataset_samples=300,
            training=TrainingConfig(hidden_layers=(16, 16), epochs=2),
        ),
        train_seed=0,
        training_problems={
            "conv1d": (
                make_conv1d("cluster_learn_a", w=8, r=2),
                make_conv1d("cluster_learn_b", w=12, r=3),
            )
        },
    )
    learn_config = LearnConfig(
        replay=ReplayConfig(
            capacity_per_problem=256,
            holdout_capacity_per_problem=96,
            holdout_every=4,
        ),
        trainer=OnlineTrainerConfig(steps=250, batch_size=64),
        gate=GateConfig(min_samples=24),
        min_new_samples=128,
        poll_interval_s=0.05,
    )
    router = ClusterRouter(ClusterConfig(
        num_shards=2,
        accelerator=small_accelerator(),
        engine=engine_config,
        serve=ServeConfig(max_batch=8, max_wait_s=0.01),
        learn=learn_config,
        registry_dir=tmp_path,
        watch_interval_s=0.1,
    )).start()
    try:
        probe = MappingRequest(target, searcher="random", iterations=10, seed=0)
        owner = router.shard_for(probe)
        other = 1 - owner

        deadline = time.monotonic() + 300
        per_shard = {}
        round_index = 0
        while time.monotonic() < deadline:
            futures = [
                router.submit(MappingRequest(
                    target, searcher=searcher, iterations=60,
                    seed=1000 * round_index + 10 * offset
                    + (5 if searcher == "annealing" else 0),
                ))
                for searcher in ("random", "annealing")
                for offset in range(3)
            ]
            for future in futures:
                future.result(timeout=120)
            round_index += 1

            snapshot = router.metrics_snapshot()
            versions = snapshot["fleet"]["surrogate_versions"].get("conv1d")
            if versions is None:
                continue
            per_shard = versions["per_shard"]
            if (
                per_shard.get(str(owner)) is not None
                and per_shard.get(str(other)) is not None
                and versions["converged"]
            ):
                break
        else:
            pytest.fail(
                f"surrogate never propagated fleet-wide after "
                f"{round_index} traffic rounds: {per_shard}"
            )

        # Both shards serve the same registry version; the non-owner got
        # it from the watcher (its metrics say so), not from training.
        assert per_shard[str(owner)] == per_shard[str(other)] >= 1
        other_shard = router.metrics_snapshot()["shards"][str(other)]
        watcher_stats = other_shard.get("registry_watcher")
        assert watcher_stats is not None
        assert watcher_stats["adopted"] >= 1
        assert watcher_stats["adopted_versions"].get("conv1d") >= 1
        # No shard was restarted for the swap.
        assert router.counters["respawns"].value == 0
    finally:
        router.shutdown(timeout=60)
