"""The batched ask/tell protocol: parity, metering, vectorized restarts.

The central contract of the API redesign: ``Searcher.run()`` is nothing but
the generic ask → evaluate → tell loop, so an external driver speaking the
same protocol reproduces its traces exactly — for every registered searcher.
"""

import math

import pytest

from repro.engine.registry import make_searcher, searcher_names
from repro.search.base import BudgetedObjective, OracleSearcher


def hand_rolled_drive(searcher, iterations, seed, time_budget_s=None):
    """An external ask/tell driver: the documented protocol, by hand."""
    budget = searcher.make_budget(iterations, time_budget_s)
    searcher.reset(seed, iterations=iterations)
    while not budget.exhausted:
        batch = searcher.ask()
        if not batch:
            break
        values = budget.evaluate_many(batch)
        searcher.tell(batch[: len(values)], values)
    return budget.result(searcher.name, searcher.problem.name)


@pytest.fixture
def build(cnn_space, cost_model, conv1d_space, tiny_cost_model, trained_mm):
    """Construct a registered searcher with small, fast hyper-parameters.

    Exhaustive search runs on the tiny enumerable conv1d space; everything
    else on the realistic CNN space.
    """

    def _build(name):
        if name == "exhaustive":
            return make_searcher(
                "exhaustive", conv1d_space, cost_model=tiny_cost_model,
                include_orders=False,
            )
        config = {
            "gradient": {"surrogate": trained_mm.surrogate},
            "rl": {"cost_model": cost_model, "hidden_width": 16,
                   "batch_size": 4, "warmup": 4},
            "genetic": {"cost_model": cost_model, "population_size": 8},
        }.get(name, {"cost_model": cost_model})
        return make_searcher(name, cnn_space, **config)

    return _build


class TestRunEqualsHandRolledDriver:
    """run() and an external ask/tell driver produce identical traces."""

    @pytest.mark.parametrize("name", sorted(searcher_names()))
    def test_parity(self, name, build):
        iterations = 25
        searcher = build(name)
        via_run = searcher.run(iterations, seed=7)
        via_driver = hand_rolled_drive(searcher, iterations, seed=7)
        assert via_run.mappings == via_driver.mappings
        assert via_run.objective_values == via_driver.objective_values
        assert via_run.n_evaluations == iterations

    @pytest.mark.parametrize("name", sorted(searcher_names()))
    def test_run_is_deterministic_per_seed(self, name, build):
        searcher = build(name)
        first = searcher.run(20, seed=3)
        second = searcher.run(20, seed=3)
        assert first.mappings == second.mappings
        assert first.objective_values == second.objective_values

    def test_search_aliases_run(self, build):
        searcher = build("random")
        assert (
            searcher.search(15, seed=2).mappings
            == searcher.run(15, seed=2).mappings
        )


class TestBatchMetering:
    """BudgetedObjective.evaluate_many keeps accounting exact."""

    @staticmethod
    def _objective(mapping):
        return float(mapping)

    def test_truncates_to_remaining(self):
        budget = BudgetedObjective(self._objective, 5)
        values = budget.evaluate_many([1, 2, 3])
        assert values == [1.0, 2.0, 3.0]
        values = budget.evaluate_many([4, 5, 6, 7])
        assert values == [4.0, 5.0]
        assert budget.used == 5
        assert budget.exhausted

    def test_raises_when_already_spent(self):
        budget = BudgetedObjective(self._objective, 1)
        budget.evaluate_many([1])
        with pytest.raises(RuntimeError):
            budget.evaluate_many([2])

    def test_each_candidate_charged_latency(self):
        budget = BudgetedObjective(
            self._objective, 10, time_budget_s=100.0, simulated_latency_s=0.5
        )
        budget.evaluate_many([1, 2, 3])
        assert budget.elapsed >= 1.5
        # Per-candidate timestamps step by the virtual latency.
        steps = [b - a for a, b in zip(budget.times, budget.times[1:])]
        assert all(step >= 0.5 for step in steps)

    def test_time_budget_bounds_batch_size(self):
        """Under a time budget with oracle latency, a batch may overshoot
        by at most one candidate — same tolerance as the scalar path."""
        budget = BudgetedObjective(
            self._objective, 1000, time_budget_s=1.0, simulated_latency_s=0.25
        )
        values = budget.evaluate_many(list(range(100)))
        assert len(values) <= 5  # ceil(1.0 / 0.25) = 4, +1 tolerance
        assert budget.exhausted

    def test_batch_objective_used_for_batches(self):
        calls = []

        def batch_objective(mappings):
            calls.append(len(mappings))
            return [float(m) for m in mappings]

        budget = BudgetedObjective(
            self._objective, 10, batch_objective=batch_objective
        )
        budget.evaluate_many([1, 2, 3])
        assert calls == [3]

    def test_wrong_batch_value_count_rejected(self):
        budget = BudgetedObjective(
            self._objective, 10, batch_objective=lambda mappings: [0.0]
        )
        with pytest.raises(ValueError):
            budget.evaluate_many([1, 2, 3])

    def test_empty_batch_returns_empty(self):
        budget = BudgetedObjective(self._objective, 3)
        assert budget.evaluate_many([]) == []
        assert budget.used == 0

    def test_scalar_and_batched_traces_interleave(self):
        budget = BudgetedObjective(self._objective, 6)
        budget.evaluate(9)
        budget.evaluate_many([8, 7])
        budget.record(6, 6.0)
        assert budget.values == [9.0, 8.0, 7.0, 6.0]
        assert budget.times == sorted(budget.times)


class TestOracleSearcherBatching:
    def test_objective_batch_routes_through_evaluate_many(self, cnn_space,
                                                          cost_model):
        calls = []

        class SpyOracle:
            def evaluate_edp(self, mapping, problem):
                raise AssertionError("scalar path must not be used for batches")

            def evaluate_many(self, mappings, problem):
                calls.append(len(mappings))
                return cost_model.evaluate_many(mappings, problem)

        searcher = make_searcher("random", cnn_space, cost_model=SpyOracle(),
                                 batch_size=8)
        result = searcher.run(16, seed=0)
        assert result.n_evaluations == 16
        assert calls == [8, 8]
        for value in result.objective_values:
            assert math.isfinite(value)

    def test_scalar_oracle_still_works(self, cnn_space, cost_model):
        class ScalarOnly:
            def evaluate_edp(self, mapping, problem):
                return cost_model.evaluate_edp(mapping, problem)

        searcher = make_searcher("random", cnn_space, cost_model=ScalarOnly(),
                                 batch_size=4)
        result = searcher.run(8, seed=0)
        assert result.n_evaluations == 8


class TestVectorizedRestarts:
    def test_multi_restart_respects_budget(self, trained_mm, cnn_space):
        searcher = make_searcher(
            "gradient", cnn_space, surrogate=trained_mm.surrogate, restarts=4
        )
        result = searcher.run(40, seed=0)
        assert result.n_evaluations == 40
        assert all(cnn_space.is_member(m) for m in result.mappings)

    def test_multi_restart_deterministic(self, trained_mm, cnn_space):
        searcher = make_searcher(
            "gradient", cnn_space, surrogate=trained_mm.surrogate, restarts=3
        )
        first = searcher.run(30, seed=5)
        second = searcher.run(30, seed=5)
        assert first.mappings == second.mappings
        assert first.objective_values == second.objective_values

    def test_restart_batches_descend_together(self, trained_mm, cnn_space):
        """Each descend ask proposes one candidate per chain."""
        searcher = make_searcher(
            "gradient", cnn_space, surrogate=trained_mm.surrogate, restarts=3
        )
        searcher.reset(seed=1, iterations=30)
        batch = searcher.ask()
        assert len(batch) == 3

    def test_invalid_restarts_rejected(self, trained_mm, cnn_space):
        with pytest.raises(ValueError):
            make_searcher(
                "gradient", cnn_space, surrogate=trained_mm.surrogate, restarts=0
            )

    def test_multi_restart_never_queries_oracle(self, trained_mm, cnn_space,
                                                monkeypatch):
        from repro.costmodel.model import CostModel

        def forbidden(self, *args, **kwargs):
            raise AssertionError("gradient search must not query the oracle")

        monkeypatch.setattr(CostModel, "evaluate", forbidden)
        monkeypatch.setattr(CostModel, "evaluate_edp", forbidden)
        monkeypatch.setattr(CostModel, "evaluate_many", forbidden)
        searcher = make_searcher(
            "gradient", cnn_space, surrogate=trained_mm.surrogate, restarts=2
        )
        searcher.run(20, seed=2)
