"""OnlineTrainer (clone fine-tuning) and the validation gate."""

import numpy as np
import pytest

from repro.core import MindMappings, MindMappingsConfig, TrainingConfig
from repro.costmodel import CostModel
from repro.costmodel.accelerator import small_accelerator
from repro.learn.gate import GateConfig, GateReport, validate_swap
from repro.learn.replay import ReplayBuffer, ReplayConfig
from repro.learn.trainer import OnlineTrainer, OnlineTrainerConfig
from repro.mapspace import MapSpace
from repro.workloads import make_conv1d

ACCEL = small_accelerator()
MODEL = CostModel(ACCEL)
TARGET = make_conv1d("tg_target", w=40, r=5)
TRAIN_PROBLEMS = (
    make_conv1d("tg_train_a", w=8, r=2),
    make_conv1d("tg_train_b", w=12, r=3),
)


@pytest.fixture(scope="module")
def cold_pipeline():
    """A weak Phase-1 surrogate (off-distribution shapes, toy budget)."""
    config = MindMappingsConfig(
        dataset_samples=300,
        training=TrainingConfig(hidden_layers=(16, 16), epochs=2),
    )
    return MindMappings.train(
        "conv1d", ACCEL, config, problems=TRAIN_PROBLEMS, seed=0
    )


@pytest.fixture(scope="module")
def filled_buffer(cold_pipeline):
    """Replay samples from the target problem's true costs."""
    buffer = ReplayBuffer(
        cold_pipeline.surrogate,
        ACCEL,
        ReplayConfig(capacity_per_problem=256, holdout_capacity_per_problem=96,
                     holdout_every=4),
    )
    mappings = MapSpace(TARGET, ACCEL).sample_many(300, seed=9)
    batch = MODEL.evaluate_batch(mappings, TARGET)
    buffer.ingest(TARGET, mappings, [float(v) for v in batch.edp], batch)
    return buffer


class TestOnlineTrainer:
    def test_incumbent_untouched_and_candidate_trained(
        self, cold_pipeline, filled_buffer
    ):
        incumbent = cold_pipeline.surrogate
        before = {k: v.copy() for k, v in incumbent.network.state_dict().items()}
        trainer = OnlineTrainer(OnlineTrainerConfig(steps=50, batch_size=32))
        round_ = trainer.fine_tune(incumbent, filled_buffer, seed=0)
        assert round_ is not None and round_.steps == 50
        after = incumbent.network.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])
        # The candidate is a distinct, actually-updated network.
        assert round_.candidate is not incumbent
        changed = any(
            not np.array_equal(before[k], v)
            for k, v in round_.candidate.network.state_dict().items()
        )
        assert changed

    def test_candidate_shares_frozen_coordinate_systems(
        self, cold_pipeline, filled_buffer
    ):
        trainer = OnlineTrainer(OnlineTrainerConfig(steps=5))
        round_ = trainer.fine_tune(cold_pipeline.surrogate, filled_buffer, seed=1)
        candidate = round_.candidate
        incumbent = cold_pipeline.surrogate
        assert candidate.encoder is incumbent.encoder
        assert candidate.codec is incumbent.codec
        assert candidate.input_whitener is incumbent.input_whitener
        assert candidate.target_whitener is incumbent.target_whitener

    def test_fine_tuning_improves_holdout_fit(self, cold_pipeline, filled_buffer):
        trainer = OnlineTrainer(OnlineTrainerConfig(steps=250, batch_size=64))
        round_ = trainer.fine_tune(cold_pipeline.surrogate, filled_buffer, seed=2)
        x, truth = filled_buffer.holdout_truth()
        before = np.mean(
            (cold_pipeline.surrogate.predict_log2_norm_edp(x) - truth) ** 2
        )
        after = np.mean((round_.candidate.predict_log2_norm_edp(x) - truth) ** 2)
        assert after < before

    def test_empty_buffer_returns_none(self, cold_pipeline):
        empty = ReplayBuffer(cold_pipeline.surrogate, ACCEL)
        assert OnlineTrainer().fine_tune(cold_pipeline.surrogate, empty) is None

    def test_loss_track_recorded(self, cold_pipeline, filled_buffer):
        round_ = OnlineTrainer(OnlineTrainerConfig(steps=20)).fine_tune(
            cold_pipeline.surrogate, filled_buffer, seed=3
        )
        assert len(round_.losses) == 20
        assert round_.first_loss == round_.losses[0]
        assert round_.last_loss == round_.losses[-1]
        assert round_.mean_loss == pytest.approx(np.mean(round_.losses))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OnlineTrainerConfig(loss="nope")
        with pytest.raises(ValueError):
            OnlineTrainerConfig(optimizer="rmsprop")
        with pytest.raises(ValueError):
            OnlineTrainerConfig(steps=0)
        with pytest.raises(ValueError):
            OnlineTrainerConfig(batch_size=0)
        with pytest.raises(ValueError):
            OnlineTrainerConfig(learning_rate=0.0)

    def test_adam_path(self, cold_pipeline, filled_buffer):
        round_ = OnlineTrainer(
            OnlineTrainerConfig(steps=10, optimizer="adam")
        ).fine_tune(cold_pipeline.surrogate, filled_buffer, seed=4)
        assert round_ is not None and round_.steps == 10


class TestGate:
    def _improved(self, cold_pipeline, filled_buffer):
        trainer = OnlineTrainer(OnlineTrainerConfig(steps=250, batch_size=64))
        return trainer.fine_tune(cold_pipeline.surrogate, filled_buffer, seed=5)

    def test_improved_candidate_accepted(self, cold_pipeline, filled_buffer):
        round_ = self._improved(cold_pipeline, filled_buffer)
        x, truth = filled_buffer.holdout_truth()
        report = validate_swap(
            round_.candidate, cold_pipeline.surrogate, x, truth,
            GateConfig(min_samples=16),
        )
        assert report.accepted
        assert report.candidate_spearman >= report.incumbent_spearman
        assert report.algorithm == "conv1d"
        assert report.n_samples == len(truth)

    def test_poisoned_candidate_rejected(self, cold_pipeline, filled_buffer):
        poisoned = cold_pipeline.surrogate.clone()
        rng = np.random.default_rng(0)
        for parameter in poisoned.network.parameters():
            parameter.data[...] = rng.normal(scale=3.0, size=parameter.data.shape)
        x, truth = filled_buffer.holdout_truth()
        report = validate_swap(
            poisoned, cold_pipeline.surrogate, x, truth, GateConfig(min_samples=16)
        )
        assert not report.accepted
        assert "regressed" in report.reason or "MSE" in report.reason

    def test_identical_candidate_passes_default_gate(
        self, cold_pipeline, filled_buffer
    ):
        """min_spearman_gain=0 means non-regression: a tie is accepted."""
        x, truth = filled_buffer.holdout_truth()
        clone = cold_pipeline.surrogate.clone()
        report = validate_swap(
            clone, cold_pipeline.surrogate, x, truth, GateConfig(min_samples=16)
        )
        assert report.accepted
        assert report.candidate_spearman == pytest.approx(report.incumbent_spearman)

    def test_margin_blocks_ties(self, cold_pipeline, filled_buffer):
        x, truth = filled_buffer.holdout_truth()
        clone = cold_pipeline.surrogate.clone()
        report = validate_swap(
            clone, cold_pipeline.surrogate, x, truth,
            GateConfig(min_samples=16, min_spearman_gain=0.05),
        )
        assert not report.accepted

    def test_insufficient_samples_rejected(self, cold_pipeline):
        x = np.zeros((4, cold_pipeline.surrogate.encoder.length))
        truth = np.arange(4.0)
        report = validate_swap(
            cold_pipeline.surrogate, cold_pipeline.surrogate, x, truth,
            GateConfig(min_samples=32),
        )
        assert not report.accepted
        assert "insufficient" in report.reason

    def test_report_serializes(self, cold_pipeline, filled_buffer):
        x, truth = filled_buffer.holdout_truth()
        report = validate_swap(
            cold_pipeline.surrogate.clone(), cold_pipeline.surrogate, x, truth,
            GateConfig(min_samples=16),
        )
        payload = report.to_dict()
        assert isinstance(report, GateReport)
        assert set(payload) >= {
            "algorithm", "n_samples", "candidate_spearman",
            "incumbent_spearman", "candidate_mse", "incumbent_mse",
            "accepted", "reason",
        }
        assert "spearman" in report.describe()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GateConfig(min_samples=1)
        with pytest.raises(ValueError):
            GateConfig(max_mse_ratio=0.0)
