"""DebugLock runtime recorder: cycle detection and static cross-check."""

from __future__ import annotations

import threading
from pathlib import Path

from repro.analysis import LockGraph, build_lock_graph
from repro.analysis.debuglock import (
    DebugLock,
    LockTracer,
    crosscheck,
    static_label_map,
    trace_locks,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def test_debuglock_is_a_working_lock():
    tracer = LockTracer()
    lock = DebugLock(tracer, "L")
    with lock:
        assert lock.locked()
        assert not lock.acquire(blocking=False)
    assert not lock.locked()
    assert lock.acquire(blocking=False)
    lock.release()


def test_condition_over_debuglock_wait_notify():
    tracer = LockTracer()
    lock = DebugLock(tracer, "L")
    cond = threading.Condition(lock)
    hits = []

    def waiter():
        with cond:
            while not hits:
                cond.wait(timeout=5.0)
            hits.append("woke")

    thread = threading.Thread(target=waiter, daemon=True)
    thread.start()
    with cond:
        hits.append("signal")
        cond.notify()
    thread.join(timeout=5.0)
    assert hits == ["signal", "woke"]


def test_tracer_records_nested_acquisition_order():
    tracer = LockTracer()
    outer = DebugLock(tracer, "A")
    inner = DebugLock(tracer, "B")
    with outer:
        with inner:
            pass
    assert ("A", "B") in tracer.edges()
    assert ("B", "A") not in tracer.edges()
    assert tracer.graph().find_cycles() == []


def test_tracer_detects_opposite_orders_as_cycle():
    tracer = LockTracer()
    a = DebugLock(tracer, "A")
    b = DebugLock(tracer, "B")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    # Run serially on two threads: the *orders* conflict even though the
    # schedule never deadlocks — exactly what the recorder must catch.
    for fn in (forward, backward):
        t = threading.Thread(target=fn, daemon=True)
        t.start()
        t.join(timeout=5.0)
    cycles = tracer.graph().find_cycles()
    assert cycles == [["A", "B"]]


def test_trace_locks_patches_and_restores():
    original = threading.Lock
    with trace_locks() as tracer:
        lock = threading.Lock()
        assert isinstance(lock, DebugLock)
        with lock:
            pass
    assert threading.Lock is original
    assert isinstance(threading.Lock(), original().__class__)
    assert tracer.edges() == set()


def test_crosscheck_flags_runtime_order_contradicting_static():
    static = LockGraph()
    static.add("X._a", "X._b", "mod.py:10")
    tracer = LockTracer()
    tracer.record_acquire("X._b")
    tracer.record_acquire("X._a")  # runtime order b -> a
    conflicts = crosscheck(static, tracer)
    assert len(conflicts) == 1
    assert "X._a" in conflicts[0] and "X._b" in conflicts[0]


def test_crosscheck_ignores_unlabeled_creation_sites():
    static = LockGraph()
    static.add("X._a", "X._b", "mod.py:10")
    tracer = LockTracer()
    tracer.record_acquire("X._b")
    tracer.record_acquire("stdlib/queue.py:42")  # no static identity
    assert crosscheck(static, tracer) == []


def test_static_label_map_knows_real_lock_sites():
    labels = set(static_label_map([SRC], root=REPO_ROOT).values())
    assert "MappingServer._lock" in labels
    assert "RpcClient._lock" in labels


def test_hammer_traffic_agrees_with_static_graph():
    """Drive real serving traffic under the tracer; the observed orders
    unioned with the static graph must stay acyclic."""
    from repro.costmodel.accelerator import small_accelerator
    from repro.engine import EngineConfig, MappingEngine, MappingRequest
    from repro.serve import MappingServer, ServeConfig
    from repro.workloads import make_conv1d

    tracer = LockTracer(static_label_map([SRC], root=REPO_ROOT), root=REPO_ROOT)
    with trace_locks(tracer):
        engine = MappingEngine(small_accelerator(), EngineConfig())
        problem = make_conv1d("hammer", w=16, r=3)
        with MappingServer(
            engine, ServeConfig(max_batch=4, max_wait_s=0.02, workers=2)
        ) as server:
            futures = [
                server.submit(
                    MappingRequest(
                        problem, searcher="random", iterations=10, seed=seed
                    )
                )
                for seed in range(8)
            ]
            for future in futures:
                future.result(timeout=60.0)
    assert tracer.edges(), "tracer saw no lock activity — patch not applied?"
    conflicts = crosscheck(build_lock_graph([SRC], root=REPO_ROOT), tracer)
    assert conflicts == []
