"""Cohort coalescing: row-exact kernels, eligibility gating, solo parity."""

import pytest

from repro.costmodel import CostModel
from repro.costmodel.accelerator import small_accelerator
from repro.engine import AnalyticalOracle, EngineConfig, MappingEngine, MappingRequest
from repro.mapspace import MapSpace
from repro.serve.cohort import coalescible, serve_batch
from repro.workloads import make_conv1d, problem_by_name

PROBLEM = make_conv1d("cohort_target", w=32, r=5)


@pytest.fixture()
def engine():
    return MappingEngine(small_accelerator(), EngineConfig())


class TestRowExactness:
    """The determinism foundation: a mapping's batched cost is bitwise
    independent of which other mappings share its batch, so prewarming a
    union cannot change what any single search observes."""

    @pytest.mark.parametrize("problem", [PROBLEM, problem_by_name("BERT_QKV")],
                             ids=lambda p: p.name)
    def test_rows_independent_of_batch_composition(self, problem):
        accelerator = small_accelerator()
        model = CostModel(accelerator)
        space = MapSpace(problem, accelerator)
        population = space.sample_many(48, seed=0)
        union = model.evaluate_many(population, problem)
        # Prefix, suffix, and interleaved sub-batches all reproduce the
        # union's rows exactly.
        assert model.evaluate_many(population[:7], problem) == union[:7]
        assert model.evaluate_many(population[31:], problem) == union[31:]
        sub = population[1::5]
        assert model.evaluate_many(sub, problem) == union[1::5]


class TestEligibility:
    def test_oracle_searchers_are_coalescible(self, engine):
        prepared = engine._prepare_search(
            MappingRequest(PROBLEM, searcher="random", iterations=5, seed=0)
        )
        assert coalescible(engine, prepared)

    def test_time_budgeted_requests_run_solo(self, engine):
        prepared = engine._prepare_search(
            MappingRequest(PROBLEM, searcher="random", iterations=5, seed=0,
                           time_budget_s=10.0)
        )
        assert not coalescible(engine, prepared)

    def test_caller_supplied_oracle_runs_solo(self, engine):
        prepared = engine._prepare_search(
            MappingRequest(
                PROBLEM, searcher="random", iterations=5, seed=0,
                searcher_config={"cost_model": CostModel(engine.accelerator)},
            )
        )
        assert not coalescible(engine, prepared)

    def test_uncached_engine_oracle_disables_coalescing(self):
        accelerator = small_accelerator()
        engine = MappingEngine(
            accelerator, EngineConfig(), oracle=AnalyticalOracle(accelerator)
        )
        prepared = engine._prepare_search(
            MappingRequest(PROBLEM, searcher="random", iterations=5, seed=0)
        )
        assert not coalescible(engine, prepared)
        # ... but serving still works, just without prewarmed rounds.
        requests = [
            MappingRequest(PROBLEM, searcher="random", iterations=10, seed=s)
            for s in range(3)
        ]
        solo = [engine.map(request) for request in requests]
        batched = serve_batch(engine, requests)
        for left, right in zip(solo, batched):
            assert left.mapping == right.mapping
            assert left.stats == right.stats


class TestServeBatch:
    def test_preserves_input_order_across_groups(self, engine):
        other = make_conv1d("cohort_other", w=48, r=3)
        requests = [
            MappingRequest(PROBLEM, searcher="random", iterations=8, seed=0,
                           tag="a"),
            MappingRequest(other, searcher="annealing", iterations=8, seed=1,
                           tag="b"),
            MappingRequest(PROBLEM, searcher="annealing", iterations=8, seed=2,
                           tag="c"),
            MappingRequest(other, searcher="random", iterations=8, seed=3,
                           tag="d"),
        ]
        responses = serve_batch(engine, requests)
        assert [r.tag for r in responses] == ["a", "b", "c", "d"]
        assert [r.problem for r in responses] == [
            PROBLEM.name, other.name, PROBLEM.name, other.name,
        ]

    def test_single_member_cohort_matches_run(self, engine):
        request = MappingRequest(PROBLEM, searcher="genetic", iterations=20,
                                 seed=5)
        solo = engine.map(request)
        [batched] = serve_batch(engine, [request])
        assert batched.mapping == solo.mapping
        assert batched.result.objective_values == solo.result.objective_values

    def test_time_budget_member_served_inside_batch(self, engine):
        requests = [
            MappingRequest(PROBLEM, searcher="random", iterations=10, seed=0),
            MappingRequest(PROBLEM, searcher="random", iterations=10, seed=1,
                           time_budget_s=30.0),
        ]
        responses = serve_batch(engine, requests)
        assert all(r.stats.edp > 0 for r in responses)

    def test_empty_batch(self, engine):
        assert serve_batch(engine, []) == []

    def test_exhaustive_early_termination_in_cohort(self, engine):
        """A searcher whose ask() dries up (exhaustive enumeration on a tiny
        space) must finish cleanly while its cohort-mates continue."""
        requests = [
            MappingRequest(PROBLEM, searcher="exhaustive", iterations=5000,
                           seed=0),
            MappingRequest(PROBLEM, searcher="random", iterations=40, seed=1),
        ]
        solo = [engine.map(request) for request in requests]
        batched = serve_batch(engine, requests)
        for left, right in zip(solo, batched):
            assert left.mapping == right.mapping
            assert left.n_evaluations == right.n_evaluations


class _CountingInner:
    """CostModel proxy counting which inner pricing entry point ran."""

    def __init__(self, model):
        self.model = model
        self.mega_calls = 0
        self.many_calls = 0
        self.batch_calls = 0

    def evaluate(self, mapping, problem):
        return self.model.evaluate(mapping, problem)

    def evaluate_edp(self, mapping, problem):
        return self.model.evaluate_edp(mapping, problem)

    def evaluate_many(self, mappings, problem):
        self.many_calls += 1
        return self.model.evaluate_many(mappings, problem)

    def evaluate_batch(self, mappings, problem):
        self.batch_calls += 1
        return self.model.evaluate_batch(mappings, problem)

    def evaluate_megabatch(self, mappings, problems):
        self.mega_calls += 1
        return self.model.evaluate_megabatch(mappings, problems)


class TestCrossProblemCohort:
    """A mixed round is ONE kernel call, and answers stay bit-identical."""

    PROBLEMS = (
        make_conv1d("cohort_mix_a", w=32, r=5),
        problem_by_name("BERT_QKV"),
        problem_by_name("ResNet_Conv3"),
    )

    def _requests(self, iterations=24):
        return [
            MappingRequest(problem, searcher="random", iterations=iterations,
                           seed=index)
            for index, problem in enumerate(self.PROBLEMS)
        ]

    def test_mixed_round_is_one_kernel_call(self):
        from repro.costmodel import CachedOracle

        accelerator = small_accelerator()
        inner = _CountingInner(CostModel(accelerator))
        engine = MappingEngine(
            accelerator, EngineConfig(), oracle=CachedOracle(inner)
        )
        requests = self._requests()
        responses = serve_batch(engine, requests)
        # The three-problem round's misses were priced by exactly one
        # inner cost-kernel call — the cross-problem megabatch.
        assert inner.mega_calls == 1
        assert inner.many_calls == 0 and inner.batch_calls == 0
        stats = engine.oracle.stats()
        assert stats.hits == 3 * 24  # every metered evaluation was prewarmed
        assert stats.misses == 3  # only the final per-request reporting
        # Responses are bit-identical to solo serving on a fresh engine.
        solo_engine = MappingEngine(accelerator, EngineConfig())
        for request, response in zip(requests, responses):
            solo = solo_engine.map(request)
            assert solo.mapping == response.mapping
            assert solo.stats.edp == response.stats.edp
            assert (
                solo.result.objective_values == response.result.objective_values
            )

    def test_union_floor_gates_whole_round(self):
        """Below MIN_PREWARM_UNION *in total* no prewarm fires — and the
        responses are still bit-identical to solo serving."""
        accelerator = small_accelerator()
        engine = MappingEngine(accelerator, EngineConfig())
        requests = self._requests(iterations=2)  # union of 6 < 8
        responses = serve_batch(engine, requests)
        stats = engine.oracle.stats()
        assert stats.prewarmed == 0
        assert stats.hits == 0
        solo_engine = MappingEngine(accelerator, EngineConfig())
        for request, response in zip(requests, responses):
            solo = solo_engine.map(request)
            assert solo.mapping == response.mapping
            assert solo.stats.edp == response.stats.edp
