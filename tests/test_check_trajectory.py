"""Unit tests for the benchmark-trajectory gate's comparison logic."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_trajectory",
    Path(__file__).parent.parent / "benchmarks" / "check_trajectory.py",
)
check_trajectory = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_trajectory)


class TestDirection:
    @pytest.mark.parametrize("key,expected", [
        ("served_rps", "up"),
        ("speedup", "up"),
        ("hit_rate", "up"),
        ("p99_ms", "down"),
        ("mean_latency_s", "down"),
        ("throughput_ratio", "up"),   # explicitly throughput, not latency
        ("latency_ratio", "down"),    # lower-is-better wins mixed names
        ("unix_time", None),
        ("iterations_per_request", None),  # config constant, not a metric
        ("collapsed", None),          # undirected counter: context only
        ("count", None),              # a volume, not a latency
        ("sample_count", None),
        ("train_mse", None),          # "_ms" must not match inside "mse"
        ("surrogate_mse", None),
    ])
    def test_key_directions(self, key, expected):
        assert check_trajectory._direction(key) == expected


class TestCompare:
    def _docs(self, committed_value, fresh_value, key="served_rps"):
        return ({"results": {key: committed_value}},
                {"results": {key: fresh_value}})

    def test_within_band_passes(self):
        committed, fresh = self._docs(100.0, 80.0)
        regressions, checked = check_trajectory.compare_documents(
            committed, fresh, band=0.25
        )
        assert regressions == [] and len(checked) == 1

    def test_regression_beyond_band_fails(self):
        committed, fresh = self._docs(100.0, 70.0)
        regressions, _ = check_trajectory.compare_documents(
            committed, fresh, band=0.25
        )
        assert len(regressions) == 1
        assert "served_rps" in regressions[0]

    def test_lower_is_better_gates_the_other_way(self):
        committed, fresh = self._docs(100.0, 130.0, key="p99_ms")
        regressions, _ = check_trajectory.compare_documents(
            committed, fresh, band=0.25
        )
        assert len(regressions) == 1
        committed, fresh = self._docs(100.0, 120.0, key="p99_ms")
        regressions, _ = check_trajectory.compare_documents(
            committed, fresh, band=0.25
        )
        assert regressions == []

    def test_improvements_never_fail(self):
        committed, fresh = self._docs(100.0, 500.0)
        regressions, _ = check_trajectory.compare_documents(
            committed, fresh, band=0.25
        )
        assert regressions == []

    def test_lists_and_bools_are_not_gated(self):
        committed = {"times_s": [1.0, 2.0], "enabled": True,
                     "served_rps": 10.0}
        fresh = {"times_s": [9.0, 9.0], "enabled": False,
                 "served_rps": 10.0}
        regressions, checked = check_trajectory.compare_documents(
            committed, fresh, band=0.25
        )
        assert regressions == [] and len(checked) == 1

    def test_missing_fresh_leaf_is_skipped(self):
        regressions, checked = check_trajectory.compare_documents(
            {"served_rps": 10.0}, {"other_rps": 10.0}, band=0.25
        )
        assert regressions == [] and checked == []

    def test_count_under_a_latency_dict_is_context_not_a_gate(self):
        """Direction comes from the leaf key alone: ``latency_ms.count``
        is a request count, and serving *more* requests must never read
        as a latency regression just because the parent dict says
        latency."""
        committed = {"latency_ms": {"count": 100, "p99_ms": 5.0}}
        fresh = {"latency_ms": {"count": 200, "p99_ms": 5.0}}
        regressions, checked = check_trajectory.compare_documents(
            committed, fresh, band=0.25
        )
        assert regressions == []
        assert checked == [c for c in checked if "p99_ms" in c]
        assert len(checked) == 1


class TestMain:
    def _write(self, directory, value):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_demo.json").write_text(
            json.dumps({"results": {"served_rps": value}})
        )

    def test_exit_codes(self, tmp_path, capsys):
        fresh, committed = tmp_path / "fresh", tmp_path / "committed"
        self._write(fresh, 95.0)
        self._write(committed, 100.0)
        argv = ["--fresh", str(fresh), "--committed", str(committed)]
        assert check_trajectory.main(argv) == 0
        self._write(fresh, 10.0)
        assert check_trajectory.main(argv) == 1
        assert check_trajectory.main(
            ["--fresh", str(tmp_path / "empty"), "--committed",
             str(committed)]
        ) == 2
        capsys.readouterr()

    def test_update_ratchets_the_snapshot(self, tmp_path, capsys):
        fresh, committed = tmp_path / "fresh", tmp_path / "committed"
        self._write(fresh, 10.0)
        self._write(committed, 100.0)
        argv = ["--fresh", str(fresh), "--committed", str(committed)]
        assert check_trajectory.main(argv) == 1
        assert check_trajectory.main(argv + ["--update"]) == 0
        assert check_trajectory.main(argv) == 0
        capsys.readouterr()
