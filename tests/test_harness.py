"""Tests for the experiment harness: runners, summaries, surface, tables."""

import numpy as np
import pytest

from repro.costmodel import CostModel
from repro.harness import (
    ExperimentConfig,
    MethodCurve,
    ascii_curve,
    build_standard_methods,
    format_table,
    geomean_ratios,
    run_iso_iteration,
    run_iso_time,
    summarize_final_quality,
    sweep_cost_surface,
)
from repro.harness.experiments import _resample_to_grid
from repro.harness.summary import gap_to_lower_bound
from repro.search import RandomSearcher, SimulatedAnnealingSearcher


@pytest.fixture(scope="module")
def small_methods(accelerator):
    model = CostModel(accelerator)
    return {
        "Random": lambda space: RandomSearcher(space, model),
        "SA": lambda space: SimulatedAnnealingSearcher(space, model),
    }


class TestIsoIteration:
    def test_produces_curves(self, cnn_problem, accelerator, small_methods):
        config = ExperimentConfig(iterations=30, runs=2)
        curves = run_iso_iteration(cnn_problem, accelerator, small_methods, config, seed=0)
        assert set(curves) == {"Random", "SA"}
        for curve in curves.values():
            assert len(curve.grid) == 30
            assert curve.runs == 2
            # best-so-far is monotone non-increasing
            assert all(np.diff(curve.mean_best_norm_edp) <= 1e-12)
            # normalized EDP can never beat the lower bound
            assert (curve.mean_best_norm_edp >= 1.0).all()

    def test_deterministic(self, cnn_problem, accelerator, small_methods):
        config = ExperimentConfig(iterations=10, runs=2)
        a = run_iso_iteration(cnn_problem, accelerator, small_methods, config, seed=4)
        b = run_iso_iteration(cnn_problem, accelerator, small_methods, config, seed=4)
        np.testing.assert_array_equal(
            a["Random"].mean_best_norm_edp, b["Random"].mean_best_norm_edp
        )


class TestIsoTime:
    def test_produces_time_curves(self, cnn_problem, accelerator, small_methods):
        config = ExperimentConfig(
            iterations=50, runs=2, time_budget_s=0.15, oracle_latency_s=0.002,
            time_grid_points=8,
        )
        curves = run_iso_time(cnn_problem, accelerator, small_methods, config, seed=0)
        for curve in curves.values():
            assert len(curve.grid) == 8
            assert curve.grid[-1] == pytest.approx(0.15)
            assert all(np.diff(curve.mean_best_norm_edp) <= 1e-12)

    def test_latency_reduces_evaluations(self, cnn_problem, accelerator):
        """Charging oracle latency must reduce how many evals fit."""
        model = CostModel(accelerator)
        from repro.mapspace import MapSpace

        space = MapSpace(cnn_problem, accelerator)
        fast = RandomSearcher(space, model)
        slow = RandomSearcher(space, model)
        slow.simulated_latency_s = 0.05
        fast_result = fast.search(10_000, seed=0, time_budget_s=0.3)
        slow_result = slow.search(10_000, seed=0, time_budget_s=0.3)
        assert slow_result.n_evaluations < fast_result.n_evaluations
        assert slow_result.n_evaluations <= 7  # ~0.3 / 0.05


class TestResample:
    def test_step_interpolation(self):
        times = np.array([1.0, 2.0, 3.0])
        curve = np.array([5.0, 4.0, 2.0])
        grid = np.array([0.5, 1.5, 2.5, 9.0])
        np.testing.assert_array_equal(
            _resample_to_grid(times, curve, grid), [5.0, 5.0, 4.0, 2.0]
        )

    def test_empty_curve(self):
        out = _resample_to_grid(np.array([]), np.array([]), np.array([1.0]))
        assert np.isnan(out).all()


class TestSummaries:
    def _curves(self, finals):
        return {
            name: MethodCurve(
                method=name,
                problem="p",
                grid=np.array([1.0, 2.0]),
                mean_best_norm_edp=np.array([final * 2, final]),
                std_best_norm_edp=np.zeros(2),
                runs=1,
            )
            for name, final in finals.items()
        }

    def test_geomean_ratios(self):
        curves_a = self._curves({"MM": 2.0, "SA": 4.0})
        curves_b = self._curves({"MM": 3.0, "SA": 3.0})
        ratios = geomean_ratios({"a": curves_a, "b": curves_b})
        sa = next(r for r in ratios if r.baseline == "SA")
        assert sa.ratio == pytest.approx((2.0 * 1.0) ** 0.5)
        assert "SA / MM" in sa.describe()

    def test_missing_reference_raises(self):
        with pytest.raises(KeyError):
            geomean_ratios({"a": self._curves({"SA": 4.0})})

    def test_gap_to_lower_bound(self):
        data = {"a": self._curves({"MM": 4.0}), "b": self._curves({"MM": 9.0})}
        assert gap_to_lower_bound(data) == pytest.approx(6.0)

    def test_summarize_sorted(self):
        rows = summarize_final_quality(self._curves({"SA": 4.0, "MM": 2.0}))
        assert rows[0][0] == "MM"


class TestSurface:
    def test_sweep_structure(self, cnn_problem, accelerator):
        surface = sweep_cost_surface(cnn_problem, accelerator, "K", "C", seed=0)
        assert surface.norm_edp.shape == (len(surface.y_values), len(surface.x_values))
        assert (surface.norm_edp >= 1.0).all()
        assert surface.dynamic_range >= 1.0
        assert 0.0 <= surface.jump_fraction() <= 1.0
        assert surface.local_minima_count() >= 0

    def test_same_dim_raises(self, cnn_problem, accelerator):
        with pytest.raises(ValueError):
            sweep_cost_surface(cnn_problem, accelerator, "K", "K")


class TestTables:
    def test_format_table(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(("a",), [("1", "2")])

    def test_fidelity_table_renders_reports(self):
        from repro.core.analysis import FidelityReport
        from repro.harness import fidelity_table

        reports = [
            FidelityReport(
                problem="p1", samples=60, correlation=0.91,
                tail_correlation=0.55, tail_fraction=0.2,
                rank_agreement=0.87, mean_abs_error_log2=0.42,
            ),
            FidelityReport(
                problem="p2", samples=60, correlation=0.78,
                tail_correlation=0.31, tail_fraction=0.2,
                rank_agreement=0.70, mean_abs_error_log2=0.80,
            ),
        ]
        text = fidelity_table(reports, title="fidelity")
        lines = text.splitlines()
        assert lines[0] == "fidelity"
        assert "spearman" in lines[1]
        assert any("p1" in line and "0.870" in line for line in lines)
        assert any("p2" in line and "0.700" in line for line in lines)

    def test_ascii_curve_renders(self):
        curve = MethodCurve(
            method="MM",
            problem="p",
            grid=np.arange(1.0, 11.0),
            mean_best_norm_edp=np.geomspace(100, 2, 10),
            std_best_norm_edp=np.zeros(10),
            runs=1,
        )
        text = ascii_curve({"MM": curve}, width=20, height=6)
        assert "*=MM" in text
        assert len(text.splitlines()) >= 8

    def test_ascii_curve_empty(self):
        assert "(no curves)" in ascii_curve({})


class TestStandardMethods:
    def test_requires_surrogate_for_mm(self, accelerator):
        with pytest.raises(ValueError):
            build_standard_methods(accelerator, None, include=("MM",))

    def test_unknown_method_raises(self, accelerator):
        with pytest.raises(KeyError):
            build_standard_methods(accelerator, None, include=("Oracle",))

    def test_builds_factories(self, accelerator, trained_mm, cnn_space):
        methods = build_standard_methods(
            accelerator, trained_mm.surrogate, include=("MM", "SA", "Random")
        )
        for name, factory in methods.items():
            searcher = factory(cnn_space)
            assert searcher.name == name
