"""Unit tests for the sampling profiler and span-derived hotspots.

The profiler's frame source is injected (fake frame objects), so stack
collapsing, bounding, and counting are all exercised without threads;
``span_hotspots`` runs on a FakeClock tracer.
"""

from __future__ import annotations

import pytest

from repro.obs.profile import (
    TRUNCATED_STACK,
    SamplingProfiler,
    collapse_frame,
    span_hotspots,
)
from repro.obs.trace import FakeClock, Tracer


class _Code:
    def __init__(self, filename: str, name: str) -> None:
        self.co_filename = filename
        self.co_name = name


class _Frame:
    """Just enough of a frame: ``f_code`` and ``f_back``."""

    def __init__(self, filename: str, name: str, back=None) -> None:
        self.f_code = _Code(filename, name)
        self.f_back = back


def _stack(*labels):
    """Build a leaf frame for ``root;...;leaf`` given (file, fn) pairs."""
    frame = None
    for filename, name in labels:
        frame = _Frame(filename, name, back=frame)
    return frame


class TestCollapseFrame:
    def test_root_first_semicolon_joined(self):
        leaf = _stack(("/a/b/server.py", "run"),
                      ("/a/b/cohort.py", "serve_batch"),
                      ("/a/b/batch.py", "evaluate_megabatch"))
        assert collapse_frame(leaf) == (
            "server.run;cohort.serve_batch;batch.evaluate_megabatch"
        )

    def test_labels_are_stem_dot_function(self):
        assert collapse_frame(_Frame("/deep/path/to/module.py", "fn")) == \
            "module.fn"
        assert collapse_frame(_Frame("noext", "fn")) == "noext.fn"

    def test_max_depth_truncates_near_the_root(self):
        leaf = _stack(*[(f"f{i}.py", f"fn{i}") for i in range(10)])
        collapsed = collapse_frame(leaf, max_depth=3)
        # The walk goes leaf -> back, so the deepest frames survive.
        assert collapsed == "f7.fn7;f8.fn8;f9.fn9"


class TestSamplingProfiler:
    def _profiler(self, frames, **kwargs):
        kwargs.setdefault("clock", FakeClock())
        return SamplingProfiler(frames_fn=lambda: frames, **kwargs)

    def test_sample_once_counts_collapsed_stacks(self):
        frames = {
            11: _stack(("a.py", "main"), ("b.py", "work")),
            12: _stack(("a.py", "main"), ("c.py", "idle")),
        }
        profiler = self._profiler(frames)
        assert profiler.sample_once() == 2
        profiler.sample_once()
        rows = profiler.collapsed()
        assert {row["stack"]: row["count"] for row in rows} == {
            "a.main;b.work": 2,
            "a.main;c.idle": 2,
        }
        assert profiler.samples == 2

    def test_collapsed_sorts_by_count_then_stack(self):
        profiler = self._profiler({11: _stack(("a.py", "hot"))})
        profiler.sample_once()
        profiler._frames_fn = lambda: {
            11: _stack(("a.py", "hot")),
            12: _stack(("a.py", "cold")),
        }
        profiler.sample_once()
        rows = profiler.collapsed()
        assert [row["stack"] for row in rows] == ["a.hot", "a.cold"]
        assert profiler.collapsed(limit=1) == [{"stack": "a.hot", "count": 2}]

    def test_max_stacks_overflows_into_truncated_bucket(self):
        profiler = self._profiler(
            {i: _stack((f"m{i}.py", "fn")) for i in range(5)}, max_stacks=2
        )
        profiler.sample_once()
        rows = {row["stack"]: row["count"] for row in profiler.collapsed()}
        assert rows[TRUNCATED_STACK] == 3
        assert sum(rows.values()) == 5
        assert len(rows) == 3  # two distinct + the overflow bucket

    def test_skips_the_calling_thread(self):
        import threading
        frames = {
            threading.get_ident(): _stack(("me.py", "test")),
            99: _stack(("other.py", "work")),
        }
        profiler = self._profiler(frames)
        assert profiler.sample_once() == 1
        [row] = profiler.collapsed()
        assert row["stack"] == "other.work"

    def test_collapsed_text_is_flamegraph_format(self):
        profiler = self._profiler({11: _stack(("a.py", "x"), ("b.py", "y"))})
        profiler.sample_once()
        assert profiler.collapsed_text() == "a.x;b.y 1"

    def test_snapshot_shape_and_reset(self):
        profiler = self._profiler({11: _stack(("a.py", "x"))})
        profiler.sample_once()
        snap = profiler.snapshot()
        assert snap["running"] is False
        assert snap["samples"] == 1
        assert snap["distinct_stacks"] == 1
        assert snap["collapsed"] == [{"stack": "a.x", "count": 1}]
        profiler.reset()
        assert profiler.snapshot()["samples"] == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stacks=1)

    def test_start_stop_real_thread_samples(self):
        profiler = SamplingProfiler(
            interval_s=0.001,
            frames_fn=lambda: {11: _stack(("a.py", "busy"))},
        )
        profiler.start()
        try:
            deadline = 200
            while profiler.samples == 0 and deadline:
                import time
                time.sleep(0.005)
                deadline -= 1
        finally:
            profiler.stop()
        assert profiler.samples > 0
        assert profiler.running is False


class TestSpanHotspots:
    def test_self_time_subtracts_same_pid_children(self):
        clock = FakeClock(0.0)
        tracer = Tracer(clock=clock)
        handle = tracer.start_trace("serve.request", problem="conv")
        kernel = handle.open_span("megabatch.kernel")
        clock.advance(3.0)
        handle.close_span(kernel)
        clock.advance(1.0)
        handle.finish()
        rows = {row["name"]: row for row in span_hotspots(tracer)}
        assert rows["megabatch.kernel"]["self_s"] == pytest.approx(3.0)
        assert rows["serve.request"]["self_s"] == pytest.approx(1.0)
        assert rows["megabatch.kernel"]["problem"] == "conv"

    def test_aggregates_across_traces_by_name_and_problem(self):
        clock = FakeClock(0.0)
        tracer = Tracer(clock=clock)
        for _ in range(2):
            handle = tracer.start_trace("serve.request", problem="gemm")
            clock.advance(2.0)
            handle.finish()
        [row] = span_hotspots(tracer)
        assert row["name"] == "serve.request"
        assert row["count"] == 2
        assert row["self_s"] == pytest.approx(4.0)

    def test_top_k_truncation_by_self_time(self):
        clock = FakeClock(0.0)
        tracer = Tracer(clock=clock)
        for index, cost in enumerate((3.0, 1.0, 2.0)):
            handle = tracer.start_trace(f"span{index}")
            clock.advance(cost)
            handle.finish()
        rows = span_hotspots(tracer, top_k=2)
        assert [row["name"] for row in rows] == ["span0", "span2"]

    def test_open_spans_are_skipped(self):
        tracer = Tracer(clock=FakeClock(0.0))
        tracer.start_trace("never.finished")
        assert span_hotspots(tracer) == []
