"""Metrics primitives: P² quantiles vs exact, histograms, registry snapshot."""

import importlib.util
import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.serve.metrics import (
    Counter,
    LatencyTracker,
    MetricsRegistry,
    P2Quantile,
    SizeHistogram,
)

_GOLDEN_DIR = Path(__file__).parent / "golden"


def _load_schema_tools():
    """The generator script owns both the canonical population and the
    schema derivation; load it by path so the test can't drift from it."""
    spec = importlib.util.spec_from_file_location(
        "generate_metrics_schema",
        _GOLDEN_DIR / "generate_metrics_schema.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestP2Quantile:
    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    @pytest.mark.parametrize("dist", ["uniform", "exponential", "lognormal"])
    def test_tracks_numpy_percentile(self, q, dist):
        rng = np.random.default_rng(7)
        samples = getattr(rng, dist)(size=5000)
        estimator = P2Quantile(q)
        for value in samples:
            estimator.observe(value)
        exact = float(np.percentile(samples, q * 100))
        spread = float(np.percentile(samples, 99.5) - np.percentile(samples, 0.5))
        assert estimator.value() == pytest.approx(exact, abs=0.08 * spread)

    def test_exact_for_small_samples(self):
        estimator = P2Quantile(0.5)
        for value in (3.0, 1.0, 2.0):
            estimator.observe(value)
        assert estimator.value() == 2.0

    def test_empty_returns_none(self):
        assert P2Quantile(0.5).value() is None

    # Pinned nearest-rank order statistics for every n the P² estimator
    # handles exactly (its marker state only engages from the 6th sample):
    # rank = max(ceil(q*n), 1) over [10, 20, ...][:n], matching numpy's
    # ``inverted_cdf`` percentile method.
    @pytest.mark.parametrize("n, expected", [
        (0, {0.5: None, 0.95: None, 0.99: None}),
        (1, {0.5: 10.0, 0.95: 10.0, 0.99: 10.0}),
        (2, {0.5: 10.0, 0.95: 20.0, 0.99: 20.0}),
        (3, {0.5: 20.0, 0.95: 30.0, 0.99: 30.0}),
        (4, {0.5: 20.0, 0.95: 40.0, 0.99: 40.0}),
        (5, {0.5: 30.0, 0.95: 50.0, 0.99: 50.0}),
    ])
    def test_small_samples_are_exact_order_statistics(self, n, expected):
        values = [10.0, 20.0, 30.0, 40.0, 50.0][:n]
        for q, want in expected.items():
            estimator = P2Quantile(q)
            # Feed in a scrambled order: exactness must not depend on it.
            for value in reversed(values):
                estimator.observe(value)
            assert estimator.value() == want, f"q={q} n={n}"
            if n:
                exact = float(np.percentile(
                    values, q * 100, method="inverted_cdf"
                ))
                assert estimator.value() == exact

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_monotone_quantiles_on_same_stream(self):
        rng = np.random.default_rng(3)
        p50, p95, p99 = P2Quantile(0.5), P2Quantile(0.95), P2Quantile(0.99)
        for value in rng.normal(size=2000):
            p50.observe(value)
            p95.observe(value)
            p99.observe(value)
        assert p50.value() <= p95.value() <= p99.value()


class TestSizeHistogram:
    def test_power_of_two_buckets(self):
        hist = SizeHistogram(top=8)
        for size in (1, 2, 2, 3, 8, 9, 100):
            hist.observe(size)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 7
        assert snapshot["buckets"]["<=1"] == 1
        assert snapshot["buckets"]["<=2"] == 2
        assert snapshot["buckets"]["<=4"] == 1
        assert snapshot["buckets"]["<=8"] == 1
        assert snapshot["buckets"][">8"] == 2
        assert snapshot["mean"] == pytest.approx(125 / 7)

    def test_empty_snapshot(self):
        snapshot = SizeHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean"] is None
        assert snapshot["buckets"] == {}

    @pytest.mark.parametrize("top", [1, 4, 8, 256])
    def test_bit_length_bucketing_matches_linear_scan(self, top):
        """The O(1) ``bit_length`` bucket must be snapshot-identical to the
        linear bound scan it replaced, for every size from 0 through past
        the top bound (including the non-positive clamp and overflow)."""

        def linear_index(size, bounds):
            for i, bound in enumerate(bounds):
                if size <= bound:
                    return i
            return len(bounds)

        reference = SizeHistogram(top=top)
        fast = SizeHistogram(top=top)
        bounds = list(reference._bounds)
        for size in range(-2, 2 * top + 2):
            fast.observe(size)
            reference._counts[linear_index(size, bounds)] += 1
            reference._total += 1
            reference._sum += size
        assert fast.snapshot() == reference.snapshot()
        assert fast._counts == reference._counts


class TestLatencyTracker:
    def test_snapshot_fields_in_ms(self):
        tracker = LatencyTracker()
        for seconds in (0.010, 0.020, 0.030, 0.040, 0.100):
            tracker.observe(seconds)
        snapshot = tracker.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["max_ms"] == pytest.approx(100.0)
        assert snapshot["p50_ms"] == pytest.approx(30.0)
        assert snapshot["p99_ms"] == pytest.approx(100.0)

    def test_empty_snapshot(self):
        snapshot = LatencyTracker().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_ms"] is None


class TestSnapshotSchemaGolden:
    """``snapshot()``'s shape is a public contract (dashboards, the
    Prometheus renderer, the fleet aggregator); drift must be loud."""

    def test_snapshot_matches_frozen_schema(self):
        tools = _load_schema_tools()
        frozen = json.loads((_GOLDEN_DIR / "metrics_schema.json").read_text())
        derived = tools.derive_schema(tools.canonical_snapshot())
        assert derived == frozen, (
            "MetricsRegistry.snapshot() schema drifted; if intentional, "
            "rerun tests/golden/generate_metrics_schema.py"
        )

    def test_schema_covers_every_counter_and_label(self):
        tools = _load_schema_tools()
        frozen = json.loads((_GOLDEN_DIR / "metrics_schema.json").read_text())
        assert set(frozen["counters"]) == set(MetricsRegistry.COUNTERS)
        assert set(frozen["labels"]) == set(MetricsRegistry.LABELS)


class TestRegistry:
    def test_snapshot_schema(self):
        registry = MetricsRegistry()
        registry.inc("submitted", 3)
        registry.inc("served", 2)
        registry.observe_batch(4)
        registry.observe_latency(0.05)
        snapshot = registry.snapshot(queue_depth=1, extra={"oracle_cache": None})
        assert snapshot["counters"]["submitted"] == 3
        assert snapshot["counters"]["served"] == 2
        assert snapshot["queue_depth"] == 1
        assert snapshot["batch_size"]["count"] == 1
        assert snapshot["latency"]["count"] == 1
        assert snapshot["oracle_cache"] is None
        assert snapshot["uptime_s"] >= 0

    def test_unknown_counter_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().inc("made_up_series")

    def test_counter_thread_safety(self):
        counter = Counter()

        def spin():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 80_000
