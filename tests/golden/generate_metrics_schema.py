"""Regenerate the frozen ``MetricsRegistry.snapshot()`` schema fixture.

Run from the repository root after an *intentional* snapshot-shape change
(and only then — dashboards, the Prometheus renderer, and the cluster
fleet aggregator all consume this shape, so accidental drift is exactly
what the fixture exists to catch):

    PYTHONPATH=src python tests/golden/generate_metrics_schema.py

A registry on a fake clock is populated with one canonical observation
set (every counter touched, both label dimensions, enough latencies for
quantiles, two batch sizes for two histogram buckets) and the snapshot's
*type tree* — not its values — is frozen to ``metrics_schema.json``.
``tests/test_serve_metrics.py`` re-derives the schema from an identically
populated registry and asserts it matches.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import FakeClock
from repro.serve.metrics import MetricsRegistry

SCHEMA_PATH = Path(__file__).parent / "metrics_schema.json"


def canonical_snapshot() -> dict:
    """One fixed observation set; bucket/label keys stay deterministic."""
    clock = FakeClock(0.0)
    registry = MetricsRegistry(clock=clock)
    clock.advance(30.0)
    for counter in MetricsRegistry.COUNTERS:
        registry.inc(counter)
    registry.observe_batch(2)
    registry.observe_batch(5)
    for ms in (10, 20, 30):
        registry.observe_latency(ms / 1e3)
    registry.inc_label("served_by_algorithm", "conv1d", 2)
    registry.inc_label("served_by_problem", "f" * 16, 2)
    return registry.snapshot(
        queue_depth=1, extra={"oracle_cache": {"hits": 1, "misses": 2}}
    )


def derive_schema(value):
    """Collapse a snapshot into its type tree (bool before int: bools
    are ints in Python but not in the exposition contract)."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, dict):
        return {str(k): derive_schema(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [derive_schema(v) for v in value]
    return type(value).__name__


def main() -> None:
    schema = derive_schema(canonical_snapshot())
    SCHEMA_PATH.write_text(json.dumps(schema, indent=2, sort_keys=True) + "\n")
    print(f"wrote {SCHEMA_PATH}")


if __name__ == "__main__":
    main()
