"""Regenerate the frozen analytical-cost-model fixtures.

Run from the repository root after an *intentional* cost-model semantics
change (and only then — the whole point of the fixtures is to catch
unintentional drift, e.g. from a vectorization rewrite):

    PYTHONPATH=src python tests/golden/generate_costmodel_golden.py

One canonical mapping per Table 1 workload is drawn deterministically from
the paper's 256-PE accelerator's map space and evaluated with the *scalar*
reference model; the mapping itself and the complete
:class:`~repro.costmodel.stats.CostStats` are frozen to
``costmodel_golden.json``.  ``tests/test_costmodel_golden.py`` asserts both
the scalar and batched backends still reproduce every frozen number.

A second fixture, ``megabatch_golden.json``, freezes a *mixed* batch — two
canonical mappings per Table 1 workload, lanes interleaved across problems
— evaluated by the scalar model.  The golden test drives the same lanes
through the cross-problem megabatch backend, guarding the padded/masked
union layout against drift.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.costmodel import CostModel
from repro.costmodel.accelerator import default_accelerator
from repro.mapspace import MapSpace
from repro.workloads import TABLE1_PROBLEMS

#: Deterministic per-problem sample seed.  Arbitrary but frozen: changing it
#: invalidates the fixtures for no reason.
CANONICAL_SEED = 2021

GOLDEN_PATH = Path(__file__).parent / "costmodel_golden.json"
MEGABATCH_GOLDEN_PATH = Path(__file__).parent / "megabatch_golden.json"


def build_golden() -> dict:
    accelerator = default_accelerator()
    model = CostModel(accelerator)
    entries = {}
    for problem in TABLE1_PROBLEMS:
        mapping = MapSpace(problem, accelerator).sample(CANONICAL_SEED)
        stats = model.evaluate(mapping, problem)
        entries[problem.name] = {
            "mapping": mapping.to_dict(),
            "stats": {
                "records": [
                    [r.tensor, r.level, r.accesses, r.energy_pj]
                    for r in stats.records
                ],
                "noc_energy_pj": stats.noc_energy_pj,
                "mac_energy_pj": stats.mac_energy_pj,
                "cycles": stats.cycles,
                "utilization": stats.utilization,
                "spatial_pes": stats.spatial_pes,
                "clock_ghz": stats.clock_ghz,
                "total_energy_pj": stats.total_energy_pj,
                "edp": stats.edp,
            },
        }
    return {
        "accelerator_fingerprint": accelerator.fingerprint(),
        "canonical_seed": CANONICAL_SEED,
        "problems": entries,
    }


def build_megabatch_golden() -> dict:
    """A frozen mixed batch: two canonical lanes per workload, interleaved.

    Interleaving (lane ``i`` of every problem before lane ``i + 1`` of any)
    keeps the fixture sensitive to cross-problem row bookkeeping — a
    group-major shuffle bug cannot cancel out.  Values come from the
    *scalar* model; the golden test replays the lanes through
    ``evaluate_megabatch``.
    """
    accelerator = default_accelerator()
    model = CostModel(accelerator)
    lanes = []
    for offset in range(2):
        for problem in TABLE1_PROBLEMS:
            mapping = MapSpace(problem, accelerator).sample(
                CANONICAL_SEED + offset
            )
            stats = model.evaluate(mapping, problem)
            lanes.append(
                {
                    "problem": problem.name,
                    "mapping": mapping.to_dict(),
                    "edp": stats.edp,
                    "cycles": stats.cycles,
                    "utilization": stats.utilization,
                    "total_energy_pj": stats.total_energy_pj,
                    "noc_energy_pj": stats.noc_energy_pj,
                }
            )
    return {
        "accelerator_fingerprint": accelerator.fingerprint(),
        "canonical_seed": CANONICAL_SEED,
        "lanes": lanes,
    }


if __name__ == "__main__":
    GOLDEN_PATH.write_text(json.dumps(build_golden(), indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    MEGABATCH_GOLDEN_PATH.write_text(
        json.dumps(build_megabatch_golden(), indent=1) + "\n"
    )
    print(f"wrote {MEGABATCH_GOLDEN_PATH}")
