"""Per-rule good/bad fixture tests plus targeted inference edge cases."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze
from repro.analysis.selftest import FIXTURE_PATHS, FIXTURES
from repro.analysis.suppress import RPR900


def run(tmp_path, source, select=None, name="case.py"):
    case = tmp_path / name
    case.parent.mkdir(parents=True, exist_ok=True)
    case.write_text(textwrap.dedent(source), encoding="utf-8")
    result = analyze([case], select=select, root=tmp_path)
    return [f.rule_id for f in result.findings], result


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_fires_on_bad_fixture(tmp_path, rule_id):
    bad, _good = FIXTURES[rule_id]
    name = FIXTURE_PATHS.get(rule_id, "case.py")
    fired, _ = run(tmp_path, bad, select=[rule_id], name=name)
    assert rule_id in fired


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_silent_on_good_fixture(tmp_path, rule_id):
    _bad, good = FIXTURES[rule_id]
    name = FIXTURE_PATHS.get(rule_id, "case.py")
    fired, _ = run(tmp_path, good, select=[rule_id], name=name)
    assert rule_id not in fired


def test_rpr105_is_scoped_to_observability_paths(tmp_path):
    # The same direct clock read outside repro/obs/ and serve/metrics.py
    # is RPR102's business (wall clock only), not RPR105's.
    bad, _good = FIXTURES["RPR105"]
    fired, _ = run(tmp_path, bad, select=["RPR105"], name="repro/util.py")
    assert fired == []
    fired, _ = run(
        tmp_path, bad, select=["RPR105"], name="repro/serve/metrics.py"
    )
    assert fired != []


def test_rpr106_sees_through_import_aliases(tmp_path):
    # `import ... as` and `from ... import emit as ...` both bind the
    # catalogued emitter; an unlisted kind must fire through either.
    fired, _ = run(
        tmp_path,
        """\
        import repro.obs.events as oe

        oe.emit("not_a_kind", shard=3)
        """,
        select=["RPR106"],
    )
    assert fired == ["RPR106"]
    fired, _ = run(
        tmp_path,
        """\
        from repro.obs.events import emit as record

        record("not_a_kind", shard=3)
        """,
        select=["RPR106"],
    )
    assert fired == ["RPR106"]


def test_rpr106_computed_and_missing_kinds_fire(tmp_path):
    fired, result = run(
        tmp_path,
        """\
        from repro.obs import events

        def relay(kind):
            events.emit(kind, shard=1)          # computed
            events.emit(**{"kind": "failover"})  # uninspectable
            events.emit(kind="slo_page" + "")    # still computed
        """,
        select=["RPR106"],
    )
    assert fired == ["RPR106"] * 3
    messages = sorted(f.message for f in result.findings)
    assert any("computed kind" in m for m in messages)
    assert any("without an inspectable kind" in m for m in messages)


def test_rpr106_ignores_unrelated_emit_names(tmp_path):
    # A local def emit / an unrelated receiver's .emit are out of scope:
    # only names bound by imports of repro.obs.events participate.
    fired, _ = run(
        tmp_path,
        """\
        from repro.obs import events

        def emit(kind):
            return kind

        class Logger:
            def emit(self, kind):
                return kind

        emit("not_a_kind")
        Logger().emit("not_a_kind")
        events.emit("slo_warning", slo="lat", burn_fast=2.0)
        """,
        select=["RPR106"],
    )
    assert fired == []


def test_rpr106_kwarg_kind_literal_is_checked(tmp_path):
    fired, _ = run(
        tmp_path,
        """\
        from repro.obs import events

        events.emit(kind="definitely_wrong")
        """,
        select=["RPR106"],
    )
    assert fired == ["RPR106"]
    fired, _ = run(
        tmp_path,
        """\
        from repro.obs import events

        events.emit(kind="shard_down", shard=2)
        """,
        select=["RPR106"],
    )
    assert fired == []


def test_every_rule_has_a_fixture_pair():
    from repro.analysis import all_rules

    assert set(FIXTURES) == set(all_rules()) | {RPR900}
    assert len(all_rules()) >= 8


# ---------------------------------------------------------------------------
# Inference edge cases the simple fixtures do not cover
# ---------------------------------------------------------------------------


def test_locked_suffix_method_guards_attributes(tmp_path):
    # An attribute touched only inside a *_locked method is guarded; a
    # bare rebinding elsewhere must fire even with no with-block in sight.
    fired, _ = run(
        tmp_path,
        """\
        import threading


        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._depth = 0

            def _depth_locked(self):
                return self._depth

            def reset(self):
                self._depth = 0
        """,
        select=["RPR001"],
    )
    assert fired == ["RPR001"]


def test_locked_suffix_method_is_not_flagged_itself(tmp_path):
    fired, _ = run(
        tmp_path,
        """\
        import threading


        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._depth = 0

            def _bump_locked(self):
                self._depth += 1

            def bump(self):
                with self._lock:
                    self._bump_locked()
        """,
        select=["RPR001"],
    )
    assert fired == []


def test_condition_wait_over_own_lock_is_exempt(tmp_path):
    fired, _ = run(
        tmp_path,
        """\
        import threading


        class Queue:
            def __init__(self):
                self._lock = threading.Lock()
                self._ready = threading.Condition(self._lock)

            def take(self):
                with self._ready:
                    self._ready.wait(timeout=1.0)
        """,
        select=["RPR002"],
    )
    assert fired == []


def test_foreign_event_wait_under_lock_fires(tmp_path):
    fired, _ = run(
        tmp_path,
        """\
        import threading


        class Waiter:
            def __init__(self, event):
                self._lock = threading.Lock()
                self._event = event

            def stall(self):
                with self._lock:
                    self._event.wait()
        """,
        select=["RPR002"],
    )
    assert fired == ["RPR002"]


def test_interprocedural_lock_order_edge(tmp_path):
    # debit holds A and calls a method that takes B; credit nests B then A
    # syntactically.  The cycle is only visible one call level deep.
    fired, _ = run(
        tmp_path,
        """\
        import threading


        class Transfer:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def _audit(self):
                with self._b:
                    pass

            def debit(self):
                with self._a:
                    self._audit()

            def credit(self):
                with self._b:
                    with self._a:
                        pass
        """,
        select=["RPR003"],
    )
    assert fired == ["RPR003"]


def test_str_join_is_not_a_blocking_call(tmp_path):
    fired, _ = run(
        tmp_path,
        """\
        import threading


        class Formatter:
            def __init__(self):
                self._lock = threading.Lock()
                self._parts = []

            def render(self):
                with self._lock:
                    return ", ".join(self._parts)
        """,
        select=["RPR002"],
    )
    assert fired == []


def test_getattr_lazy_exports_are_not_flagged(tmp_path):
    # PEP 562 modules legitimately export names with no static binding.
    fired, _ = run(
        tmp_path,
        """\
        __all__ = ["LazyThing"]

        _LAZY = ("LazyThing",)


        def __getattr__(name):
            if name in _LAZY:
                return object()
            raise AttributeError(name)
        """,
        select=["RPR201"],
    )
    assert fired == []


def test_missing_all_entry_without_getattr_fires(tmp_path):
    fired, _ = run(
        tmp_path,
        """\
        __all__ = ["ghost"]
        """,
        select=["RPR201"],
    )
    assert fired == ["RPR201"]


def test_syntax_error_becomes_finding_not_crash(tmp_path):
    fired, result = run(tmp_path, "def broken(:\n")
    assert fired == ["RPR999"]
    assert not result.clean
