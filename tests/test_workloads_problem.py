"""Tests for the core Problem/TensorSpec/Dimension abstractions."""

import pytest

from repro.workloads.problem import Dimension, Problem, TensorSpec, validate_extents


def _toy_problem():
    dims = (Dimension("A", 4), Dimension("B", 6))
    tensors = (
        TensorSpec("In", axes=(("A",), ("B",))),
        TensorSpec("Out", axes=(("A",),), is_output=True),
    )
    return Problem(name="toy", algorithm="toy", dims=dims, tensors=tensors)


class TestDimension:
    def test_valid(self):
        assert Dimension("X", 3).bound == 3

    def test_empty_name_raises(self):
        with pytest.raises(ValueError):
            Dimension("", 3)

    def test_zero_bound_raises(self):
        with pytest.raises(ValueError):
            Dimension("X", 0)


class TestTensorSpec:
    def test_dims_deduplicated(self):
        spec = TensorSpec("T", axes=(("X", "R"), ("X",)))
        assert spec.dims == ("X", "R")

    def test_relevance(self):
        spec = TensorSpec("T", axes=(("X", "R"),))
        assert spec.is_relevant("X")
        assert spec.is_relevant("R")
        assert not spec.is_relevant("K")

    def test_plain_footprint(self):
        spec = TensorSpec("T", axes=(("X",), ("Y",)))
        assert spec.footprint({"X": 3, "Y": 5}) == 15

    def test_sliding_window_footprint(self):
        spec = TensorSpec("T", axes=(("X", "R"),))
        # extent x + r - 1
        assert spec.footprint({"X": 4, "R": 3}) == 6

    def test_missing_extent_defaults_to_one(self):
        spec = TensorSpec("T", axes=(("X",), ("Y",)))
        assert spec.footprint({"X": 3}) == 3

    def test_empty_axes_raise(self):
        with pytest.raises(ValueError):
            TensorSpec("T", axes=())
        with pytest.raises(ValueError):
            TensorSpec("T", axes=((),))


class TestProblem:
    def test_totals(self):
        problem = _toy_problem()
        assert problem.total_points == 24
        assert problem.total_ops == 24

    def test_bounds(self):
        assert _toy_problem().bounds == {"A": 4, "B": 6}

    def test_output_accessor(self):
        assert _toy_problem().output.name == "Out"

    def test_inputs_accessor(self):
        assert [t.name for t in _toy_problem().inputs] == ["In"]

    def test_tensor_lookup(self):
        problem = _toy_problem()
        assert problem.tensor("In").name == "In"
        with pytest.raises(KeyError):
            problem.tensor("Nope")

    def test_tensor_size(self):
        problem = _toy_problem()
        assert problem.tensor_size(problem.tensor("In")) == 24
        assert problem.tensor_size(problem.output) == 4

    def test_pid_is_bounds_tuple(self):
        assert _toy_problem().pid() == (4, 6)

    def test_describe_mentions_dims(self):
        text = _toy_problem().describe()
        assert "A=4" in text and "B=6" in text

    def test_duplicate_dims_raise(self):
        with pytest.raises(ValueError):
            Problem(
                name="bad",
                algorithm="toy",
                dims=(Dimension("A", 2), Dimension("A", 3)),
                tensors=(TensorSpec("O", axes=(("A",),), is_output=True),),
            )

    def test_requires_exactly_one_output(self):
        with pytest.raises(ValueError):
            Problem(
                name="bad",
                algorithm="toy",
                dims=(Dimension("A", 2),),
                tensors=(TensorSpec("T", axes=(("A",),)),),
            )

    def test_unknown_tensor_dim_raises(self):
        with pytest.raises(ValueError):
            Problem(
                name="bad",
                algorithm="toy",
                dims=(Dimension("A", 2),),
                tensors=(TensorSpec("O", axes=(("Z",),), is_output=True),),
            )


class TestValidateExtents:
    def test_accepts_valid(self):
        validate_extents(_toy_problem(), {"A": 2, "B": 6})

    def test_rejects_missing(self):
        with pytest.raises(ValueError):
            validate_extents(_toy_problem(), {"A": 2})

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_extents(_toy_problem(), {"A": 5, "B": 1})
