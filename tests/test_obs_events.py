"""Unit tests for the bounded structured-event log."""

from __future__ import annotations

import pytest

from repro.obs import events
from repro.obs.trace import FakeClock


@pytest.fixture
def log():
    return events.EventLog(capacity=4, clock=FakeClock(10.0))


class TestEventLog:
    def test_emit_shapes_the_event(self, log):
        event = log.emit("swap_published", algorithm="conv1d", version=3)
        assert event["kind"] == "swap_published"
        assert event["ts_s"] == 10.0
        assert event["seq"] == 1
        assert event["fields"] == {"algorithm": "conv1d", "version": 3}

    def test_capacity_bounds_retention(self, log):
        for i in range(10):
            log.emit("overloaded", depth=i)
        assert len(log) == 4
        depths = [e["fields"]["depth"] for e in log.snapshot()]
        assert depths == [6, 7, 8, 9]  # oldest-first, newest retained

    def test_snapshot_filters_by_kind(self, log):
        log.emit("failover", shard=1)
        log.emit("overloaded", depth=2)
        log.emit("failover", shard=0)
        shards = [e["fields"]["shard"] for e in log.snapshot(kind="failover")]
        assert shards == [1, 0]

    def test_snapshot_limit_keeps_newest(self, log):
        for i in range(4):
            log.emit("overloaded", depth=i)
        depths = [e["fields"]["depth"] for e in log.snapshot(limit=2)]
        assert depths == [2, 3]
        assert log.snapshot(limit=0) == []

    def test_snapshot_copies_are_isolated(self, log):
        log.emit("failover", shard=1)
        snap = log.snapshot()
        snap[0]["fields"]["shard"] = 999
        assert log.snapshot()[0]["fields"]["shard"] == 1

    def test_seq_is_monotonic(self, log):
        seqs = [log.emit("overloaded")["seq"] for _ in range(3)]
        assert seqs == [1, 2, 3]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            events.EventLog(capacity=0)

    def test_unknown_kind_is_refused(self, log):
        with pytest.raises(ValueError, match="unknown event kind"):
            log.emit("made_up_kind", anything=1)


class TestDefaultLog:
    def test_module_level_emit_goes_to_default(self):
        previous = events.set_default_log(
            events.EventLog(capacity=8, clock=FakeClock())
        )
        try:
            events.emit("gate_rejected", algorithm="conv1d")
            kinds = [e["kind"] for e in events.snapshot()]
            assert kinds == ["gate_rejected"]
        finally:
            events.set_default_log(previous)

    def test_set_default_log_returns_previous(self):
        current = events.default_log()
        replacement = events.EventLog(clock=FakeClock())
        assert events.set_default_log(replacement) is current
        assert events.set_default_log(current) is replacement

    def test_known_kinds_catalog_is_sorted_and_complete(self):
        assert list(events.KNOWN_KINDS) == sorted(events.KNOWN_KINDS)
        for kind in ("swap_published", "gate_rejected", "failover",
                     "overloaded", "shard_respawned", "shard_down"):
            assert kind in events.KNOWN_KINDS
