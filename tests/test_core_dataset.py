"""Tests for Phase 1 dataset generation and target encoding."""

import numpy as np
import pytest

from repro.core import SurrogateDataset, TargetCodec, generate_dataset
from repro.costmodel import CostModel, algorithmic_minimum


class TestTargetCodec:
    def test_meta_width_cnn(self):
        assert TargetCodec(n_tensors=3).width == 12

    def test_meta_width_mttkrp(self):
        assert TargetCodec(n_tensors=4).width == 15

    def test_edp_width(self):
        assert TargetCodec(n_tensors=3, mode="edp").width == 1

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            TargetCodec(n_tensors=3, mode="watts")

    def test_indices_in_range(self):
        codec = TargetCodec(n_tensors=3)
        assert codec.total_energy_index == 9
        assert codec.utilization_index == 10
        assert codec.cycles_index == 11

    def test_from_stats_recovers_edp(self, cnn_space, cost_model, cnn_problem):
        codec = TargetCodec(n_tensors=3)
        bound = algorithmic_minimum(cnn_problem, cost_model.accelerator)
        stats = cost_model.evaluate(cnn_space.sample(0), cnn_problem)
        target = codec.from_stats(stats, bound, ("Input", "Weights", "Output"))
        recovered = 2.0 ** codec.log2_norm_edp(target)
        assert recovered == pytest.approx(stats.edp / bound.edp, rel=1e-6)

    def test_edp_mode_recovers_edp(self, cnn_space, cost_model, cnn_problem):
        codec = TargetCodec(n_tensors=3, mode="edp")
        bound = algorithmic_minimum(cnn_problem, cost_model.accelerator)
        stats = cost_model.evaluate(cnn_space.sample(1), cnn_problem)
        target = codec.from_stats(stats, bound, ("Input", "Weights", "Output"))
        assert target.shape == (1,)
        assert 2.0 ** codec.log2_norm_edp(target) == pytest.approx(
            stats.edp / bound.edp, rel=1e-6
        )


class TestGenerateDataset:
    def test_shapes(self, cnn_dataset):
        assert cnn_dataset.inputs_raw.shape == (1200, 62)
        assert cnn_dataset.targets_raw.shape == (1200, 12)
        assert len(cnn_dataset.problem_names) == 1200

    def test_round_robin_problems(self, cnn_dataset):
        names = set(cnn_dataset.problem_names)
        assert names == {"train_a", "train_b", "train_c", "train_d"}

    def test_deterministic(self, accelerator, cnn_training_problems):
        a = generate_dataset(
            "cnn-layer", accelerator, 50, problems=cnn_training_problems, seed=9
        )
        b = generate_dataset(
            "cnn-layer", accelerator, 50, problems=cnn_training_problems, seed=9
        )
        np.testing.assert_array_equal(a.inputs_raw, b.inputs_raw)
        np.testing.assert_array_equal(a.targets_raw, b.targets_raw)

    def test_uniform_chunk_size_does_not_change_output(
        self, accelerator, cnn_training_problems, monkeypatch
    ):
        """Batch-pricing flush boundaries are an implementation detail: the
        batched kernels are row-independent, so shrinking the chunk to force
        many partial flushes must reproduce the dataset bit-for-bit."""
        import repro.core.dataset as dataset_module

        a = generate_dataset(
            "cnn-layer", accelerator, 60, problems=cnn_training_problems, seed=3
        )
        monkeypatch.setattr(dataset_module, "_UNIFORM_CHUNK", 7)
        b = generate_dataset(
            "cnn-layer", accelerator, 60, problems=cnn_training_problems, seed=3
        )
        np.testing.assert_array_equal(a.inputs_raw, b.inputs_raw)
        np.testing.assert_array_equal(a.targets_raw, b.targets_raw)
        assert a.problem_names == b.problem_names

    def test_whitened_statistics(self, cnn_dataset):
        inputs, targets = cnn_dataset.whitened()
        np.testing.assert_allclose(np.abs(inputs.mean(axis=0)), 0.0, atol=1e-8)
        np.testing.assert_allclose(np.abs(targets.mean(axis=0)), 0.0, atol=1e-8)
        # non-constant columns have unit std
        live = cnn_dataset.inputs_raw.std(axis=0) > 1e-8
        np.testing.assert_allclose(inputs.std(axis=0)[live], 1.0, atol=1e-8)

    def test_split(self, cnn_dataset):
        (train_x, train_y), (test_x, test_y) = cnn_dataset.split(0.25, seed=0)
        assert len(test_x) == 300
        assert len(train_x) == 900
        assert train_x.shape[1] == 62

    def test_split_disjoint_and_complete(self, cnn_dataset):
        (train_x, _), (test_x, _) = cnn_dataset.split(0.5, seed=1)
        assert len(train_x) + len(test_x) == len(cnn_dataset)

    def test_subset(self, cnn_dataset):
        sub = cnn_dataset.subset(100, seed=0)
        assert len(sub) == 100
        with pytest.raises(ValueError):
            cnn_dataset.subset(10_000)

    def test_elite_fraction_generates_valid(self, accelerator, cnn_training_problems):
        dataset = generate_dataset(
            "cnn-layer",
            accelerator,
            120,
            problems=cnn_training_problems,
            elite_fraction=0.5,
            elite_steps=5,
            seed=4,
        )
        assert len(dataset) == 120
        assert np.isfinite(dataset.targets_raw).all()

    def test_elite_shifts_distribution_down(self, accelerator, cnn_training_problems):
        """Elite trajectories must produce lower-cost samples on average."""
        uniform = generate_dataset(
            "cnn-layer", accelerator, 400, problems=cnn_training_problems,
            elite_fraction=0.0, seed=7,
        )
        elite = generate_dataset(
            "cnn-layer", accelerator, 400, problems=cnn_training_problems,
            elite_fraction=1.0, elite_steps=12, seed=7,
        )
        def mean_log_edp(ds):
            return np.mean([ds.codec.log2_norm_edp(row) for row in ds.targets_raw])
        assert mean_log_edp(elite) < mean_log_edp(uniform)

    def test_wrong_algorithm_raises(self, accelerator, mttkrp_problem):
        with pytest.raises(ValueError):
            generate_dataset(
                "cnn-layer", accelerator, 10, problems=[mttkrp_problem], seed=0
            )

    def test_invalid_args_raise(self, accelerator, cnn_training_problems):
        with pytest.raises(ValueError):
            generate_dataset("cnn-layer", accelerator, 0, problems=cnn_training_problems)
        with pytest.raises(ValueError):
            generate_dataset(
                "cnn-layer", accelerator, 10,
                problems=cnn_training_problems, elite_fraction=2.0,
            )

    def test_save_load_roundtrip(self, cnn_dataset, tmp_path):
        path = tmp_path / "dataset.npz"
        cnn_dataset.save(path)
        loaded = SurrogateDataset.load(path)
        np.testing.assert_array_equal(loaded.inputs_raw, cnn_dataset.inputs_raw)
        np.testing.assert_array_equal(loaded.targets_raw, cnn_dataset.targets_raw)
        assert loaded.algorithm == cnn_dataset.algorithm
        assert loaded.encoder.dims == cnn_dataset.encoder.dims
        assert loaded.codec.mode == cnn_dataset.codec.mode
