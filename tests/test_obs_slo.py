"""Unit tests for SLO specs, burn rates, and the alert state machine.

Everything runs on a FakeClock-driven ring — no sleeps, no threads: the
state machine advances exactly when ``evaluate()`` is called, so every
transition in these tests is deterministic.
"""

from __future__ import annotations

import pytest

from repro.obs import events as obs_events
from repro.obs.events import EventLog, set_default_log
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLOSpec,
    SLOTracker,
    worst_state,
)
from repro.obs.timeseries import TimeseriesRing
from repro.obs.trace import FakeClock


@pytest.fixture
def clock():
    return FakeClock(0.0)


@pytest.fixture
def ring(clock):
    return TimeseriesRing(interval_s=1.0, capacity=64, clock=clock)


@pytest.fixture
def capture_events():
    """Swap the process-default event log for an isolated one."""
    log = EventLog(capacity=64, clock=FakeClock(0.0))
    previous = set_default_log(log)
    yield log
    set_default_log(previous)


def latency_spec(**overrides) -> SLOSpec:
    base = dict(
        name="lat", kind="latency", objective=0.9, threshold_s=0.1,
        window_s=20.0, fast_window_s=2.0, slow_window_s=10.0,
        warning_burn=1.5, page_burn=8.0, clear_evals=2,
    )
    base.update(overrides)
    return SLOSpec(**base)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        assert len(DEFAULT_SLOS) == 3
        assert {spec.kind for spec in DEFAULT_SLOS} == {
            "latency", "error_rate", "availability"
        }

    @pytest.mark.parametrize("overrides", [
        {"name": ""},
        {"kind": "throughput"},
        {"objective": 0.0},
        {"objective": 1.0},
        {"threshold_s": None},
        {"threshold_s": 0.0},
        {"fast_window_s": 0.0},
        {"fast_window_s": 30.0},            # fast > slow
        {"slow_window_s": 50.0},            # slow > budget window
        {"warning_burn": 0.0},
        {"warning_burn": 9.0},              # warning > page
        {"clear_evals": 0},
    ])
    def test_invalid_specs_raise(self, overrides):
        with pytest.raises(ValueError):
            latency_spec(**overrides)

    def test_non_latency_kinds_need_no_threshold(self):
        spec = SLOSpec(name="errs", kind="error_rate", objective=0.99)
        assert spec.threshold_s is None

    def test_duplicate_names_rejected(self, ring):
        with pytest.raises(ValueError):
            SLOTracker([latency_spec(), latency_spec()], ring)


class TestWorstState:
    def test_ranking(self):
        assert worst_state([]) == "ok"
        assert worst_state(["ok", "ok"]) == "ok"
        assert worst_state(["ok", "warning"]) == "warning"
        assert worst_state(["warning", "page", "ok"]) == "page"
        assert worst_state(["nonsense"]) == "ok"  # unknown states ignored


class TestBurnRates:
    def test_all_good_traffic_burns_nothing(self, ring, capture_events):
        tracker = SLOTracker([latency_spec()], ring)
        for _ in range(10):
            ring.observe_latency(0.01)
        [entry] = tracker.evaluate()["slos"]
        assert entry["state"] == "ok"
        assert entry["burn_fast"] == 0.0
        assert entry["burn_slow"] == 0.0
        assert entry["budget_remaining"] == 1.0

    def test_burn_is_bad_fraction_over_error_budget(self, ring,
                                                    capture_events):
        tracker = SLOTracker([latency_spec()], ring)
        for _ in range(8):
            ring.observe_latency(0.01)
        for _ in range(2):
            ring.observe_latency(0.5)  # 20% bad, 10% budget -> burn 2.0
        [entry] = tracker.evaluate()["slos"]
        assert entry["burn_fast"] == pytest.approx(2.0)
        assert entry["burn_slow"] == pytest.approx(2.0)
        assert entry["state"] == "warning"

    def test_and_gate_requires_both_windows_hot(self, ring, clock,
                                                capture_events):
        tracker = SLOTracker([latency_spec()], ring)
        # Old good traffic fills the slow window...
        for _ in range(50):
            ring.observe_latency(0.01)
        clock.advance(5.0)
        # ...then a brief spike: the fast window is all-bad (burn 10),
        # the slow window is still mostly good (burn < 1.5).
        for _ in range(2):
            ring.observe_latency(0.5)
        [entry] = tracker.evaluate()["slos"]
        assert entry["burn_fast"] == pytest.approx(10.0)
        assert entry["burn_slow"] < 1.5
        assert entry["state"] == "ok"  # a spike alone must not alert

    def test_empty_windows_burn_zero(self, ring, capture_events):
        tracker = SLOTracker([latency_spec()], ring)
        [entry] = tracker.evaluate()["slos"]
        assert entry["burn_fast"] == 0.0
        assert entry["state"] == "ok"

    def test_error_rate_kind_reads_counters(self, ring, capture_events):
        spec = SLOSpec(name="errs", kind="error_rate", objective=0.9,
                       window_s=20.0, fast_window_s=2.0, slow_window_s=10.0,
                       warning_burn=1.5, page_burn=8.0)
        tracker = SLOTracker([spec], ring)
        ring.record_counters({"served": 8.0, "errors": 2.0})
        [entry] = tracker.evaluate()["slos"]
        assert entry["burn_fast"] == pytest.approx(2.0)
        assert entry["bad"] == 2.0
        assert entry["total"] == 10.0

    def test_availability_kind_reads_counters(self, ring, capture_events):
        spec = SLOSpec(name="avail", kind="availability", objective=0.9,
                       window_s=20.0, fast_window_s=2.0, slow_window_s=10.0,
                       warning_burn=1.5, page_burn=8.0)
        tracker = SLOTracker([spec], ring)
        ring.record_counters({"submitted": 10.0, "rejected": 10.0})
        [entry] = tracker.evaluate()["slos"]
        assert entry["burn_fast"] == pytest.approx(10.0)
        assert entry["state"] == "page"


class TestStateMachine:
    def test_escalation_is_immediate(self, ring, capture_events):
        tracker = SLOTracker([latency_spec()], ring)
        for _ in range(10):
            ring.observe_latency(0.5)  # 100% bad -> burn 10 >= page 8
        assert tracker.evaluate()["worst_state"] == "page"
        assert tracker.states() == {"lat": "page"}

    def test_deescalation_needs_clear_evals(self, ring, clock,
                                            capture_events):
        tracker = SLOTracker([latency_spec(clear_evals=2)], ring)
        for _ in range(10):
            ring.observe_latency(0.5)
        tracker.evaluate()
        # Bad traffic ages out of every window.
        clock.advance(30.0)
        assert tracker.evaluate()["worst_state"] == "page"  # calm #1: hold
        clock.advance(1.0)                                  # next window
        assert tracker.evaluate()["worst_state"] == "ok"    # calm #2: clear

    def test_rapid_scrapes_cannot_shortcut_hysteresis(self, ring, clock,
                                                      capture_events):
        """evaluate() runs on every gateway read (/v1/slo, /v1/timeseries),
        so a scraper hammering the endpoint within one ring window must
        not rack up the calm streak and clear an active page early —
        calm has to persist across clear_evals distinct windows."""
        tracker = SLOTracker([latency_spec(clear_evals=2)], ring)
        for _ in range(10):
            ring.observe_latency(0.5)
        tracker.evaluate()
        clock.advance(30.0)
        for _ in range(50):  # tight scrape loop, all in the same window
            assert tracker.evaluate()["worst_state"] == "page"
        clock.advance(1.0)   # calm persists into a second window
        assert tracker.evaluate()["worst_state"] == "ok"

    def test_calm_streak_resets_on_reescalation(self, ring, clock,
                                                capture_events):
        tracker = SLOTracker([latency_spec(clear_evals=2)], ring)
        for _ in range(10):
            ring.observe_latency(0.5)
        tracker.evaluate()
        clock.advance(30.0)
        tracker.evaluate()                     # calm #1
        for _ in range(10):
            ring.observe_latency(0.5)          # burn again
        tracker.evaluate()                     # hot: streak resets
        clock.advance(30.0)
        assert tracker.evaluate()["worst_state"] == "page"  # calm #1 again
        clock.advance(1.0)                     # next window
        assert tracker.evaluate()["worst_state"] == "ok"

    def test_budget_exhaustion_and_recovery(self, ring, clock,
                                            capture_events):
        tracker = SLOTracker([latency_spec()], ring)
        for _ in range(9):
            ring.observe_latency(0.01)
        ring.observe_latency(0.5)  # exactly the 10% allowance
        [entry] = tracker.evaluate()["slos"]
        assert entry["budget_remaining"] == pytest.approx(0.0)
        ring.observe_latency(0.5)  # over the allowance: clamped at zero
        [entry] = tracker.evaluate()["slos"]
        assert entry["budget_remaining"] == 0.0
        clock.advance(25.0)        # everything ages past window_s
        [entry] = tracker.evaluate()["slos"]
        assert entry["budget_remaining"] == 1.0

    def test_snapshot_does_not_advance_the_machine(self, ring,
                                                   capture_events):
        tracker = SLOTracker([latency_spec()], ring)
        tracker.evaluate()
        for _ in range(10):
            ring.observe_latency(0.5)
        assert tracker.snapshot()["worst_state"] == "ok"  # last eval's view
        assert tracker.evaluate()["worst_state"] == "page"


class TestTransitionEvents:
    def test_page_and_recovery_events(self, ring, clock, capture_events):
        tracker = SLOTracker([latency_spec(clear_evals=1)], ring)
        for _ in range(10):
            ring.observe_latency(0.5)
        tracker.evaluate()
        clock.advance(30.0)
        tracker.evaluate()
        kinds = [(e["kind"], e["fields"]["from_state"],
                  e["fields"]["to_state"])
                 for e in capture_events.snapshot()]
        assert kinds == [("slo_page", "ok", "page"),
                         ("slo_recovered", "page", "ok")]

    def test_warning_event_only_from_ok(self, ring, clock, capture_events):
        tracker = SLOTracker([latency_spec(clear_evals=1)], ring)
        for _ in range(8):
            ring.observe_latency(0.01)
        for _ in range(2):
            ring.observe_latency(0.5)  # burn 2.0: warning band
        tracker.evaluate()
        [event] = capture_events.snapshot()
        assert event["kind"] == "slo_warning"
        assert event["fields"]["slo"] == "lat"
        assert event["fields"]["burn_fast"] == pytest.approx(2.0)

    def test_page_to_warning_lands_as_recovered(self, ring, clock,
                                                capture_events):
        tracker = SLOTracker([latency_spec(clear_evals=1)], ring)
        for _ in range(10):
            ring.observe_latency(0.5)
        tracker.evaluate()                      # ok -> page
        clock.advance(12.0)                     # past slow, inside window
        for _ in range(8):
            ring.observe_latency(0.01)
        for _ in range(2):
            ring.observe_latency(0.5)           # warning-band burn
        tracker.evaluate()                      # page -> warning
        kinds = [e["kind"] for e in capture_events.snapshot()]
        assert kinds == ["slo_page", "slo_recovered"]
        last = capture_events.snapshot()[-1]["fields"]
        assert (last["from_state"], last["to_state"]) == ("page", "warning")

    def test_steady_state_emits_nothing(self, ring, capture_events):
        tracker = SLOTracker([latency_spec()], ring)
        for _ in range(5):
            ring.observe_latency(0.01)
            tracker.evaluate()
        assert capture_events.snapshot() == []

    def test_emitted_kinds_are_catalogued(self):
        for kind in ("slo_warning", "slo_page", "slo_recovered"):
            assert kind in obs_events.KNOWN_KINDS
