"""Tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, ConstantLR, MLP, StepLR, Tensor, mse_loss


def _quadratic_problem():
    """Minimize ||x - target||^2 over a single parameter tensor."""
    target = np.array([1.0, -2.0, 3.0])
    x = Tensor(np.zeros(3), requires_grad=True)
    return x, target


def _loss_of(x, target):
    return ((x - target) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        x, target = _quadratic_problem()
        opt = SGD([x], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            _loss_of(x, target).backward()
            opt.step()
        np.testing.assert_allclose(x.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        def loss_after(steps, momentum):
            x, target = _quadratic_problem()
            opt = SGD([x], lr=0.01, momentum=momentum)
            for _ in range(steps):
                opt.zero_grad()
                _loss_of(x, target).backward()
                opt.step()
            return _loss_of(x, target).item()

        assert loss_after(50, 0.9) < loss_after(50, 0.0)

    def test_weight_decay_shrinks(self):
        x = Tensor(np.array([10.0]), requires_grad=True)
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            opt.zero_grad()
            (x * 0.0).sum().backward()  # zero task gradient
            opt.step()
        assert abs(x.data[0]) < 1.0

    def test_skips_parameters_without_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        SGD([x], lr=0.1).step()  # no backward yet: must not crash
        np.testing.assert_array_equal(x.data, np.ones(2))

    def test_invalid_hyperparams_raise(self):
        x = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([x], lr=0.0)
        with pytest.raises(ValueError):
            SGD([x], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        x, target = _quadratic_problem()
        opt = Adam([x], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            _loss_of(x, target).backward()
            opt.step()
        np.testing.assert_allclose(x.data, target, atol=1e-3)

    def test_trains_small_network(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(128, 4))
        Y = (X @ rng.normal(size=(4, 2))) ** 2
        net = MLP([4, 32, 2], rng=rng)
        opt = Adam(net.parameters(), lr=1e-2)
        first = mse_loss(net(Tensor(X)), Y).item()
        for _ in range(150):
            opt.zero_grad()
            mse_loss(net(Tensor(X)), Y).backward()
            opt.step()
        assert mse_loss(net(Tensor(X)), Y).item() < first * 0.2

    def test_invalid_betas_raise(self):
        x = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([x], betas=(1.0, 0.999))


class TestSchedulers:
    def test_step_lr_decays(self):
        x = Tensor(np.ones(1), requires_grad=True)
        opt = SGD([x], lr=1.0)
        scheduler = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(5)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_paper_schedule(self):
        # lr 1e-2 decayed x0.1 every 25 epochs (paper section 5.5)
        x = Tensor(np.ones(1), requires_grad=True)
        opt = SGD([x], lr=1e-2)
        scheduler = StepLR(opt, step_size=25, gamma=0.1)
        for _ in range(25):
            scheduler.step()
        assert opt.lr == pytest.approx(1e-3)

    def test_constant_lr(self):
        x = Tensor(np.ones(1), requires_grad=True)
        opt = SGD([x], lr=0.5)
        scheduler = ConstantLR(opt)
        for _ in range(10):
            assert scheduler.step() == 0.5

    def test_invalid_params_raise(self):
        x = Tensor(np.ones(1), requires_grad=True)
        opt = SGD([x], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=1, gamma=0.0)
