"""HTTP gateway: smoke (the CI fast-lane serving check), errors, backpressure."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.costmodel.accelerator import small_accelerator
from repro.engine import EngineConfig, MappingEngine, MappingRequest, MappingResponse
from repro.serve import MappingServer, ServeConfig, request_to_dict, start_gateway
from repro.workloads import make_conv1d

PROBLEM = make_conv1d("http_target", w=32, r=5)


def _post(url, payload, timeout=60):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


@pytest.fixture()
def stack():
    engine = MappingEngine(small_accelerator(), EngineConfig())
    server = MappingServer(
        engine, ServeConfig(max_batch=8, max_wait_s=0.01, workers=1)
    )
    gateway = start_gateway(server)
    yield engine, server, gateway
    gateway.shutdown()
    server.shutdown(timeout=30.0)


class TestSmoke:
    def test_post_map_returns_valid_response(self, stack):
        """The fast-lane serving smoke: start server, POST one request,
        assert 200 + a response that decodes and matches solo serving."""
        engine, _server, gateway = stack
        request = MappingRequest(
            PROBLEM, searcher="random", iterations=15, seed=1, tag="smoke"
        )
        status, payload = _post(
            f"{gateway.address}/v1/map",
            {"request": request_to_dict(request), "include_trace": True},
        )
        assert status == 200
        response = MappingResponse.from_dict(payload["response"])
        assert response.tag == "smoke"
        solo = engine.map(request)
        assert response.mapping == solo.mapping
        assert response.stats.edp == solo.stats.edp
        assert response.result.objective_values == solo.result.objective_values

    def test_healthz_and_metrics(self, stack):
        _engine, _server, gateway = stack
        status, health = _get(f"{gateway.address}/healthz")
        assert status == 200 and health["status"] == "ok"
        request = MappingRequest(PROBLEM, searcher="random", iterations=10, seed=2)
        _post(f"{gateway.address}/v1/map", {"request": request_to_dict(request)})
        status, metrics = _get(f"{gateway.address}/v1/metrics")
        assert status == 200
        assert metrics["counters"]["served"] >= 1
        assert "buckets" in metrics["batch_size"]
        assert "p99_ms" in metrics["latency"]
        assert metrics["oracle_cache"]["hits"] >= 0

    def test_high_priority_accepted(self, stack):
        _engine, _server, gateway = stack
        request = MappingRequest(PROBLEM, searcher="random", iterations=5, seed=3)
        status, _payload = _post(
            f"{gateway.address}/v1/map",
            {"request": request_to_dict(request), "priority": "high"},
        )
        assert status == 200


class TestObservabilityEndpoints:
    def _serve_one(self, gateway, seed=11):
        request = MappingRequest(
            PROBLEM, searcher="random", iterations=10, seed=seed, tag="obs"
        )
        _post(f"{gateway.address}/v1/map", {"request": request_to_dict(request)})

    def test_slo_snapshot_smoke(self, stack):
        _engine, _server, gateway = stack
        self._serve_one(gateway)
        status, snap = _get(f"{gateway.address}/v1/slo")
        assert status == 200
        assert snap["worst_state"] in ("ok", "warning", "page")
        names = {entry["name"] for entry in snap["slos"]}
        assert names  # the default SLO set is attached
        for entry in snap["slos"]:
            assert {"state", "burn_fast", "burn_slow",
                    "budget_remaining"} <= set(entry)

    def test_timeseries_projection_matches_counters(self, stack):
        _engine, _server, gateway = stack
        self._serve_one(gateway)
        status, snap = _get(
            f"{gateway.address}/v1/timeseries?metric=counters.served"
        )
        assert status == 200
        _status, metrics = _get(f"{gateway.address}/v1/metrics")
        total = sum(point["value"] for point in snap["series"])
        assert total == pytest.approx(metrics["counters"]["served"])

    def test_timeseries_bad_metric_is_400(self, stack):
        _engine, _server, gateway = stack
        self._serve_one(gateway)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{gateway.address}/v1/timeseries?metric=bogus.path")
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{gateway.address}/v1/timeseries?windows=soon")
        assert excinfo.value.code == 400

    def test_profile_reports_disabled_but_serves_hotspots(self, stack):
        _engine, _server, gateway = stack
        self._serve_one(gateway)
        status, snap = _get(f"{gateway.address}/v1/profile")
        assert status == 200
        assert snap["enabled"] is False  # profiling is opt-in
        assert "profiler" not in snap
        assert isinstance(snap["hotspots"], list) and snap["hotspots"]
        assert {"name", "problem", "self_s", "count"} <= set(snap["hotspots"][0])

    def test_unknown_event_kind_is_400_with_catalog(self, stack):
        from repro.obs.events import KNOWN_KINDS

        _engine, _server, gateway = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{gateway.address}/v1/events?kind=bogus")
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "bogus" in body["error"]
        assert body["known_kinds"] == list(KNOWN_KINDS)

    def test_known_event_kind_filters_cleanly(self, stack):
        _engine, _server, gateway = stack
        self._serve_one(gateway)
        status, body = _get(f"{gateway.address}/v1/events?kind=slo_page")
        assert status == 200
        assert body["events"] == []  # healthy server: nothing paged


class TestErrors:
    def test_invalid_json_is_400(self, stack):
        _engine, _server, gateway = stack
        request = urllib.request.Request(
            f"{gateway.address}/v1/map",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_missing_request_field_is_400(self, stack):
        _engine, _server, gateway = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{gateway.address}/v1/map", {"nope": 1})
        assert excinfo.value.code == 400

    def test_unknown_searcher_is_400(self, stack):
        _engine, _server, gateway = stack
        request = MappingRequest(PROBLEM, searcher="random", iterations=5, seed=0)
        payload = {"request": request_to_dict(request)}
        payload["request"]["searcher"] = "definitely-not-registered"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{gateway.address}/v1/map", payload)
        assert excinfo.value.code == 400
        assert "definitely-not-registered" in json.loads(excinfo.value.read())["error"]

    def test_unknown_path_is_404(self, stack):
        _engine, _server, gateway = stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{gateway.address}/v1/unknown")
        assert excinfo.value.code == 404

    def test_keep_alive_survives_early_reply_with_body(self, stack):
        """A 404'd POST must drain its body so the next request on the
        same persistent connection still parses."""
        import http.client

        _engine, _server, gateway = stack
        host, port = gateway.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            body = json.dumps({"request": {"junk": True}})
            connection.request("POST", "/nope", body=body,
                               headers={"Content-Type": "application/json"})
            first = connection.getresponse()
            assert first.status == 404
            first.read()
            # Same socket: framing must be intact.
            connection.request("GET", "/v1/healthz")
            second = connection.getresponse()
            assert second.status == 200
            assert json.loads(second.read())["status"] == "ok"
        finally:
            connection.close()

    def test_overload_maps_to_429_with_retry_after(self):
        gate = threading.Event()

        def gated_runner(engine, requests):
            gate.wait(timeout=10.0)
            from repro.serve.cohort import serve_batch

            return serve_batch(engine, requests)

        engine = MappingEngine(small_accelerator(), EngineConfig())
        server = MappingServer(
            engine,
            ServeConfig(max_batch=1, max_wait_s=0.0, max_queue=1, workers=1,
                        collapse_duplicates=False, response_cache_size=0),
            runner=gated_runner,
        )
        gateway = start_gateway(server)
        try:
            first = MappingRequest(PROBLEM, searcher="random", iterations=5, seed=0)
            background = threading.Thread(
                target=lambda: _post(
                    f"{gateway.address}/v1/map",
                    {"request": request_to_dict(first)},
                ),
                daemon=True,
            )
            background.start()
            # Wait until the gated request occupies the whole queue ...
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and server.queue_depth < 1:
                time.sleep(0.01)
            assert server.queue_depth >= 1, "gated request never admitted"
            # ... then the next request must bounce with a retry hint.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(
                    f"{gateway.address}/v1/map",
                    {"request": request_to_dict(
                        MappingRequest(PROBLEM, searcher="random",
                                       iterations=5, seed=1)
                    )},
                    timeout=10,
                )
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers.get("Retry-After")) >= 1
            assert json.loads(excinfo.value.read())["retry_after_s"] > 0
        finally:
            gate.set()
            background.join(timeout=30)
            gateway.shutdown()
            server.shutdown(timeout=30.0)
