"""Tests for minibatch iteration."""

import numpy as np
import pytest

from repro.nn import minibatches


def _dataset(n=10, d=3):
    inputs = np.arange(n * d, dtype=float).reshape(n, d)
    targets = np.arange(n, dtype=float).reshape(n, 1)
    return inputs, targets


class TestMinibatches:
    def test_covers_all_samples(self):
        inputs, targets = _dataset()
        seen = np.concatenate([y for _, y in minibatches(inputs, targets, 3, rng=0)])
        assert sorted(seen.ravel()) == list(range(10))

    def test_batch_sizes(self):
        inputs, targets = _dataset()
        sizes = [len(x) for x, _ in minibatches(inputs, targets, 3, rng=0)]
        assert sizes == [3, 3, 3, 1]

    def test_drop_last(self):
        inputs, targets = _dataset()
        sizes = [len(x) for x, _ in minibatches(inputs, targets, 3, rng=0, drop_last=True)]
        assert sizes == [3, 3, 3]

    def test_alignment_preserved(self):
        inputs, targets = _dataset()
        for x, y in minibatches(inputs, targets, 4, rng=1):
            # row i of inputs is [3i, 3i+1, 3i+2]; target is i
            np.testing.assert_array_equal(x[:, 0] / 3.0, y.ravel())

    def test_no_shuffle_keeps_order(self):
        inputs, targets = _dataset()
        first_batch = next(iter(minibatches(inputs, targets, 4, shuffle=False)))
        np.testing.assert_array_equal(first_batch[0], inputs[:4])

    def test_shuffle_deterministic_per_seed(self):
        inputs, targets = _dataset()
        a = [y.ravel().tolist() for _, y in minibatches(inputs, targets, 3, rng=5)]
        b = [y.ravel().tolist() for _, y in minibatches(inputs, targets, 3, rng=5)]
        assert a == b

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            list(minibatches(np.zeros((5, 2)), np.zeros((4, 1)), 2))

    def test_bad_batch_size_raises(self):
        inputs, targets = _dataset()
        with pytest.raises(ValueError):
            list(minibatches(inputs, targets, 0))
