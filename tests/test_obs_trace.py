"""Unit tests for repro.obs.trace on a fully fake clock."""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    FakeClock,
    Span,
    Tracer,
    activate,
    current_handles,
    span,
    span_tree,
)


@pytest.fixture
def clock():
    return FakeClock(100.0)


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestFakeClock:
    def test_advance(self, clock):
        assert clock() == 100.0
        clock.advance(2.5)
        assert clock() == 102.5

    def test_rejects_negative(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestSpans:
    def test_root_span_opens_at_start(self, tracer, clock):
        handle = tracer.start_trace("serve.request", problem="conv")
        snap = tracer.snapshot(handle.trace_id)
        [root] = snap["spans"]
        assert root["name"] == "serve.request"
        assert root["start"] == 100.0
        assert root["end"] is None
        assert root["attrs"]["problem"] == "conv"

    def test_nesting_follows_the_stack(self, tracer, clock):
        handle = tracer.start_trace("root")
        outer = handle.open_span("outer")
        clock.advance(1.0)
        inner = handle.open_span("inner")
        clock.advance(1.0)
        handle.close_span(inner)
        handle.close_span(outer)
        handle.finish()
        snap = tracer.snapshot(handle.trace_id)
        [tree] = snap["tree"]
        assert tree["span"]["name"] == "root"
        [outer_node] = tree["children"]
        assert outer_node["span"]["name"] == "outer"
        [inner_node] = outer_node["children"]
        assert inner_node["span"]["name"] == "inner"
        assert inner_node["span"]["start"] >= outer_node["span"]["start"]
        assert inner_node["span"]["end"] <= outer_node["span"]["end"]

    def test_close_span_accrues_stage(self, tracer, clock):
        handle = tracer.start_trace("root")
        sid = handle.open_span("kernel")
        clock.advance(0.5)
        handle.close_span(sid, stage="kernel_s")
        assert handle.stages == {"kernel_s": 0.5}

    def test_record_retroactive_span(self, tracer, clock):
        handle = tracer.start_trace("root")
        clock.advance(3.0)
        handle.record("admission", 100.0, 101.5, stage="admission_wait_s")
        assert handle.stages["admission_wait_s"] == 1.5
        snap = tracer.snapshot(handle.trace_id)
        admission = next(
            s for s in snap["spans"] if s["name"] == "admission"
        )
        assert admission["parent_id"] == handle.root_id
        assert admission["end"] == 101.5

    def test_finish_closes_open_spans_and_seals(self, tracer, clock):
        handle = tracer.start_trace("root")
        handle.open_span("dangling")
        clock.advance(1.0)
        handle.add_stage("kernel_s", 0.25)
        handle.finish()
        assert handle.closed
        snap = tracer.snapshot(handle.trace_id)
        assert all(s["end"] is not None for s in snap["spans"])
        assert snap["stages"] == {"kernel_s": 0.25}

    def test_closed_handle_is_inert(self, tracer, clock):
        handle = tracer.start_trace("root")
        handle.finish()
        before = tracer.snapshot(handle.trace_id)["spans"]
        assert handle.open_span("late") is None
        handle.record("late", 0.0, 1.0, stage="kernel_s")
        handle.add_stage("kernel_s", 9.0)
        handle.annotate(extra=True)
        handle.link("t-whatever")
        assert handle.stages == {}
        assert tracer.snapshot(handle.trace_id)["spans"] == before

    def test_duration_property(self):
        s = Span(trace_id="t", span_id="s", parent_id=None, name="n",
                 start=1.0, end=3.5)
        assert s.duration_s == 2.5
        assert Span(trace_id="t", span_id="s2", parent_id=None, name="n",
                    start=1.0).duration_s is None


class TestTracer:
    def test_disabled_tracer_returns_none(self, clock):
        tracer = Tracer(clock=clock, enabled=False)
        assert tracer.start_trace("root") is None
        assert tracer.ingest([{"trace_id": "t"}]) == 0

    def test_ids_are_unique_and_deterministic_in_form(self, tracer):
        a = tracer.start_trace("a")
        b = tracer.start_trace("b")
        assert a.trace_id != b.trace_id
        assert a.trace_id.startswith("t")
        assert a.root_id.startswith("s")

    def test_lru_eviction_bounds_memory(self, clock):
        tracer = Tracer(clock=clock, max_traces=2)
        handles = [tracer.start_trace(f"r{i}") for i in range(3)]
        ids = tracer.trace_ids()
        assert len(ids) == 2
        assert handles[0].trace_id not in ids
        # The evicted handle degrades gracefully: spans are dropped.
        assert handles[0].open_span("late") is None
        assert tracer.snapshot(handles[0].trace_id) is None

    def test_adopting_a_remote_parent(self, tracer):
        handle = tracer.start_trace(
            "serve.request", parent=("t-remote", "s-remote")
        )
        assert handle.trace_id == "t-remote"
        snap = tracer.snapshot("t-remote")
        [root] = snap["spans"]
        assert root["parent_id"] == "s-remote"

    def test_ingest_merges_remote_spans(self, tracer, clock):
        handle = tracer.start_trace("cluster.request")
        rpc = handle.open_span("shard.rpc")
        remote = [
            {
                "trace_id": handle.trace_id,
                "span_id": "sdead.1",
                "parent_id": rpc,
                "name": "serve.request",
                "start": 0.0,
                "end": 1.0,
                "pid": 4242,
            },
            {"malformed": True},
        ]
        assert tracer.ingest(remote) == 1
        handle.close_span(rpc)
        handle.finish()
        snap = tracer.snapshot(handle.trace_id)
        names = {s["name"] for s in snap["spans"]}
        assert "serve.request" in names
        [tree] = snap["tree"]
        rpc_node = next(
            c for c in tree["children"] if c["span"]["name"] == "shard.rpc"
        )
        assert [c["span"]["name"] for c in rpc_node["children"]] == [
            "serve.request"
        ]

    def test_links_surface_linked_spans(self, tracer):
        leader = tracer.start_trace("leader")
        follower = tracer.start_trace("follower")
        follower.link(leader.trace_id)
        snap = tracer.snapshot(follower.trace_id)
        assert snap["links"] == [leader.trace_id]
        assert leader.trace_id in snap["linked_spans"]


class TestAmbient:
    def test_span_is_noop_without_context(self, tracer):
        with span("kernel") as recorded:
            assert recorded is False
        assert current_handles() == ()

    def test_span_fans_out_to_live_handles(self, tracer, clock):
        a = tracer.start_trace("a")
        b = tracer.start_trace("b")
        b.finish()
        with activate([a, None, b]):
            assert current_handles() == (a, None, b)
            with span("kernel", stage="kernel_s", lanes=3) as recorded:
                assert recorded is True
                clock.advance(0.25)
        assert a.stages == {"kernel_s": 0.25}
        assert b.stages == {}
        kernel = next(
            s for s in tracer.snapshot(a.trace_id)["spans"]
            if s["name"] == "kernel"
        )
        assert kernel["attrs"]["lanes"] == 3

    def test_attrs_fn_only_called_when_listening(self, tracer):
        calls = []

        def build():
            calls.append(1)
            return {"lanes": 1}

        with span("kernel", attrs_fn=build):
            pass
        assert calls == []
        handle = tracer.start_trace("a")
        with activate([handle]):
            with span("kernel", attrs_fn=build):
                pass
        assert calls == [1]

    def test_activation_nests_and_restores(self, tracer):
        a = tracer.start_trace("a")
        b = tracer.start_trace("b")
        with activate([a]):
            with activate([b]):
                assert current_handles() == (b,)
            assert current_handles() == (a,)
        assert current_handles() == ()


class TestSpanTree:
    def test_orphans_become_roots(self):
        spans = [
            {"span_id": "s1", "parent_id": "missing", "start": 1.0},
            {"span_id": "s2", "parent_id": None, "start": 0.0},
        ]
        roots = span_tree(spans)
        assert [r["span"]["span_id"] for r in roots] == ["s2", "s1"]
