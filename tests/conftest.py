"""Shared fixtures: small problems, accelerators, and a tiny trained surrogate.

Expensive artifacts (trained surrogates, generated datasets) are
session-scoped so the whole suite pays for them once.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck, settings

# Property tests run alongside slow session fixtures; wall-clock deadlines
# would make them flaky.  Disable deadlines, keep example counts.
settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")

from repro.core import MindMappings, MindMappingsConfig, TrainingConfig, generate_dataset

_REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session", autouse=True)
def debug_lock_tracer():
    """Opt-in runtime lock-order recording (``REPRO_DEBUG_LOCKS=1``).

    When enabled, every lock created during the session is a DebugLock;
    at teardown the recorded acquisition orders are unioned with the
    static lock graph and the union must stay acyclic — the nightly CI
    lane runs the hammer suites under this fixture.
    """
    if not os.environ.get("REPRO_DEBUG_LOCKS"):
        yield None
        return
    from repro.analysis import build_lock_graph
    from repro.analysis.debuglock import (
        LockTracer,
        crosscheck,
        static_label_map,
        trace_locks,
    )

    src = _REPO_ROOT / "src" / "repro"
    tracer = LockTracer(
        static_label_map([src], root=_REPO_ROOT), root=_REPO_ROOT
    )
    with trace_locks(tracer):
        yield tracer
    conflicts = crosscheck(build_lock_graph([src], root=_REPO_ROOT), tracer)
    if conflicts:
        raise RuntimeError(
            "DebugLock/static lock-order cross-check failed:\n"
            + "\n".join(conflicts)
        )
from repro.costmodel import CostModel, default_accelerator
from repro.costmodel.accelerator import small_accelerator
from repro.mapspace import MapSpace
from repro.workloads import make_cnn_layer, make_conv1d, make_gemm, make_mttkrp


@pytest.fixture(scope="session")
def accelerator():
    """The paper's 256-PE evaluation accelerator."""
    return default_accelerator()


@pytest.fixture(scope="session")
def tiny_accelerator():
    """16-PE accelerator whose map spaces stay enumerable."""
    return small_accelerator()


@pytest.fixture(scope="session")
def conv1d_problem():
    """The paper's section 3 running example, small enough to enumerate."""
    return make_conv1d("conv1d_test", w=32, r=5)


@pytest.fixture(scope="session")
def cnn_problem():
    """A small but realistic CNN layer."""
    return make_cnn_layer("cnn_test", n=4, k=64, c=32, h=16, w=16, r=3, s=3)


@pytest.fixture(scope="session")
def mttkrp_problem():
    """A small MTTKRP shape."""
    return make_mttkrp("mttkrp_test", i=64, j=128, k=256, l=32)


@pytest.fixture(scope="session")
def gemm_problem():
    """The GEMM extension workload."""
    return make_gemm("gemm_test", m=128, n=64, k=256)


@pytest.fixture(scope="session")
def cnn_space(cnn_problem, accelerator):
    return MapSpace(cnn_problem, accelerator)


@pytest.fixture(scope="session")
def conv1d_space(conv1d_problem, tiny_accelerator):
    return MapSpace(conv1d_problem, tiny_accelerator)


@pytest.fixture(scope="session")
def cost_model(accelerator):
    return CostModel(accelerator)


@pytest.fixture(scope="session")
def tiny_cost_model(tiny_accelerator):
    return CostModel(tiny_accelerator)


@pytest.fixture(scope="session")
def cnn_training_problems():
    """Fixed small CNN problems for deterministic dataset generation."""
    return (
        make_cnn_layer("train_a", n=2, k=32, c=32, h=16, w=16, r=3, s=3),
        make_cnn_layer("train_b", n=4, k=64, c=32, h=8, w=8, r=3, s=3),
        make_cnn_layer("train_c", n=4, k=64, c=64, h=16, w=16, r=5, s=5),
        make_cnn_layer("train_d", n=2, k=128, c=32, h=8, w=8, r=1, s=1),
    )


@pytest.fixture(scope="session")
def cnn_dataset(accelerator, cnn_training_problems):
    """A small Phase 1 dataset over fixed CNN problems."""
    return generate_dataset(
        "cnn-layer",
        accelerator,
        n_samples=1200,
        problems=cnn_training_problems,
        seed=0,
    )


@pytest.fixture(scope="session")
def trained_mm(accelerator, cnn_training_problems):
    """A small trained MindMappings instance (shared across tests)."""
    config = MindMappingsConfig(
        dataset_samples=4000,
        training=TrainingConfig(hidden_layers=(64, 128, 64), epochs=12),
    )
    return MindMappings.train(
        "cnn-layer", accelerator, config, problems=cnn_training_problems, seed=0
    )
