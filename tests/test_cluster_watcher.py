"""RegistryWatcher: cross-process surrogate adoption via the shared registry."""

import numpy as np
import pytest

from repro.cluster.watcher import RegistryWatcher
from repro.core import MindMappings, MindMappingsConfig, TrainingConfig
from repro.costmodel.accelerator import default_accelerator, small_accelerator
from repro.engine.engine import EngineConfig, MappingEngine
from repro.learn.registry import ModelRegistry
from repro.workloads import make_conv1d

ACCEL = small_accelerator()
TRAIN_PROBLEMS = (
    make_conv1d("watch_train_a", w=8, r=2),
    make_conv1d("watch_train_b", w=12, r=3),
)


@pytest.fixture(scope="module")
def pipeline():
    config = MindMappingsConfig(
        dataset_samples=200,
        training=TrainingConfig(hidden_layers=(8, 8), epochs=1),
    )
    return MindMappings.train(
        "conv1d", ACCEL, config, problems=TRAIN_PROBLEMS, seed=0
    )


def _variant(pipeline, seed):
    surrogate = pipeline.surrogate.clone()
    rng = np.random.default_rng(seed)
    for parameter in surrogate.network.parameters():
        parameter.data += rng.normal(scale=1e-3, size=parameter.data.shape)
    return MindMappings(surrogate, pipeline.accelerator)


def _engine() -> MappingEngine:
    return MappingEngine(ACCEL, EngineConfig(train_seed=0))


class TestPoll:
    def test_adopts_foreign_publish(self, tmp_path, pipeline):
        """A version published by *another registry instance* (stand-in for
        another process) is picked up through refresh and hot-swapped."""
        engine = _engine()
        watcher = RegistryWatcher(engine, ModelRegistry(tmp_path))
        # Publish AFTER the watcher's registry indexed the (empty) dir.
        ModelRegistry(tmp_path).publish(pipeline)
        assert watcher.poll() == ["conv1d"]
        assert watcher.adopted.value == 1
        versions = engine.surrogate_versions()
        assert versions["conv1d"]["version"] == 1
        assert versions["conv1d"]["source"] == "registry:v1"
        assert versions["conv1d"]["fingerprint"] == ACCEL.fingerprint()
        served = engine.surrogate_for("conv1d")
        for key, value in served.network.state_dict().items():
            np.testing.assert_array_equal(
                value, pipeline.surrogate.network.state_dict()[key]
            )

    def test_adoption_is_deduplicated(self, tmp_path, pipeline):
        engine = _engine()
        watcher = RegistryWatcher(engine, ModelRegistry(tmp_path))
        ModelRegistry(tmp_path).publish(pipeline)
        assert watcher.poll() == ["conv1d"]
        # Nothing new on disk: the next polls adopt nothing.
        assert watcher.poll() == []
        assert watcher.poll() == []
        assert watcher.adopted.value == 1
        assert watcher.polls.value == 3

    def test_newer_publish_adopted_over_old(self, tmp_path, pipeline):
        engine = _engine()
        publisher = ModelRegistry(tmp_path)
        watcher = RegistryWatcher(engine, ModelRegistry(tmp_path))
        publisher.publish(pipeline)
        watcher.poll()
        publisher.publish(_variant(pipeline, 42))
        assert watcher.poll() == ["conv1d"]
        assert engine.surrogate_versions()["conv1d"]["version"] == 2

    def test_local_version_at_or_above_latest_is_kept(self, tmp_path, pipeline):
        """A shard whose own learner already installed v5 must not be
        downgraded by a stale v1 in the registry."""
        engine = _engine()
        engine.install_pipeline(
            "conv1d", _variant(pipeline, 7), source="online:v5", version=5
        )
        ModelRegistry(tmp_path).publish(pipeline)  # v1
        watcher = RegistryWatcher(engine, ModelRegistry(tmp_path))
        assert watcher.poll() == []
        assert engine.surrogate_versions()["conv1d"]["version"] == 5
        assert engine.surrogate_versions()["conv1d"]["source"] == "online:v5"

    def test_algorithm_filter(self, tmp_path, pipeline):
        engine = _engine()
        ModelRegistry(tmp_path).publish(pipeline)
        watcher = RegistryWatcher(
            engine, ModelRegistry(tmp_path), algorithms=["gemm"]
        )
        assert watcher.poll() == []
        assert "conv1d" not in engine.surrogate_versions()

    def test_wrong_fingerprint_counts_error_keeps_serving(
        self, tmp_path, pipeline
    ):
        """A registry directory accidentally shared across heterogeneous
        fleets degrades to counted errors, never a wrong-hardware swap."""
        ModelRegistry(tmp_path).publish(pipeline)  # trained for ACCEL
        other_engine = MappingEngine(
            default_accelerator(), EngineConfig(train_seed=0)
        )
        watcher = RegistryWatcher(other_engine, ModelRegistry(tmp_path))
        with pytest.warns(UserWarning, match="failed to adopt"):
            assert watcher.poll() == []
        assert watcher.errors.value == 1
        assert "conv1d" not in other_engine.surrogate_versions()

    def test_invalid_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RegistryWatcher(_engine(), ModelRegistry(tmp_path), interval_s=0)


class TestBackgroundThread:
    def test_background_adoption(self, tmp_path, pipeline):
        import time

        engine = _engine()
        with RegistryWatcher(
            engine, ModelRegistry(tmp_path), interval_s=0.02
        ):
            ModelRegistry(tmp_path).publish(pipeline)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if watched := engine.surrogate_versions().get("conv1d"):
                    assert watched["version"] == 1
                    break
                time.sleep(0.02)
            else:
                pytest.fail("background watcher never adopted the publish")

    def test_snapshot_schema(self, tmp_path, pipeline):
        engine = _engine()
        watcher = RegistryWatcher(engine, ModelRegistry(tmp_path))
        ModelRegistry(tmp_path).publish(pipeline)
        watcher.poll()
        snapshot = watcher.snapshot()
        assert snapshot["polls"] == 1
        assert snapshot["adopted"] == 1
        assert snapshot["errors"] == 0
        assert snapshot["adopted_versions"] == {"conv1d": 1}
        assert snapshot["registry_root"] == str(tmp_path)
