"""Tests for the baseline searchers: Random, SA, GA, RL, Exhaustive."""

import math

import pytest

from repro.costmodel import CostModel, algorithmic_minimum
from repro.search import (
    ExhaustiveSearcher,
    GeneticSearcher,
    RLSearcher,
    RandomSearcher,
    SimulatedAnnealingSearcher,
)


def _common_checks(result, space, iterations):
    assert result.n_evaluations == iterations
    assert all(space.is_member(m) for m in result.mappings)
    assert all(math.isfinite(v) for v in result.objective_values)
    assert result.eval_times == sorted(result.eval_times)


class TestRandomSearcher:
    def test_basic(self, cnn_space, cost_model):
        result = RandomSearcher(cnn_space, cost_model).search(30, seed=0)
        _common_checks(result, cnn_space, 30)
        assert result.searcher == "Random"

    def test_deterministic(self, cnn_space, cost_model):
        searcher = RandomSearcher(cnn_space, cost_model)
        assert searcher.search(10, seed=1).mappings == searcher.search(10, seed=1).mappings

    def test_objective_is_log2_edp(self, cnn_space, cost_model, cnn_problem):
        result = RandomSearcher(cnn_space, cost_model).search(5, seed=2)
        for mapping, value in zip(result.mappings, result.objective_values):
            assert value == pytest.approx(
                math.log2(cost_model.evaluate_edp(mapping, cnn_problem))
            )


class TestSimulatedAnnealing:
    def test_basic(self, cnn_space, cost_model):
        result = SimulatedAnnealingSearcher(cnn_space, cost_model).search(60, seed=0)
        _common_checks(result, cnn_space, 60)

    def test_improves_over_first_sample(self, cnn_space, cost_model):
        improved = 0
        for seed in range(4):
            result = SimulatedAnnealingSearcher(cnn_space, cost_model).search(150, seed=seed)
            if result.best_objective < result.objective_values[0]:
                improved += 1
        assert improved >= 3

    def test_restart_option(self, cnn_space, cost_model):
        searcher = SimulatedAnnealingSearcher(cnn_space, cost_model, restart_after=10)
        _common_checks(searcher.search(50, seed=0), cnn_space, 50)

    def test_invalid_acceptance_raises(self, cnn_space, cost_model):
        with pytest.raises(ValueError):
            SimulatedAnnealingSearcher(
                cnn_space, cost_model, initial_acceptance=0.1, final_acceptance=0.5
            )


class TestGeneticSearcher:
    def test_basic(self, cnn_space, cost_model):
        searcher = GeneticSearcher(cnn_space, cost_model, population_size=10)
        _common_checks(searcher.search(60, seed=0), cnn_space, 60)

    def test_elites_preserved(self, cnn_space, cost_model):
        searcher = GeneticSearcher(
            cnn_space, cost_model, population_size=8, elite_count=2
        )
        result = searcher.search(60, seed=1)
        # best objective can never regress across generations
        curve = result.best_so_far()
        assert curve == sorted(curve, reverse=True)

    def test_population_clamped_to_budget(self, cnn_space, cost_model):
        searcher = GeneticSearcher(cnn_space, cost_model, population_size=100)
        result = searcher.search(20, seed=0)
        assert result.n_evaluations == 20

    def test_invalid_params_raise(self, cnn_space, cost_model):
        with pytest.raises(ValueError):
            GeneticSearcher(cnn_space, cost_model, population_size=1)
        with pytest.raises(ValueError):
            GeneticSearcher(cnn_space, cost_model, crossover_probability=1.5)
        with pytest.raises(ValueError):
            GeneticSearcher(cnn_space, cost_model, mutation_probability=-0.1)


class TestRLSearcher:
    def test_basic(self, cnn_space, cost_model):
        searcher = RLSearcher(
            cnn_space, cost_model, hidden_width=32, batch_size=8, warmup=8
        )
        result = searcher.search(40, seed=0)
        _common_checks(result, cnn_space, 40)
        assert result.searcher == "RL"

    def test_deterministic(self, cnn_space, cost_model):
        searcher = RLSearcher(
            cnn_space, cost_model, hidden_width=16, batch_size=4, warmup=4
        )
        a = searcher.search(15, seed=3)
        b = searcher.search(15, seed=3)
        assert a.mappings == b.mappings


class TestExhaustiveSearcher:
    def test_finds_global_optimum_of_tiny_space(
        self, conv1d_space, tiny_cost_model, conv1d_problem
    ):
        searcher = ExhaustiveSearcher(
            conv1d_space, tiny_cost_model, include_orders=False
        )
        result = searcher.search(100_000)
        # verify against brute force
        best = min(
            tiny_cost_model.evaluate_edp(m, conv1d_problem)
            for m in conv1d_space.enumerate_mappings(include_orders=False)
        )
        assert 2.0**result.best_objective == pytest.approx(best)

    def test_budget_caps_enumeration(self, conv1d_space, tiny_cost_model):
        searcher = ExhaustiveSearcher(conv1d_space, tiny_cost_model, include_orders=False)
        assert searcher.search(10).n_evaluations == 10


class TestHeuristicsBeatTheoreticalFloor:
    def test_all_searchers_bounded_below(self, cnn_space, cost_model, cnn_problem):
        bound = algorithmic_minimum(cnn_problem, cost_model.accelerator)
        for searcher in (
            RandomSearcher(cnn_space, cost_model),
            SimulatedAnnealingSearcher(cnn_space, cost_model),
            GeneticSearcher(cnn_space, cost_model, population_size=8),
        ):
            result = searcher.search(40, seed=0)
            assert 2.0**result.best_objective >= bound.edp
