"""Cross-module integration tests: the full story on small problems."""

import math

import numpy as np
import pytest

from repro.core import GradientSearcher, MindMappings, MindMappingsConfig, TrainingConfig
from repro.costmodel import CostModel, algorithmic_minimum
from repro.mapspace import MapSpace
from repro.search import RandomSearcher, SimulatedAnnealingSearcher
from repro.workloads import make_cnn_layer, make_gemm, make_mttkrp


class TestEndToEndCnn:
    def test_mm_beats_first_random_samples(self, trained_mm, cnn_problem, cost_model):
        """MM's best found mapping must beat the average random sample by a
        wide margin (the minimum bar for a guided search)."""
        space = MapSpace(cnn_problem, trained_mm.accelerator)
        mapping, stats = trained_mm.find_mapping(cnn_problem, iterations=120, seed=0)
        random_edps = [
            cost_model.evaluate_edp(space.sample(seed), cnn_problem)
            for seed in range(20)
        ]
        assert stats.edp < np.mean(random_edps)

    def test_mm_reaches_reasonable_lb_gap(self, trained_mm, cnn_problem, cost_model):
        """Paper reports ~5.3x gap to the (unachievable) lower bound; even
        the scaled-down setup must stay within a loose multiple of that."""
        space = MapSpace(cnn_problem, trained_mm.accelerator)
        model = CostModel(trained_mm.accelerator)
        searcher = trained_mm.searcher(cnn_problem)
        result = searcher.search(200, seed=1)
        best_true = min(model.evaluate_edp(m, cnn_problem) for m in result.mappings)
        bound = algorithmic_minimum(cnn_problem, trained_mm.accelerator)
        assert best_true / bound.edp < 50.0


class TestOtherAlgorithms:
    """The framework must be algorithm-agnostic end to end."""

    @pytest.mark.parametrize(
        "problem_factory",
        [
            lambda: make_mttkrp("mt", i=32, j=64, k=64, l=16),
            lambda: make_gemm("gm", m=64, n=64, k=128),
        ],
        ids=["mttkrp", "gemm"],
    )
    def test_full_pipeline(self, accelerator, problem_factory):
        problem = problem_factory()
        config = MindMappingsConfig(
            dataset_samples=400,
            training=TrainingConfig(hidden_layers=(32,), epochs=3),
        )
        mm = MindMappings.train(
            problem.algorithm, accelerator, config, problems=[problem], seed=0
        )
        mapping, stats = mm.find_mapping(problem, iterations=40, seed=0)
        bound = algorithmic_minimum(problem, accelerator)
        assert stats.edp >= bound.edp
        space = MapSpace(problem, accelerator)
        assert space.is_member(mapping)


class TestSearcherAgreementOnTinySpace:
    def test_heuristics_approach_exhaustive_optimum(
        self, conv1d_problem, tiny_accelerator, tiny_cost_model
    ):
        """On an enumerable space, SA with a generous budget must come
        within a small factor of the true optimum."""
        space = MapSpace(conv1d_problem, tiny_accelerator)
        optimum = min(
            tiny_cost_model.evaluate_edp(m, conv1d_problem)
            for m in space.enumerate_mappings(include_orders=False)
        )
        result = SimulatedAnnealingSearcher(space, tiny_cost_model).search(400, seed=0)
        best = 2.0**result.best_objective
        assert best <= optimum * 4.0

    def test_random_converges_with_budget(
        self, conv1d_problem, tiny_accelerator, tiny_cost_model
    ):
        space = MapSpace(conv1d_problem, tiny_accelerator)
        short = RandomSearcher(space, tiny_cost_model).search(10, seed=0)
        long = RandomSearcher(space, tiny_cost_model).search(300, seed=0)
        assert long.best_objective <= short.best_objective


class TestSurrogateFidelity:
    def test_prediction_correlates_with_truth(self, trained_mm, cnn_problem, cost_model):
        """The trained surrogate must rank mappings usefully (Spearman-ish
        via Pearson on log EDP)."""
        space = MapSpace(cnn_problem, trained_mm.accelerator)
        bound = algorithmic_minimum(cnn_problem, trained_mm.accelerator)
        samples = space.sample_many(60, seed=123)
        truth = np.array(
            [math.log2(cost_model.evaluate_edp(m, cnn_problem) / bound.edp) for m in samples]
        )
        predicted = np.array(
            [
                trained_mm.surrogate.predict_log2_norm_edp(
                    trained_mm.surrogate.whiten_mapping(m, cnn_problem)
                )[0]
                for m in samples
            ]
        )
        # Threshold chosen for the deliberately tiny test fixture (4k
        # samples, 12 epochs); the benchmark-scale surrogate reaches ~0.95.
        assert np.corrcoef(truth, predicted)[0, 1] > 0.35
