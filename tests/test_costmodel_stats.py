"""Tests for CostStats helpers and unit conversions."""

import numpy as np
import pytest

from repro.costmodel.stats import CostStats, TensorLevelEnergy


def _stats(clock=1.0):
    records = (
        TensorLevelEnergy("A", "DRAM", accesses=10.0, energy_pj=2000.0),
        TensorLevelEnergy("A", "L2", accesses=20.0, energy_pj=200.0),
        TensorLevelEnergy("A", "L1", accesses=40.0, energy_pj=80.0),
        TensorLevelEnergy("Out", "DRAM", accesses=5.0, energy_pj=1000.0),
        TensorLevelEnergy("Out", "L2", accesses=10.0, energy_pj=100.0),
        TensorLevelEnergy("Out", "L1", accesses=20.0, energy_pj=40.0),
    )
    return CostStats(
        problem_name="toy",
        records=records,
        noc_energy_pj=50.0,
        mac_energy_pj=500.0,
        cycles=1e6,
        utilization=0.5,
        spatial_pes=64,
        clock_ghz=clock,
    )


class TestAggregates:
    def test_memory_energy(self):
        assert _stats().memory_energy_pj == pytest.approx(3420.0)

    def test_total_energy(self):
        assert _stats().total_energy_pj == pytest.approx(3420.0 + 50.0 + 500.0)

    def test_energy_joules(self):
        assert _stats().energy_j == pytest.approx(3970.0e-12)

    def test_delay_at_1ghz(self):
        assert _stats().delay_s == pytest.approx(1e-3)

    def test_delay_scales_with_clock(self):
        assert _stats(clock=2.0).delay_s == pytest.approx(0.5e-3)

    def test_edp_product(self):
        stats = _stats()
        assert stats.edp == pytest.approx(stats.energy_j * stats.delay_s)


class TestLookups:
    def test_energy_for_pair(self):
        assert _stats().energy_pj_for("A", "L2") == 200.0

    def test_energy_for_missing_pair_is_zero(self):
        assert _stats().energy_pj_for("B", "L2") == 0.0

    def test_accesses_for(self):
        assert _stats().accesses_for("Out", "L1") == 20.0
        assert _stats().accesses_for("Nope", "L1") == 0.0

    def test_energy_by_level(self):
        by_level = _stats().energy_by_level()
        assert by_level == {
            "DRAM": pytest.approx(3000.0),
            "L2": pytest.approx(300.0),
            "L1": pytest.approx(120.0),
        }


class TestMetaVector:
    def test_layout(self):
        vector = _stats().meta_vector(("A", "Out"))
        assert len(vector) == 9  # 2 tensors * 3 levels + 3
        np.testing.assert_allclose(vector[:3], [2000.0, 200.0, 80.0])
        np.testing.assert_allclose(vector[3:6], [1000.0, 100.0, 40.0])
        assert vector[6] == pytest.approx(3970.0)
        assert vector[7] == 0.5
        assert vector[8] == 1e6

    def test_static_length_helper(self):
        assert CostStats.meta_vector_length(3) == 12
        assert CostStats.meta_vector_length(4) == 15

    def test_summary_format(self):
        text = _stats().summary()
        assert "toy" in text
        assert "PEs=64" in text
