"""Unit and property tests for repro.utils.mathx."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    clamp,
    divisors,
    factorizations,
    geomean,
    is_power_of_two,
    log2_safe,
    nearest_divisor,
    prod,
    round_to_nearest,
)


class TestProd:
    def test_empty(self):
        assert prod([]) == 1

    def test_basic(self):
        assert prod([2, 3, 4]) == 24

    def test_with_ones(self):
        assert prod([1, 7, 1]) == 7

    @given(st.lists(st.integers(min_value=1, max_value=50), max_size=8))
    def test_matches_math_prod(self, values):
        assert prod(values) == math.prod(values)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-3.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(9.0, 0.0, 1.0) == 1.0

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(0.0, 1.0, 0.0)


class TestDivisors:
    def test_one(self):
        assert divisors(1) == (1,)

    def test_prime(self):
        assert divisors(13) == (1, 13)

    def test_composite(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_square(self):
        assert divisors(36) == (1, 2, 3, 4, 6, 9, 12, 18, 36)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(st.integers(min_value=1, max_value=5000))
    def test_all_divide(self, n):
        for d in divisors(n):
            assert n % d == 0

    @given(st.integers(min_value=1, max_value=5000))
    def test_sorted_and_complete(self, n):
        ds = divisors(n)
        assert list(ds) == sorted(ds)
        brute = tuple(d for d in range(1, n + 1) if n % d == 0)
        assert ds == brute


class TestNearestDivisor:
    def test_exact(self):
        assert nearest_divisor(12, 4) == 4

    def test_rounds_in_log_space(self):
        # log-space midpoint of 2 and 6 is sqrt(12) ~ 3.46; 3 divides 12.
        assert nearest_divisor(12, 3.4) == 3

    def test_huge_target_gives_n(self):
        assert nearest_divisor(12, 1e9) == 12

    def test_tiny_target_gives_one(self):
        assert nearest_divisor(12, 1e-9) == 1


class TestFactorizations:
    def test_single_part(self):
        assert factorizations(6, 1) == ((6,),)

    def test_two_parts(self):
        assert set(factorizations(6, 2)) == {(1, 6), (2, 3), (3, 2), (6, 1)}

    def test_products_match(self):
        for parts in factorizations(24, 3):
            assert math.prod(parts) == 24

    def test_counts_for_prime_powers(self):
        # 2^3 into 4 ordered factors: C(3 + 3, 3) = 20 compositions.
        assert len(factorizations(8, 4)) == 20

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            factorizations(6, 0)
        with pytest.raises(ValueError):
            factorizations(0, 2)

    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=4),
    )
    def test_all_unique_and_correct(self, n, parts):
        options = factorizations(n, parts)
        assert len(set(options)) == len(options)
        for option in options:
            assert len(option) == parts
            assert math.prod(option) == n


class TestRoundToNearest:
    def test_basic(self):
        assert round_to_nearest(5.4, [1, 5, 10]) == 5

    def test_tie_prefers_smaller(self):
        assert round_to_nearest(3, [2, 4]) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            round_to_nearest(1.0, [])


class TestGeomean:
    def test_identity(self):
        assert geomean([4.0]) == pytest.approx(4.0)

    def test_pair(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=10))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestMisc:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(64)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    def test_log2_safe_floors_zero(self):
        assert log2_safe(0.0) == math.log2(1e-12)

    def test_log2_safe_normal(self):
        assert log2_safe(8.0) == pytest.approx(3.0)
