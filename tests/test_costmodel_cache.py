"""CachedOracle: correctness vs. the uncached model, counters, eviction."""

import pytest

from repro.costmodel import CachedOracle, CostModel


@pytest.fixture()
def sampled(cnn_space):
    return cnn_space.sample_many(8, seed=3)


class TestCorrectness:
    def test_edp_matches_uncached_model(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model)
        for mapping in sampled:
            expected = cost_model.evaluate_edp(mapping, cnn_problem)
            assert oracle.evaluate_edp(mapping, cnn_problem) == expected
            # Second query must be identical (and served from cache).
            assert oracle.evaluate_edp(mapping, cnn_problem) == expected

    def test_stats_match_uncached_model(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model)
        mapping = sampled[0]
        stats = oracle.evaluate(mapping, cnn_problem)
        expected = cost_model.evaluate(mapping, cnn_problem)
        assert stats.edp == expected.edp
        assert stats.total_energy_pj == expected.total_energy_pj
        assert stats.cycles == expected.cycles

    def test_edp_served_from_stats_entry(self, cost_model, cnn_problem, sampled):
        """A full evaluate() also answers later evaluate_edp() queries."""
        oracle = CachedOracle(cost_model)
        mapping = sampled[0]
        stats = oracle.evaluate(mapping, cnn_problem)
        assert oracle.evaluate_edp(mapping, cnn_problem) == stats.edp
        snapshot = oracle.stats()
        assert snapshot.misses == 1
        assert snapshot.hits == 1

    def test_problems_differing_only_in_ops_not_conflated(self, tiny_accelerator):
        """Same name/algorithm/dims but different ops_per_point must not
        share cache entries — their true costs differ."""
        import dataclasses

        from repro.mapspace import MapSpace
        from repro.workloads import make_conv1d

        base = make_conv1d("same_name", w=32, r=5)
        heavier = dataclasses.replace(base, ops_per_point=7)
        oracle = CachedOracle(CostModel(tiny_accelerator))
        mapping = MapSpace(base, tiny_accelerator).sample(0)
        first = oracle.evaluate_edp(mapping, base)
        second = oracle.evaluate_edp(mapping, heavier)
        assert first != second
        assert second == CostModel(tiny_accelerator).evaluate_edp(mapping, heavier)
        assert oracle.stats().misses == 2

    def test_distinct_problems_not_conflated(self, tiny_accelerator):
        from repro.mapspace import MapSpace
        from repro.workloads import make_conv1d

        a = make_conv1d("cache_a", w=32, r=5)
        b = make_conv1d("cache_b", w=40, r=5)
        oracle = CachedOracle(CostModel(tiny_accelerator))
        oracle.evaluate_edp(MapSpace(a, tiny_accelerator).sample(0), a)
        assert oracle.stats().misses == 1
        oracle.evaluate_edp(MapSpace(b, tiny_accelerator).sample(0), b)
        assert oracle.stats().misses == 2


class TestCounters:
    def test_hit_miss_accounting(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model)
        for mapping in sampled:
            oracle.evaluate_edp(mapping, cnn_problem)
        for mapping in sampled:
            oracle.evaluate_edp(mapping, cnn_problem)
        snapshot = oracle.stats()
        assert snapshot.misses == len(sampled)
        assert snapshot.hits == len(sampled)
        assert snapshot.queries == 2 * len(sampled)
        assert snapshot.hit_rate == pytest.approx(0.5)

    def test_empty_hit_rate_is_zero(self, cost_model):
        assert CachedOracle(cost_model).stats().hit_rate == 0.0

    def test_clear_resets(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model)
        oracle.evaluate_edp(sampled[0], cnn_problem)
        oracle.clear()
        snapshot = oracle.stats()
        assert snapshot.size == 0
        assert snapshot.queries == 0


class TestEviction:
    def test_lru_bound_respected(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model, maxsize=4)
        for mapping in sampled:  # 8 distinct entries through a bound of 4
            oracle.evaluate_edp(mapping, cnn_problem)
        assert oracle.stats().size <= 4
        # Oldest entries were evicted: re-querying them misses again.
        oracle.evaluate_edp(sampled[0], cnn_problem)
        assert oracle.stats().misses == len(sampled) + 1

    def test_recently_used_survives(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model, maxsize=2)
        oracle.evaluate_edp(sampled[0], cnn_problem)
        oracle.evaluate_edp(sampled[1], cnn_problem)
        oracle.evaluate_edp(sampled[0], cnn_problem)  # refresh 0
        oracle.evaluate_edp(sampled[2], cnn_problem)  # evicts 1, not 0
        hits_before = oracle.stats().hits
        oracle.evaluate_edp(sampled[0], cnn_problem)
        assert oracle.stats().hits == hits_before + 1

    def test_invalid_maxsize_rejected(self, cost_model):
        with pytest.raises(ValueError):
            CachedOracle(cost_model, maxsize=0)

    def test_bound_holds_across_mixed_query_kinds(
        self, cost_model, cnn_problem, sampled
    ):
        """maxsize bounds *total* entries, not per query kind."""
        oracle = CachedOracle(cost_model, maxsize=4)
        for mapping in sampled[:4]:
            oracle.evaluate_edp(mapping, cnn_problem)
        for mapping in sampled[4:]:
            oracle.evaluate(mapping, cnn_problem)
        assert oracle.stats().size <= 4

    def test_evaluate_upgrades_edp_entry_without_growth(
        self, cost_model, cnn_problem, sampled
    ):
        oracle = CachedOracle(cost_model)
        mapping = sampled[0]
        oracle.evaluate_edp(mapping, cnn_problem)
        assert oracle.stats().size == 1
        stats = oracle.evaluate(mapping, cnn_problem)
        assert oracle.stats().size == 1  # upgraded in place, no duplicate
        assert oracle.evaluate_edp(mapping, cnn_problem) == stats.edp


class _CountingOracle:
    """Scalar-only inner oracle that counts every query it serves."""

    def __init__(self, model, problem_unused=None):
        self.model = model
        self.scalar_calls = 0

    def evaluate_edp(self, mapping, problem):
        self.scalar_calls += 1
        return self.model.evaluate_edp(mapping, problem)


class TestEvaluateMany:
    def test_values_match_scalar_path(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model)
        batched = oracle.evaluate_many(sampled, cnn_problem)
        expected = [cost_model.evaluate_edp(m, cnn_problem) for m in sampled]
        assert batched == pytest.approx(expected)

    def test_cold_batch_counts_only_misses(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model)
        oracle.evaluate_many(sampled, cnn_problem)
        stats = oracle.stats()
        assert stats.hits == 0
        assert stats.misses == len(sampled)

    def test_warm_batch_counts_only_hits(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model)
        oracle.evaluate_many(sampled, cnn_problem)
        oracle.evaluate_many(sampled, cnn_problem)
        stats = oracle.stats()
        assert stats.hits == len(sampled)
        assert stats.misses == len(sampled)

    def test_mixed_batch_partitions_exactly(self, cost_model, cnn_problem, cnn_space):
        """The regression the counters exist for: a batch of k hits + m
        misses counts k hits and m misses — no double counting."""
        mappings = cnn_space.sample_many(10, seed=11)
        seen, unseen = mappings[:4], mappings[4:]
        inner = _CountingOracle(cost_model)
        oracle = CachedOracle(inner)
        oracle.evaluate_many(seen, cnn_problem)
        inner.scalar_calls = 0
        oracle.evaluate_many(mappings, cnn_problem)
        stats = oracle.stats()
        assert stats.hits == len(seen)
        assert stats.misses == len(seen) + len(unseen)
        # Only the misses reached the inner oracle.
        assert inner.scalar_calls == len(unseen)

    def test_duplicate_miss_in_batch_priced_once(self, cost_model, cnn_problem, cnn_space):
        """An unseen mapping repeated in one batch is one miss + hits for
        the repeats, matching what a sequential loop would have counted."""
        mapping = cnn_space.sample_many(1, seed=5)[0]
        inner = _CountingOracle(cost_model)
        oracle = CachedOracle(inner)
        values = oracle.evaluate_many([mapping, mapping, mapping], cnn_problem)
        assert values[0] == values[1] == values[2]
        stats = oracle.stats()
        assert stats.misses == 1
        assert stats.hits == 2
        assert inner.scalar_calls == 1

    def test_misses_forwarded_in_one_inner_batch(self, cost_model, cnn_problem, sampled):
        """A batched inner oracle receives the misses as one call."""
        calls = []

        class BatchedInner:
            def evaluate_many(self, mappings, problem):
                calls.append(list(mappings))
                return cost_model.evaluate_many(mappings, problem)

            def evaluate_edp(self, mapping, problem):
                raise AssertionError("scalar path must not be used")

        oracle = CachedOracle(BatchedInner())
        oracle.evaluate_many(sampled[:3], cnn_problem)
        oracle.evaluate_many(sampled, cnn_problem)
        assert [len(c) for c in calls] == [3, len(sampled) - 3]

    def test_batch_respects_lru_bound(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model, maxsize=4)
        oracle.evaluate_many(sampled, cnn_problem)
        assert oracle.stats().size <= 4

    def test_empty_batch(self, cost_model, cnn_problem):
        oracle = CachedOracle(cost_model)
        assert oracle.evaluate_many([], cnn_problem) == []
        stats = oracle.stats()
        assert stats.hits == 0 and stats.misses == 0


class TestPrewarm:
    """The scheduler's counter-neutral bulk insert (repro.serve cohorts)."""

    def test_prewarm_inserts_without_counting_queries(
        self, cost_model, cnn_problem, sampled
    ):
        oracle = CachedOracle(cost_model)
        inserted = oracle.prewarm(sampled, cnn_problem)
        stats = oracle.stats()
        assert inserted == len(sampled)
        assert stats.hits == 0 and stats.misses == 0
        assert stats.prewarmed == len(sampled)
        assert stats.size == len(sampled)

    def test_prewarmed_entries_answer_as_hits(
        self, cost_model, cnn_problem, sampled
    ):
        oracle = CachedOracle(cost_model)
        oracle.prewarm(sampled, cnn_problem)
        values = oracle.evaluate_many(sampled, cnn_problem)
        expected = [cost_model.evaluate_edp(m, cnn_problem) for m in sampled]
        assert values == pytest.approx(expected)
        # Bit-exact vs the path an uncoalesced batch would have taken: both
        # route misses through the same vectorized kernels, whose rows are
        # independent of batch composition.
        assert values == CachedOracle(cost_model).evaluate_many(
            sampled, cnn_problem
        )
        stats = oracle.stats()
        assert stats.hits == len(sampled) and stats.misses == 0

    def test_prewarm_skips_cached_and_duplicate_entries(
        self, cost_model, cnn_problem, sampled
    ):
        oracle = CachedOracle(cost_model)
        oracle.evaluate_edp(sampled[0], cnn_problem)
        inserted = oracle.prewarm(
            [sampled[0], sampled[1], sampled[1]], cnn_problem
        )
        assert inserted == 1  # sampled[0] cached, sampled[1] deduplicated
        assert oracle.stats().prewarmed == 1

    def test_prewarm_empty_is_free(self, cost_model, cnn_problem):
        oracle = CachedOracle(cost_model)
        assert oracle.prewarm([], cnn_problem) == 0
        assert oracle.stats().size == 0


class TestMissListener:
    """The online-learning tap: every miss reported, values untouched."""

    @staticmethod
    def _tapped(oracle):
        seen = []
        oracle.set_miss_listener(
            lambda problem, mappings, edps, stats: seen.append(
                (problem, list(mappings), list(edps), stats)
            )
        )
        return seen

    def test_every_miss_path_reports(self, cost_model, cnn_problem, sampled):
        from repro.costmodel.batch import BatchCostStats
        from repro.costmodel.stats import CostStats

        oracle = CachedOracle(cost_model)
        seen = self._tapped(oracle)
        oracle.evaluate(sampled[0], cnn_problem)          # scalar stats miss
        oracle.evaluate_edp(sampled[1], cnn_problem)      # scalar EDP miss
        oracle.evaluate_many(sampled[2:5], cnn_problem)   # batch misses
        oracle.prewarm(sampled[5:8], cnn_problem)         # prewarm inserts
        reported = [m for _, mappings, _, _ in seen for m in mappings]
        assert reported == list(sampled[:8])
        # Labels: full stats on every path — the tapped evaluate_edp miss
        # upgrades itself to evaluate() (same value, same cost, full label).
        assert isinstance(seen[0][3][0], CostStats)
        assert isinstance(seen[1][3][0], CostStats)
        assert isinstance(seen[2][3], BatchCostStats)
        assert isinstance(seen[3][3], BatchCostStats)

    def test_tapped_evaluate_edp_matches_untapped_value(
        self, cost_model, cnn_problem, sampled
    ):
        """Attaching a listener must not change any served value: the
        stats-harvesting scalar path returns exactly evaluate(...).edp."""
        plain = CachedOracle(cost_model)
        tapped = CachedOracle(cost_model)
        self._tapped(tapped)
        for mapping in sampled[:4]:
            assert tapped.evaluate_edp(mapping, cnn_problem) == plain.evaluate_edp(
                mapping, cnn_problem
            )
        # And the full label is now cached: a follow-up stats query hits.
        before = tapped.stats()
        tapped.evaluate(sampled[0], cnn_problem)
        after = tapped.stats()
        assert after.hits == before.hits + 1 and after.misses == before.misses

    def test_hits_and_upgrades_are_not_reported(
        self, cost_model, cnn_problem, sampled
    ):
        oracle = CachedOracle(cost_model)
        oracle.evaluate_many(sampled, cnn_problem)
        seen = self._tapped(oracle)
        oracle.evaluate_many(sampled, cnn_problem)       # all hits
        # A stats query against a bare-EDP entry is an *upgrade* miss: it
        # re-prices a mapping the tap already saw, so it must stay silent
        # (reporting it would double-weight revisited winners).
        oracle.evaluate(sampled[0], cnn_problem)
        assert seen == []
        assert oracle.stats().misses == len(sampled) + 1

    def test_fresh_stats_miss_is_reported(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model)
        seen = self._tapped(oracle)
        oracle.evaluate(sampled[0], cnn_problem)
        assert [m for _, mappings, _, _ in seen for m in mappings] == [sampled[0]]

    def test_values_and_counters_unchanged_by_listener(
        self, cost_model, cnn_problem, sampled
    ):
        plain = CachedOracle(cost_model)
        tapped = CachedOracle(cost_model)
        self._tapped(tapped)
        assert tapped.evaluate_many(sampled, cnn_problem) == plain.evaluate_many(
            sampled, cnn_problem
        )
        assert tapped.stats() == plain.stats()

    def test_reported_edps_match_returned_values(
        self, cost_model, cnn_problem, sampled
    ):
        oracle = CachedOracle(cost_model)
        seen = self._tapped(oracle)
        values = oracle.evaluate_many(sampled, cnn_problem)
        reported = [edp for _, _, edps, _ in seen for edp in edps]
        assert reported == values

    def test_listener_exception_never_fails_a_query(
        self, cost_model, cnn_problem, sampled
    ):
        oracle = CachedOracle(cost_model)

        def broken(problem, mappings, edps, stats):
            raise RuntimeError("observer bug")

        oracle.set_miss_listener(broken)
        with pytest.warns(UserWarning, match="miss listener failed"):
            values = oracle.evaluate_many(sampled[:3], cnn_problem)
        assert values == pytest.approx(
            [cost_model.evaluate_edp(m, cnn_problem) for m in sampled[:3]]
        )
        assert oracle.stats().misses == 3

    def test_listener_clearable(self, cost_model, cnn_problem, sampled):
        oracle = CachedOracle(cost_model)
        seen = self._tapped(oracle)
        oracle.set_miss_listener(None)
        oracle.evaluate_many(sampled, cnn_problem)
        assert seen == []

    def test_scalar_only_inner_reports_floats(self, cost_model, cnn_problem, sampled):
        inner = _CountingOracle(cost_model)
        oracle = CachedOracle(inner)
        seen = self._tapped(oracle)
        oracle.evaluate_many(sampled[:4], cnn_problem)
        assert len(seen) == 1
        assert seen[0][3] is None  # no evaluate_batch on the inner: bare EDPs


class TestConcurrentHammer:
    """Satellite regression: the lock really covers store + counters under
    mixed multi-threaded traffic from scheduler workers."""

    def test_hammer_preserves_values_and_counter_invariants(
        self, cost_model, cnn_problem, cnn_space
    ):
        import threading

        population = cnn_space.sample_many(24, seed=11)
        truth = {
            mapping: cost_model.evaluate_edp(mapping, cnn_problem)
            for mapping in population
        }
        oracle = CachedOracle(cost_model, maxsize=16)
        queries = []  # one entry per metered query issued, across threads
        queries_lock = threading.Lock()
        errors = []

        def worker(seed: int) -> None:
            import math
            import random

            def close(a, b):
                return math.isclose(a, b, rel_tol=1e-9)

            rng = random.Random(seed)
            try:
                for step in range(60):
                    kind = rng.randrange(4)
                    if kind == 0:
                        mapping = rng.choice(population)
                        value = oracle.evaluate_edp(mapping, cnn_problem)
                        assert close(value, truth[mapping])
                        with queries_lock:
                            queries.append(1)
                    elif kind == 1:
                        mapping = rng.choice(population)
                        stats = oracle.evaluate(mapping, cnn_problem)
                        assert close(stats.edp, truth[mapping])
                        with queries_lock:
                            queries.append(1)
                    elif kind == 2:
                        batch = rng.sample(population, rng.randrange(1, 6))
                        values = oracle.evaluate_many(batch, cnn_problem)
                        assert all(
                            close(v, truth[m]) for v, m in zip(values, batch)
                        )
                        with queries_lock:
                            queries.append(len(batch))
                    else:
                        batch = rng.sample(population, rng.randrange(1, 6))
                        oracle.prewarm(batch, cnn_problem)  # never a query
            except BaseException as error:  # noqa: BLE001 — surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        stats = oracle.stats()
        # Every metered query is exactly one hit or one miss, races included.
        assert stats.hits + stats.misses == sum(queries)
        assert stats.size <= 16


class _CountingInner:
    """CostModel proxy that counts which inner pricing entry point ran."""

    def __init__(self, model, megabatch=True):
        self.model = model
        self.mega_calls = 0
        self.many_calls = 0
        self.batch_calls = 0
        if not megabatch:
            # Hide the megabatch path: CachedOracle probes with getattr.
            self.evaluate_megabatch = None

    def evaluate(self, mapping, problem):
        return self.model.evaluate(mapping, problem)

    def evaluate_edp(self, mapping, problem):
        return self.model.evaluate_edp(mapping, problem)

    def evaluate_many(self, mappings, problem):
        self.many_calls += 1
        return self.model.evaluate_many(mappings, problem)

    def evaluate_batch(self, mappings, problem):
        self.batch_calls += 1
        return self.model.evaluate_batch(mappings, problem)

    def evaluate_megabatch(self, mappings, problems):
        self.mega_calls += 1
        return self.model.evaluate_megabatch(mappings, problems)


class TestGroupedPaths:
    """Cross-problem unions: one inner kernel call for a whole round."""

    @pytest.fixture()
    def three_groups(self, cnn_problem, gemm_problem, mttkrp_problem, accelerator):
        from repro.mapspace import MapSpace

        problems = (cnn_problem, gemm_problem, mttkrp_problem)
        return [
            (p, MapSpace(p, accelerator).sample_many(4, seed=13 + i))
            for i, p in enumerate(problems)
        ]

    def test_prewarm_grouped_single_inner_call(self, cost_model, three_groups):
        inner = _CountingInner(cost_model)
        oracle = CachedOracle(inner)
        inserted = oracle.prewarm_grouped(three_groups)
        assert inserted == sum(len(ms) for _, ms in three_groups)
        # The whole three-problem round took exactly ONE inner kernel call.
        assert inner.mega_calls == 1
        assert inner.many_calls == 0 and inner.batch_calls == 0
        stats = oracle.stats()
        assert stats.prewarmed == inserted
        assert stats.hits == 0 and stats.misses == 0
        # Prewarmed values answer metered queries as hits, bit-identical.
        for problem, mappings in three_groups:
            values = oracle.evaluate_many(mappings, problem)
            expected = cost_model.evaluate_many(mappings, problem)
            assert values == expected
        assert inner.mega_calls == 1  # nothing re-priced
        assert oracle.stats().hits == inserted

    def test_prewarm_grouped_merges_repeated_problems(
        self, cost_model, cnn_problem, cnn_space
    ):
        inner = _CountingInner(cost_model)
        oracle = CachedOracle(inner)
        sampled = cnn_space.sample_many(6, seed=21)
        inserted = oracle.prewarm_grouped(
            [(cnn_problem, sampled[:3]), (cnn_problem, sampled[3:] + sampled[:1])]
        )
        assert inserted == 6  # the repeated mapping inserts once
        # One merged group -> the single-group fallback, still one call.
        assert inner.mega_calls + inner.many_calls + inner.batch_calls == 1

    def test_evaluate_many_grouped_values_and_counters(
        self, cost_model, three_groups
    ):
        inner = _CountingInner(cost_model)
        oracle = CachedOracle(inner)
        # Warm part of the first group so the union mixes hits and misses.
        warm_problem, warm_mappings = three_groups[0]
        oracle.prewarm(warm_mappings[:2], warm_problem)
        inner.mega_calls = inner.many_calls = inner.batch_calls = 0

        lanes = [
            (mapping, problem)
            for problem, mappings in three_groups
            for mapping in mappings
        ]
        lanes.append(lanes[0])  # in-batch duplicate -> hit
        mappings = [m for m, _ in lanes]
        problems = [p for _, p in lanes]
        values = oracle.evaluate_many_grouped(mappings, problems)
        expected = [
            cost_model.evaluate_edp(m, p) for m, p in zip(mappings, problems)
        ]
        assert values == pytest.approx(expected, rel=1e-12)
        # All three problems' misses went through one megabatch call.
        assert inner.mega_calls == 1
        assert inner.many_calls == 0 and inner.batch_calls == 0
        stats = oracle.stats()
        assert stats.hits == 3  # two prewarmed + one in-batch duplicate
        assert stats.misses == len(lanes) - 3

    def test_evaluate_many_grouped_misaligned_raises(self, cost_model, cnn_space):
        oracle = CachedOracle(cost_model)
        with pytest.raises(ValueError, match="misaligned"):
            oracle.evaluate_many_grouped(cnn_space.sample_many(2, seed=1), [])

    def test_grouped_fallback_without_megabatch_backend(
        self, cost_model, three_groups
    ):
        inner = _CountingInner(cost_model, megabatch=False)
        oracle = CachedOracle(inner)
        inserted = oracle.prewarm_grouped(three_groups)
        assert inserted == sum(len(ms) for _, ms in three_groups)
        assert inner.many_calls == len(three_groups)  # per-group loop
        for problem, mappings in three_groups:
            assert oracle.evaluate_many(mappings, problem) == cost_model.evaluate_many(
                mappings, problem
            )

    def test_grouped_listener_gets_per_problem_slices(
        self, cost_model, three_groups
    ):
        from repro.costmodel import BatchCostStats

        inner = _CountingInner(cost_model)
        oracle = CachedOracle(inner)
        taps = []
        oracle.set_miss_listener(
            lambda problem, mappings, edps, stats: taps.append(
                (problem, list(mappings), list(edps), stats)
            )
        )
        oracle.prewarm_grouped(three_groups)
        assert inner.mega_calls == 1
        assert [tap[0].name for tap in taps] == [
            p.name for p, _ in three_groups
        ]
        for (problem, mappings), (_, tap_mappings, edps, stats) in zip(
            three_groups, taps
        ):
            assert tap_mappings == list(mappings)
            assert isinstance(stats, BatchCostStats)
            assert stats.problem_name == problem.name
            assert len(stats) == len(mappings)
            reference = cost_model.evaluate_batch(mappings, problem)
            assert list(stats.edp) == list(reference.edp)
            assert edps == list(stats.edp)
