"""Tests for the mapping <-> vector codec."""

import numpy as np
import pytest

from repro.core import MappingEncoder
from repro.mapspace import MapSpace
from repro.workloads import problem_by_name


class TestLengths:
    def test_cnn_layer_is_62(self, cnn_problem):
        # 7 dims * 8 + 3 tensors * 2 = 62, matching the paper exactly.
        assert MappingEncoder.for_problem(cnn_problem).length == 62

    def test_mttkrp_is_40(self, mttkrp_problem):
        # 4 dims * 8 + 4 tensors * 2 = 40, matching the paper exactly.
        assert MappingEncoder.for_problem(mttkrp_problem).length == 40

    def test_layout_slices_partition_vector(self, cnn_problem):
        layout = MappingEncoder.for_problem(cnn_problem).layout
        covered = set()
        for s in (layout.pid_slice, layout.tile_slice, layout.order_slice, layout.alloc_slice):
            indices = set(range(s.start, s.stop))
            assert not (covered & indices)
            covered |= indices
        assert covered == set(range(layout.length))

    def test_mapping_slice_excludes_pid(self, cnn_problem):
        layout = MappingEncoder.for_problem(cnn_problem).layout
        assert layout.mapping_slice.start == layout.pid_slice.stop
        assert layout.mapping_slice.stop == layout.length


class TestEncode:
    def test_shape_and_finite(self, cnn_space, cnn_problem):
        encoder = MappingEncoder.for_problem(cnn_problem)
        vector = encoder.encode(cnn_space.sample(0), cnn_problem)
        assert vector.shape == (62,)
        assert np.isfinite(vector).all()

    def test_pid_section_is_log_bounds(self, cnn_space, cnn_problem):
        encoder = MappingEncoder.for_problem(cnn_problem)
        vector = encoder.encode(cnn_space.sample(0), cnn_problem)
        expected = [np.log2(cnn_problem.bounds[d]) for d in encoder.dims]
        np.testing.assert_allclose(vector[encoder.layout.pid_slice], expected)

    def test_tile_section_is_log_factors(self, cnn_space, cnn_problem):
        encoder = MappingEncoder.for_problem(cnn_problem)
        mapping = cnn_space.sample(3)
        vector = encoder.encode(mapping, cnn_problem)
        tiles = vector[encoder.layout.tile_slice]
        for index, dim in enumerate(encoder.dims):
            np.testing.assert_allclose(
                np.exp2(tiles[4 * index : 4 * index + 4]), mapping.factors(dim)
            )

    def test_alloc_section_fractions_sum_to_one(self, cnn_space, cnn_problem):
        encoder = MappingEncoder.for_problem(cnn_problem)
        vector = encoder.encode(cnn_space.sample(1), cnn_problem)
        fractions = vector[encoder.layout.alloc_slice]
        n = len(encoder.tensors)
        assert fractions[:n].sum() == pytest.approx(1.0)
        assert fractions[n:].sum() == pytest.approx(1.0)

    def test_wrong_dims_raise(self, cnn_space, mttkrp_problem):
        encoder = MappingEncoder.for_problem(mttkrp_problem)
        with pytest.raises(ValueError):
            encoder.encode(cnn_space.sample(0), mttkrp_problem)


class TestDecodeRoundtrip:
    @pytest.mark.parametrize("seed", range(10))
    def test_encode_decode_identity(self, cnn_space, cnn_problem, seed):
        """Decoding an encoded valid mapping must reproduce it exactly."""
        encoder = MappingEncoder.for_problem(cnn_problem)
        mapping = cnn_space.sample(seed)
        vector = encoder.encode(mapping, cnn_problem)
        decoded = encoder.decode(vector, cnn_space)
        assert decoded == mapping

    def test_decode_arbitrary_vector_is_valid(self, cnn_space, cnn_problem):
        """Any real vector must decode to a *valid* mapping (projection)."""
        encoder = MappingEncoder.for_problem(cnn_problem)
        rng = np.random.default_rng(0)
        for _ in range(10):
            vector = rng.normal(0, 3, size=encoder.length)
            decoded = encoder.decode(vector, cnn_space)
            assert cnn_space.is_member(decoded)

    def test_decode_perturbed_vector_stays_close(self, cnn_space, cnn_problem):
        """Small perturbations should not change the decoded mapping."""
        encoder = MappingEncoder.for_problem(cnn_problem)
        mapping = cnn_space.sample(4)
        vector = encoder.encode(mapping, cnn_problem)
        decoded = encoder.decode(vector + 1e-6, cnn_space)
        assert decoded == mapping

    def test_wrong_length_raises(self, cnn_space, cnn_problem):
        encoder = MappingEncoder.for_problem(cnn_problem)
        with pytest.raises(ValueError):
            encoder.decode(np.zeros(10), cnn_space)

    def test_mttkrp_roundtrip(self, mttkrp_problem, accelerator):
        space = MapSpace(mttkrp_problem, accelerator)
        encoder = MappingEncoder.for_problem(mttkrp_problem)
        for seed in range(5):
            mapping = space.sample(seed)
            assert encoder.decode(encoder.encode(mapping, mttkrp_problem), space) == mapping


class TestGeneralization:
    def test_one_encoder_serves_all_cnn_problems(self, accelerator):
        """The same encoder must handle every problem of the algorithm."""
        encoder = MappingEncoder.for_problem(problem_by_name("ResNet_Conv3"))
        for name in ("ResNet_Conv4", "VGG_Conv2", "AlexNet_Conv2"):
            problem = problem_by_name(name)
            space = MapSpace(problem, accelerator)
            mapping = space.sample(0)
            vector = encoder.encode(mapping, problem)
            assert encoder.decode(vector, space) == mapping

    def test_pid_distinguishes_problems(self):
        encoder = MappingEncoder.for_problem(problem_by_name("ResNet_Conv3"))
        a = encoder.pid_vector(problem_by_name("ResNet_Conv3"))
        b = encoder.pid_vector(problem_by_name("ResNet_Conv4"))
        assert (a != b).any()


class TestEncodeBatch:
    def test_rows_equal_scalar_encoding(self, cnn_space, cnn_problem):
        """Round trip: row i of the batch == scalar encoding of mapping i."""
        encoder = MappingEncoder.for_problem(cnn_problem)
        mappings = cnn_space.sample_many(16, seed=7)
        batch = encoder.encode_batch(mappings, cnn_problem)
        assert batch.shape == (16, encoder.length)
        for row, mapping in enumerate(mappings):
            np.testing.assert_array_equal(
                batch[row], encoder.encode(mapping, cnn_problem)
            )

    def test_module_level_function_matches_method(self, cnn_space, cnn_problem):
        from repro.core.encoding import encode_batch

        encoder = MappingEncoder.for_problem(cnn_problem)
        mappings = cnn_space.sample_many(4, seed=1)
        np.testing.assert_array_equal(
            encode_batch(encoder, mappings, cnn_problem),
            encoder.encode_batch(mappings, cnn_problem),
        )

    def test_batch_decodes_back_to_same_mappings(self, cnn_space, cnn_problem):
        """Each encoded row decodes to the mapping it came from (the scalar
        codec's round-trip property, preserved row-wise)."""
        encoder = MappingEncoder.for_problem(cnn_problem)
        mappings = cnn_space.sample_many(6, seed=9)
        batch = encoder.encode_batch(mappings, cnn_problem)
        for row, mapping in enumerate(mappings):
            assert encoder.decode(batch[row], cnn_space) == mapping

    def test_empty_batch_shape(self, cnn_problem):
        encoder = MappingEncoder.for_problem(cnn_problem)
        batch = encoder.encode_batch([], cnn_problem)
        assert batch.shape == (0, encoder.length)

    def test_mismatched_mapping_rejected(self, cnn_space, cnn_problem, mttkrp_problem):
        mttkrp_encoder = MappingEncoder.for_problem(mttkrp_problem)
        mapping = cnn_space.sample_many(1, seed=0)
        with pytest.raises(ValueError):
            mttkrp_encoder.encode_batch(mapping, mttkrp_problem)
