"""Tests for the accelerator architecture spec."""

import pytest

from repro.costmodel import Accelerator, EnergyTable, default_accelerator
from repro.costmodel.accelerator import small_accelerator


class TestEnergyTable:
    def test_level_lookup(self):
        table = EnergyTable()
        assert table.access("DRAM") == table.dram_access
        assert table.access("L2") == table.l2_access
        assert table.access("L1") == table.l1_access

    def test_unknown_level_raises(self):
        with pytest.raises(KeyError):
            EnergyTable().access("L9")

    def test_dram_dominates(self):
        table = EnergyTable()
        assert table.dram_access > table.l2_access > table.l1_access


class TestAccelerator:
    def test_paper_configuration(self):
        acc = default_accelerator()
        assert acc.num_pes == 256
        assert acc.l2_bytes == 512 * 1024
        assert acc.l1_bytes == 64 * 1024

    def test_capacity_words(self):
        acc = default_accelerator()
        assert acc.capacity_words("L2") == acc.l2_bytes // acc.word_bytes
        assert acc.capacity_words("L1") == acc.l1_bytes // acc.word_bytes

    def test_dram_has_no_capacity(self):
        with pytest.raises(KeyError):
            default_accelerator().capacity_words("DRAM")

    def test_bank_words(self):
        acc = default_accelerator()
        assert acc.bank_words("L2") * acc.banks("L2") == acc.capacity_words("L2")
        assert acc.bank_words("L1") * acc.banks("L1") == acc.capacity_words("L1")

    def test_bandwidth_lookup(self):
        acc = default_accelerator()
        assert acc.bandwidth("DRAM") == acc.dram_words_per_cycle
        with pytest.raises(KeyError):
            acc.bandwidth("cache")

    def test_cycles_to_seconds(self):
        acc = default_accelerator()
        assert acc.cycles_to_seconds(1e9) == pytest.approx(1.0)

    def test_small_accelerator_is_smaller(self):
        small = small_accelerator()
        big = default_accelerator()
        assert small.num_pes < big.num_pes
        assert small.l2_bytes < big.l2_bytes

    def test_invalid_configs_raise(self):
        with pytest.raises(ValueError):
            Accelerator(num_pes=0)
        with pytest.raises(ValueError):
            Accelerator(l1_bytes=1000, l1_banks=3)  # not divisible
        with pytest.raises(ValueError):
            Accelerator(word_bytes=0)
