"""End-to-end tests for the MindMappings pipeline."""

import pytest

from repro.core import MindMappings, MindMappingsConfig, Surrogate, TrainingConfig
from repro.costmodel import algorithmic_minimum
from repro.costmodel.accelerator import small_accelerator
from repro.workloads import make_cnn_layer


class TestTrainAndSearch:
    def test_history_recorded(self, trained_mm):
        assert trained_mm.history is not None
        assert trained_mm.history.epochs == len(trained_mm.history.train_loss) > 0

    def test_find_mapping_returns_valid_stats(self, trained_mm, cnn_problem):
        mapping, stats = trained_mm.find_mapping(cnn_problem, iterations=60, seed=0)
        assert stats.problem_name == cnn_problem.name
        assert stats.edp > 0
        bound = algorithmic_minimum(cnn_problem, trained_mm.accelerator)
        assert stats.edp >= bound.edp

    def test_generalizes_to_unseen_problem(self, trained_mm):
        """The surrogate was trained on train_a..train_d; search an unseen
        shape of the same algorithm (the paper's headline generalization)."""
        unseen = make_cnn_layer("unseen", n=2, k=96, c=48, h=14, w=14, r=3, s=3)
        mapping, stats = trained_mm.find_mapping(unseen, iterations=80, seed=1)
        bound = algorithmic_minimum(unseen, trained_mm.accelerator)
        # must be valid and within two orders of magnitude of the bound
        assert 1.0 <= stats.edp / bound.edp < 100.0

    def test_wrong_algorithm_rejected(self, trained_mm, mttkrp_problem):
        with pytest.raises(ValueError):
            trained_mm.searcher(mttkrp_problem)

    def test_searcher_kwargs_forwarded(self, trained_mm, cnn_problem):
        searcher = trained_mm.searcher(cnn_problem, learning_rate=0.5, inject_every=7)
        assert searcher.learning_rate == 0.5
        assert searcher.inject_every == 7


class TestPersistence:
    def test_save_load_search_equivalence(self, trained_mm, cnn_problem, tmp_path):
        path = tmp_path / "mm.npz"
        trained_mm.save(path)
        restored = MindMappings.load(path, trained_mm.accelerator)
        a = trained_mm.find_mapping(cnn_problem, iterations=30, seed=5)
        b = restored.find_mapping(cnn_problem, iterations=30, seed=5)
        assert a[0] == b[0]

    def test_save_records_accelerator_fingerprint(self, trained_mm, tmp_path):
        path = tmp_path / "mm.npz"
        trained_mm.save(path)
        metadata = Surrogate.read_metadata(path)
        assert metadata["accel_fingerprint"] == trained_mm.accelerator.fingerprint()

    def test_load_rejects_mismatched_accelerator(self, trained_mm, tmp_path):
        """A surrogate must not silently pair with different hardware."""
        path = tmp_path / "mm.npz"
        trained_mm.save(path)
        other = small_accelerator()
        assert other.fingerprint() != trained_mm.accelerator.fingerprint()
        with pytest.raises(ValueError, match="fingerprint"):
            MindMappings.load(path, other)

    def test_load_accepts_legacy_artifact_without_fingerprint(
        self, trained_mm, cnn_problem, tmp_path
    ):
        """Files saved before fingerprints existed still load."""
        path = tmp_path / "legacy.npz"
        trained_mm.surrogate.save(path)  # raw save: no metadata
        restored = MindMappings.load(path, trained_mm.accelerator)
        mapping, stats = restored.find_mapping(cnn_problem, iterations=10, seed=0)
        assert stats.edp > 0


class TestConfig:
    def test_from_dataset(self, cnn_dataset, accelerator):
        mm = MindMappings.from_dataset(
            cnn_dataset,
            accelerator,
            TrainingConfig(hidden_layers=(16,), epochs=2),
            seed=0,
        )
        assert mm.surrogate.algorithm == "cnn-layer"

    def test_train_with_explicit_problems(self, accelerator, cnn_training_problems):
        config = MindMappingsConfig(
            dataset_samples=300,
            training=TrainingConfig(hidden_layers=(16,), epochs=2),
        )
        mm = MindMappings.train(
            "cnn-layer", accelerator, config, problems=cnn_training_problems, seed=1
        )
        assert mm.history.epochs == 2
