"""Tests for the Mapping value type."""

import pytest

from repro.mapspace.mapping import Mapping


def _make_mapping():
    return Mapping(
        dims=("X", "R"),
        tile_factors=((2, 7, 2, 1), (1, 1, 1, 5)),
        loop_orders=(("X", "R"), ("R", "X"), ("X", "R")),
        tensors=("Input", "Filter", "Output"),
        allocation=((4, 2, 2), (2, 1, 1)),
    )


class TestConstruction:
    def test_valid(self):
        mapping = _make_mapping()
        assert mapping.dim_bound("X") == 28
        assert mapping.dim_bound("R") == 5

    def test_misaligned_factors_raise(self):
        with pytest.raises(ValueError):
            Mapping(
                dims=("X", "R"),
                tile_factors=((2, 7, 2, 1),),
                loop_orders=(("X", "R"),) * 3,
                tensors=("T",),
                allocation=((1,), (1,)),
            )

    def test_nonpositive_factor_raises(self):
        with pytest.raises(ValueError):
            Mapping(
                dims=("X",),
                tile_factors=((0, 1, 1, 1),),
                loop_orders=(("X",),) * 3,
                tensors=("T",),
                allocation=((1,), (1,)),
            )

    def test_bad_permutation_raises(self):
        with pytest.raises(ValueError):
            Mapping(
                dims=("X", "R"),
                tile_factors=((1, 1, 1, 28), (1, 1, 1, 5)),
                loop_orders=(("X", "X"), ("R", "X"), ("X", "R")),
                tensors=("T",),
                allocation=((1,), (1,)),
            )

    def test_zero_bank_allocation_raises(self):
        with pytest.raises(ValueError):
            Mapping(
                dims=("X",),
                tile_factors=((1, 1, 1, 28),),
                loop_orders=(("X",),) * 3,
                tensors=("A", "B"),
                allocation=((1, 0), (1, 1)),
            )


class TestAccessors:
    def test_factors_by_dim(self):
        assert _make_mapping().factors("R") == (1, 1, 1, 5)

    def test_factor_by_slot(self):
        mapping = _make_mapping()
        assert mapping.factor("X", "DRAM") == 2
        assert mapping.factor("X", "L2") == 7
        assert mapping.factor("X", "spatial") == 2
        assert mapping.factor("X", "L1") == 1

    def test_unknown_dim_raises(self):
        with pytest.raises(KeyError):
            _make_mapping().factors("Z")

    def test_spatial(self):
        mapping = _make_mapping()
        assert mapping.spatial_factors == {"X": 2, "R": 1}
        assert mapping.spatial_size == 2

    def test_tile_extents(self):
        mapping = _make_mapping()
        assert mapping.tile_extents("L1") == {"X": 1, "R": 5}
        assert mapping.tile_extents("L2") == {"X": 14, "R": 5}
        assert mapping.tile_extents("DRAM") == {"X": 28, "R": 5}

    def test_level_factors(self):
        mapping = _make_mapping()
        assert mapping.level_factors("DRAM") == {"X": 2, "R": 1}
        assert mapping.level_factors("L2") == {"X": 7, "R": 1}
        assert mapping.level_factors("L1") == {"X": 1, "R": 5}

    def test_loop_order(self):
        assert _make_mapping().loop_order("L2") == ("R", "X")
        with pytest.raises(KeyError):
            _make_mapping().loop_order("L3")

    def test_alloc(self):
        mapping = _make_mapping()
        assert mapping.alloc_banks("L2") == {"Input": 4, "Filter": 2, "Output": 2}
        assert mapping.alloc_fraction("L2", "Input") == pytest.approx(0.5)


class TestFunctionalUpdates:
    def test_with_tile_factors(self):
        updated = _make_mapping().with_tile_factors("X", (28, 1, 1, 1))
        assert updated.factors("X") == (28, 1, 1, 1)
        assert _make_mapping().factors("X") == (2, 7, 2, 1)  # original untouched

    def test_with_loop_order(self):
        updated = _make_mapping().with_loop_order("DRAM", ("R", "X"))
        assert updated.loop_order("DRAM") == ("R", "X")

    def test_with_allocation(self):
        updated = _make_mapping().with_allocation("L1", (1, 2, 1))
        assert updated.alloc_banks("L1") == {"Input": 1, "Filter": 2, "Output": 1}

    def test_hashable_and_equal(self):
        assert _make_mapping() == _make_mapping()
        assert hash(_make_mapping()) == hash(_make_mapping())
        assert len({_make_mapping(), _make_mapping()}) == 1

    def test_describe_contains_sections(self):
        text = _make_mapping().describe()
        assert "tiling" in text
        assert "loop order" in text
        assert "banks" in text


class TestSerialization:
    def test_dict_roundtrip(self):
        mapping = _make_mapping()
        restored = Mapping.from_dict(mapping.to_dict())
        assert restored == mapping
        assert hash(restored) == hash(mapping)

    def test_to_dict_is_json_compatible(self):
        import json

        payload = json.loads(json.dumps(_make_mapping().to_dict()))
        assert Mapping.from_dict(payload) == _make_mapping()

    def test_from_dict_validates(self):
        payload = _make_mapping().to_dict()
        payload["tile_factors"] = payload["tile_factors"][:1]  # misaligned
        with pytest.raises(ValueError):
            Mapping.from_dict(payload)
