"""Tests for MapSpace: sampling, validity, projection, moves, enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapspace import MapSpace
from repro.mapspace.mapping import ALLOC_LEVELS, Mapping
from repro.utils import prod


class TestSampleValidity:
    def test_samples_are_members(self, cnn_space):
        for seed in range(20):
            assert cnn_space.is_member(cnn_space.sample(seed))

    def test_sample_many_deterministic(self, cnn_space):
        a = cnn_space.sample_many(5, seed=3)
        b = cnn_space.sample_many(5, seed=3)
        assert a == b

    def test_sample_diversity(self, cnn_space):
        samples = cnn_space.sample_many(30, seed=0)
        assert len(set(samples)) > 25

    def test_tiny_space_sampling(self, conv1d_space):
        for seed in range(10):
            assert conv1d_space.is_member(conv1d_space.sample(seed))

    def test_mttkrp_sampling(self, mttkrp_problem, accelerator):
        space = MapSpace(mttkrp_problem, accelerator)
        for seed in range(10):
            assert space.is_member(space.sample(seed))

    def test_sample_always_valid_property(self, cnn_space):
        # property-style sweep without hypothesis (fixtures + @given clash)
        for seed in np.random.default_rng(0).integers(0, 100_000, size=25):
            assert cnn_space.is_member(cnn_space.sample(int(seed)))


class TestValidityChecks:
    def test_factor_product_mismatch_detected(self, cnn_space):
        mapping = cnn_space.sample(0)
        broken = mapping.with_tile_factors("K", (1, 1, 1, 1))
        errors = cnn_space.validity_errors(broken)
        assert any("multiply to" in e for e in errors)

    def test_spatial_overflow_detected(self, cnn_space):
        mapping = cnn_space.sample(0)
        k = cnn_space.problem.bounds["K"]
        c = cnn_space.problem.bounds["C"]
        broken = mapping.with_tile_factors("K", (1, 1, k, 1)).with_tile_factors(
            "C", (1, 1, c, 1)
        )
        assert any("exceeds" in e and "PEs" in e for e in cnn_space.validity_errors(broken))

    def test_capacity_overflow_detected(self, cnn_space):
        mapping = cnn_space.sample(0)
        bounds = cnn_space.problem.bounds
        # All iteration at L1: guaranteed to blow the private buffer.
        broken = mapping
        for dim in cnn_space.dims:
            broken = broken.with_tile_factors(dim, (1, 1, 1, bounds[dim]))
        assert any("exceeds its" in e for e in cnn_space.validity_errors(broken))

    def test_valid_mapping_has_no_errors(self, cnn_space):
        assert cnn_space.validity_errors(cnn_space.sample(1)) == []


class TestProjection:
    def test_project_fixes_bounds(self, cnn_space):
        mapping = cnn_space.sample(0)
        broken = mapping.with_tile_factors("K", (1, 1, 1, 1))
        repaired = cnn_space.project(broken)
        assert cnn_space.is_member(repaired)

    def test_project_fixes_capacity(self, cnn_space):
        bounds = cnn_space.problem.bounds
        mapping = cnn_space.sample(0)
        for dim in cnn_space.dims:
            mapping = mapping.with_tile_factors(dim, (1, 1, 1, bounds[dim]))
        repaired = cnn_space.project(mapping)
        assert cnn_space.is_member(repaired)

    def test_project_valid_is_idempotent(self, cnn_space):
        mapping = cnn_space.sample(5)
        assert cnn_space.project(mapping) == mapping

    def test_project_preserves_loop_orders(self, cnn_space):
        mapping = cnn_space.sample(0)
        broken = mapping.with_tile_factors("K", (1, 1, 1, 1))
        repaired = cnn_space.project(broken)
        assert repaired.loop_orders == mapping.loop_orders

    def test_project_caps_spatial(self, cnn_space):
        mapping = cnn_space.sample(0)
        k = cnn_space.problem.bounds["K"]
        c = cnn_space.problem.bounds["C"]
        broken = mapping.with_tile_factors("K", (1, 1, k, 1)).with_tile_factors(
            "C", (1, 1, c, 1)
        )
        repaired = cnn_space.project(broken)
        assert repaired.spatial_size <= cnn_space.accelerator.num_pes
        assert cnn_space.is_member(repaired)


class TestNeighbors:
    @pytest.mark.parametrize("kind", ["tile", "spatial", "order", "alloc"])
    def test_neighbor_valid(self, cnn_space, kind):
        mapping = cnn_space.sample(2)
        rng = np.random.default_rng(0)
        for _ in range(10):
            neighbor = cnn_space.random_neighbor(mapping, rng, kind=kind)
            assert cnn_space.is_member(neighbor)
            mapping = neighbor

    def test_neighbor_usually_differs(self, cnn_space):
        mapping = cnn_space.sample(2)
        rng = np.random.default_rng(0)
        changed = sum(
            cnn_space.random_neighbor(mapping, rng) != mapping for _ in range(20)
        )
        assert changed >= 10

    def test_unknown_kind_raises(self, cnn_space):
        with pytest.raises(ValueError):
            cnn_space.random_neighbor(cnn_space.sample(0), 0, kind="teleport")


class TestAttributeGroups:
    def test_group_list(self, cnn_space):
        groups = cnn_space.attribute_groups()
        assert "tile:K" in groups
        assert "order:DRAM" in groups
        assert "alloc:L1" in groups

    def test_get_set_roundtrip(self, cnn_space):
        a = cnn_space.sample(0)
        b = cnn_space.sample(1)
        for group in cnn_space.attribute_groups():
            moved = cnn_space.set_group(a, group, cnn_space.get_group(b, group))
            assert cnn_space.is_member(moved)

    def test_unknown_group_raises(self, cnn_space):
        with pytest.raises(KeyError):
            cnn_space.get_group(cnn_space.sample(0), "banana:X")


class TestSizeAndEnumeration:
    def test_size_is_large_for_cnn(self, cnn_space):
        assert cnn_space.size() > 1e15

    def test_resnet_size_matches_paper_scale(self, accelerator):
        from repro.workloads import problem_by_name

        space = MapSpace(problem_by_name("ResNet_Conv4"), accelerator)
        # Paper reports ~1e25 valid mappings for this layer.
        assert 1e22 < space.size() < 1e30

    def test_enumeration_tiny(self, conv1d_space):
        mappings = list(
            conv1d_space.enumerate_mappings(include_orders=False, limit=100_000)
        )
        assert mappings
        assert all(conv1d_space.is_member(m) for m in mappings)
        assert len(set(mappings)) == len(mappings)

    def test_enumeration_limit_enforced(self, cnn_space):
        with pytest.raises(ValueError):
            list(cnn_space.enumerate_mappings(limit=1000))

    def test_enumeration_covers_all_tilings(self, conv1d_space):
        mappings = list(
            conv1d_space.enumerate_mappings(include_orders=False, limit=100_000)
        )
        bounds = conv1d_space.problem.bounds
        tilings = {m.tile_factors for m in mappings}
        # every enumerated tiling factorizes the bounds exactly
        for tiling in tilings:
            for dim, factors in zip(conv1d_space.dims, tiling):
                assert prod(factors) == bounds[dim]
