"""Consistent-hash ring + problem fingerprints: the cluster's routing math."""

import pytest

from repro.cluster.hashing import HashRing, problem_fingerprint, stable_digest
from repro.workloads import make_conv1d, problem_by_name


class TestStableDigest:
    def test_deterministic_across_calls(self):
        assert stable_digest("abc") == stable_digest("abc")

    def test_distinct_inputs_distinct_digests(self):
        values = {stable_digest(f"key-{i}") for i in range(1000)}
        assert len(values) == 1000

    def test_no_process_seed(self):
        # SHA-256, not hash(): the value is a protocol constant, the same
        # in every process — router and tests must agree on ownership.
        assert stable_digest("repro") == 0x681D1638F10411FB
        assert 0 <= stable_digest("repro") < 2**64


class TestProblemFingerprint:
    def test_same_problem_same_fingerprint(self):
        a = make_conv1d("fp_test", w=32, r=5)
        b = make_conv1d("fp_test", w=32, r=5)
        assert problem_fingerprint(a) == problem_fingerprint(b)

    def test_distinct_problems_distinct_fingerprints(self):
        fingerprints = {
            problem_fingerprint(make_conv1d(f"fp_{w}", w=w, r=5))
            for w in (8, 16, 24, 32, 48)
        }
        assert len(fingerprints) == 5

    def test_zoo_problems_all_distinct(self):
        names = ("ResNet_Conv4", "AlexNet_Conv2", "BERT_QKV", "BERT_FFN1")
        fingerprints = {
            problem_fingerprint(problem_by_name(name)) for name in names
        }
        assert len(fingerprints) == len(names)


class TestHashRing:
    def _keys(self, count=500):
        return [f"problem-{i:04d}" for i in range(count)]

    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.node_for("anything")
        assert ring.chain_for("anything") == []

    def test_assignment_stable_across_instances(self):
        # Two independently built rings (different insertion order) must
        # agree on every key: ownership is a pure function of membership.
        a = HashRing()
        b = HashRing()
        for node in (0, 1, 2, 3):
            a.add(node)
        for node in (3, 1, 0, 2):
            b.add(node)
        for key in self._keys():
            assert a.node_for(key) == b.node_for(key)

    def test_add_idempotent(self):
        ring = HashRing()
        ring.add(0)
        ring.add(1)
        before = {key: ring.node_for(key) for key in self._keys()}
        ring.add(0)
        assert len(ring) == 2
        assert {key: ring.node_for(key) for key in self._keys()} == before

    def test_all_nodes_own_keyspace(self):
        ring = HashRing()
        for node in range(4):
            ring.add(node)
        owners = {ring.node_for(key) for key in self._keys()}
        assert owners == {0, 1, 2, 3}

    def test_removal_only_remaps_removed_nodes_keys(self):
        # The consistent-hash contract: keys owned by surviving nodes
        # never move when another node leaves.
        ring = HashRing()
        for node in range(4):
            ring.add(node)
        before = {key: ring.node_for(key) for key in self._keys()}
        ring.remove(2)
        for key, owner in before.items():
            if owner != 2:
                assert ring.node_for(key) == owner
            else:
                assert ring.node_for(key) != 2

    def test_addition_moves_bounded_share(self):
        # Adding one node to N should claim roughly 1/(N+1) of the keys —
        # assert a loose upper bound, not the exact fraction.
        ring = HashRing()
        for node in range(4):
            ring.add(node)
        before = {key: ring.node_for(key) for key in self._keys(2000)}
        ring.add(4)
        moved = sum(
            1 for key, owner in before.items() if ring.node_for(key) != owner
        )
        assert moved / len(before) < 0.45  # ~0.20 expected; 2x+ headroom

    def test_chain_head_is_owner(self):
        ring = HashRing()
        for node in range(4):
            ring.add(node)
        for key in self._keys(100):
            chain = ring.chain_for(key)
            assert chain[0] == ring.node_for(key)
            assert sorted(chain) == [0, 1, 2, 3]  # all nodes, no repeats

    def test_chain_deterministic(self):
        a = HashRing()
        b = HashRing()
        for node in range(3):
            a.add(node)
            b.add(node)
        for key in self._keys(100):
            assert a.chain_for(key) == b.chain_for(key)

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
