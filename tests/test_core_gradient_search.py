"""Tests for Phase 2 projected gradient descent."""

import numpy as np
import pytest

from repro.core import GradientSearcher
from repro.mapspace import MapSpace


class TestGradientSearcher:
    def test_runs_and_respects_budget(self, trained_mm, cnn_space):
        searcher = GradientSearcher(cnn_space, trained_mm.surrogate)
        result = searcher.search(50, seed=0)
        assert result.n_evaluations == 50
        assert result.searcher == "MM"

    def test_all_visited_mappings_valid(self, trained_mm, cnn_space):
        searcher = GradientSearcher(cnn_space, trained_mm.surrogate)
        result = searcher.search(60, seed=1)
        assert all(cnn_space.is_member(m) for m in result.mappings)

    def test_never_queries_true_cost_model(self, trained_mm, cnn_space, monkeypatch):
        """The paper's key speed property: Phase 2 is oracle-free."""
        from repro.costmodel.model import CostModel

        def forbidden(self, *args, **kwargs):
            raise AssertionError("gradient search must not query the oracle")

        monkeypatch.setattr(CostModel, "evaluate", forbidden)
        monkeypatch.setattr(CostModel, "evaluate_edp", forbidden)
        GradientSearcher(cnn_space, trained_mm.surrogate).search(30, seed=2)

    def test_deterministic_given_seed(self, trained_mm, cnn_space):
        searcher = GradientSearcher(cnn_space, trained_mm.surrogate)
        a = searcher.search(40, seed=3)
        b = searcher.search(40, seed=3)
        assert a.mappings == b.mappings
        assert a.objective_values == b.objective_values

    def test_descends_surrogate_objective(self, trained_mm, cnn_space):
        """Across several seeds, the best objective found must improve on
        the starting point (gradients point somewhere useful)."""
        searcher = GradientSearcher(cnn_space, trained_mm.surrogate)
        improved = 0
        for seed in range(5):
            result = searcher.search(80, seed=seed)
            if result.best_objective < result.objective_values[0] - 1e-9:
                improved += 1
        assert improved >= 3

    def test_injections_occur(self, trained_mm, cnn_space):
        """With inject_every=5, injection evaluations appear in the trace."""
        searcher = GradientSearcher(cnn_space, trained_mm.surrogate, inject_every=5)
        result = searcher.search(60, seed=0)
        # 60 evals = 50 GD steps + 10 injections at minimum diversity:
        assert len(set(result.mappings)) > 5

    def test_paper_literal_mode(self, trained_mm, cnn_space):
        searcher = GradientSearcher(
            cnn_space,
            trained_mm.surrogate,
            normalize_gradient=False,
            escalate_when_stuck=False,
        )
        result = searcher.search(30, seed=0)
        assert result.n_evaluations == 30

    def test_mismatched_surrogate_raises(self, trained_mm, mttkrp_problem, accelerator):
        space = MapSpace(mttkrp_problem, accelerator)
        with pytest.raises(ValueError):
            GradientSearcher(space, trained_mm.surrogate)

    def test_invalid_hyperparams_raise(self, trained_mm, cnn_space):
        with pytest.raises(ValueError):
            GradientSearcher(cnn_space, trained_mm.surrogate, learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientSearcher(cnn_space, trained_mm.surrogate, inject_every=0)

    def test_time_budget_respected(self, trained_mm, cnn_space):
        searcher = GradientSearcher(cnn_space, trained_mm.surrogate)
        result = searcher.search(100_000, seed=0, time_budget_s=0.2)
        assert result.wall_time < 2.0
        assert result.n_evaluations < 100_000
