"""Searcher registry: every registered name constructs and runs."""

import pytest

from repro.costmodel import CostModel
from repro.engine import make_searcher, register_searcher, resolve_searcher, searcher_names
from repro.search import (
    ExhaustiveSearcher,
    GeneticSearcher,
    RLSearcher,
    RandomSearcher,
    Searcher,
    SimulatedAnnealingSearcher,
)

BUILTIN_NAMES = ("annealing", "exhaustive", "genetic", "gradient", "random", "rl")


class TestRegistryContents:
    def test_builtins_registered(self):
        assert set(BUILTIN_NAMES) <= set(searcher_names())

    def test_aliases_resolve_to_canonical(self):
        assert resolve_searcher("sa") == "annealing"
        assert resolve_searcher("GA") == "genetic"
        assert resolve_searcher("mm") == "gradient"
        assert resolve_searcher("Mind_Mappings") == "gradient"

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="genetic"):
            resolve_searcher("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_searcher("random")(RandomSearcher)

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ValueError, match="already"):
            register_searcher("brand-new", aliases=("sa",))(RandomSearcher)


class TestConstruction:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("random", RandomSearcher),
            ("annealing", SimulatedAnnealingSearcher),
            ("genetic", GeneticSearcher),
            ("rl", RLSearcher),
            ("exhaustive", ExhaustiveSearcher),
        ],
    )
    def test_baselines_construct_with_injected_cost_model(
        self, name, cls, conv1d_space
    ):
        searcher = make_searcher(name, conv1d_space)
        assert isinstance(searcher, cls)
        assert searcher.cost_model.accelerator is conv1d_space.accelerator

    def test_explicit_cost_model_honored(self, conv1d_space, tiny_accelerator):
        model = CostModel(tiny_accelerator)
        searcher = make_searcher("random", conv1d_space, cost_model=model)
        assert searcher.cost_model is model

    def test_config_forwarded(self, conv1d_space):
        searcher = make_searcher("genetic", conv1d_space, population_size=5)
        assert searcher.population_size == 5

    def test_gradient_requires_surrogate(self, cnn_space):
        with pytest.raises(ValueError, match="surrogate"):
            make_searcher("gradient", cnn_space)

    def test_gradient_constructs_with_surrogate(self, trained_mm, cnn_space):
        searcher = make_searcher("gradient", cnn_space, surrogate=trained_mm.surrogate)
        assert searcher.name == "MM"

    def test_unknown_parameter_rejected(self, conv1d_space):
        with pytest.raises(TypeError, match="no_such_knob"):
            make_searcher("random", conv1d_space, no_such_knob=1)


class TestAllRegisteredNamesRun:
    """Acceptance: every registry name constructs and completes 10 iterations."""

    @pytest.mark.parametrize("name", BUILTIN_NAMES)
    def test_runs_ten_iterations(self, name, conv1d_space, trained_mm, cnn_space):
        if name == "gradient":
            space, config = cnn_space, {"surrogate": trained_mm.surrogate}
        else:
            space, config = conv1d_space, {}
        searcher = make_searcher(name, space, **config)
        assert isinstance(searcher, Searcher)
        result = searcher.search(10, seed=0)
        assert 1 <= result.n_evaluations <= 10
        assert result.best_objective == min(result.objective_values)
        assert space.is_member(result.best_mapping)
