"""Unit and property tests for factorization/composition utilities."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapspace.factors import (
    compositions,
    nearest_composition,
    nearest_factorization,
    sample_composition,
    sample_factorization,
    smallest_prime_factor,
)


class TestSampleFactorization:
    @given(st.integers(min_value=1, max_value=512), st.integers(min_value=0, max_value=9999))
    @settings(max_examples=60)
    def test_product_is_n(self, n, seed):
        factors = sample_factorization(n, 4, seed)
        assert math.prod(factors) == n

    def test_deterministic(self):
        assert sample_factorization(96, 4, 5) == sample_factorization(96, 4, 5)

    def test_covers_space(self):
        rng = np.random.default_rng(0)
        seen = {sample_factorization(8, 2, rng) for _ in range(100)}
        assert seen == {(1, 8), (2, 4), (4, 2), (8, 1)}


class TestNearestFactorization:
    def test_exact_target(self):
        assert nearest_factorization(24, 3, [2, 3, 4]) == (2, 3, 4)

    def test_rounds_to_closest(self):
        # target (2.2, 2.8, 4.1) should still land on (2, 3, 4)
        assert nearest_factorization(24, 3, [2.2, 2.8, 4.1]) == (2, 3, 4)

    def test_product_always_n(self):
        result = nearest_factorization(36, 4, [10, 10, 10, 10])
        assert math.prod(result) == 36

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            nearest_factorization(12, 3, [1, 2])

    @given(
        st.integers(min_value=1, max_value=256),
        st.lists(st.floats(min_value=0.01, max_value=300), min_size=4, max_size=4),
    )
    @settings(max_examples=60)
    def test_valid_for_any_target(self, n, target):
        result = nearest_factorization(n, 4, target)
        assert math.prod(result) == n
        assert all(f >= 1 for f in result)


class TestCompositions:
    def test_basic(self):
        assert set(compositions(4, 2)) == {(1, 3), (2, 2), (3, 1)}

    def test_min_each(self):
        assert compositions(6, 2, min_each=2) == ((2, 4), (3, 3), (4, 2))

    def test_single_part(self):
        assert compositions(5, 1) == ((5,),)

    def test_count_formula(self):
        # C(total - parts + parts - 1, parts - 1) for min_each=1
        assert len(compositions(10, 3)) == math.comb(9, 2)

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            compositions(2, 3)

    @given(st.integers(min_value=3, max_value=12), st.integers(min_value=1, max_value=3))
    def test_all_sum_to_total(self, total, parts):
        for option in compositions(total, parts):
            assert sum(option) == total
            assert all(x >= 1 for x in option)


class TestSampleComposition:
    @given(
        st.integers(min_value=3, max_value=32),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=60)
    def test_valid(self, total, parts, seed):
        result = sample_composition(total, parts, seed)
        assert sum(result) == total
        assert all(x >= 1 for x in result)

    def test_uniformity_rough(self):
        rng = np.random.default_rng(0)
        counts = {}
        for _ in range(600):
            counts[sample_composition(4, 2, rng)] = counts.get(sample_composition(4, 2, rng), 0) + 1
        # all three compositions of 4 into 2 parts should appear
        assert set(counts) == {(1, 3), (2, 2), (3, 1)}

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            sample_composition(1, 3, 0)


class TestNearestComposition:
    def test_respects_proportions(self):
        result = nearest_composition(10, 2, [0.8, 0.2])
        assert result == (8, 2)

    def test_sums_to_total(self):
        result = nearest_composition(7, 3, [0.5, 0.3, 0.2])
        assert sum(result) == 7

    def test_zero_target_falls_back_to_even(self):
        result = nearest_composition(6, 3, [0.0, 0.0, 0.0])
        assert sum(result) == 6
        assert all(x >= 1 for x in result)

    def test_min_each_enforced(self):
        result = nearest_composition(5, 3, [100.0, 0.0, 0.0])
        assert result[1] >= 1 and result[2] >= 1

    @given(
        st.integers(min_value=4, max_value=32),
        st.lists(st.floats(min_value=0, max_value=10), min_size=4, max_size=4),
    )
    @settings(max_examples=60)
    def test_always_valid(self, total, target):
        result = nearest_composition(total, 4, target)
        assert sum(result) == total
        assert all(x >= 1 for x in result)


class TestSmallestPrimeFactor:
    def test_one(self):
        assert smallest_prime_factor(1) == 1

    def test_prime(self):
        assert smallest_prime_factor(13) == 13

    def test_even(self):
        assert smallest_prime_factor(24) == 2

    def test_odd_composite(self):
        assert smallest_prime_factor(49) == 7

    @given(st.integers(min_value=2, max_value=10_000))
    def test_divides_and_is_prime(self, n):
        p = smallest_prime_factor(n)
        assert n % p == 0
        assert all(p % q for q in range(2, int(math.isqrt(p)) + 1))
