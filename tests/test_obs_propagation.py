"""End-to-end trace propagation: server, followers, failures, router.

These tests drive real engines through the serving stack (no fake clocks:
propagation is about *which* spans land in *whose* trace, not durations)
plus router failover paths on injected fake RPC pools — no processes.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.costmodel.accelerator import small_accelerator
from repro.engine import EngineConfig, MappingEngine, MappingRequest
from repro.serve import MappingServer, ServeConfig
from repro.serve.codec import response_to_dict
from repro.workloads import make_conv1d

PROBLEM = make_conv1d("obs_prop", w=32, r=5)
PROBLEM_B = make_conv1d("obs_prop_b", w=48, r=3)


@pytest.fixture()
def engine():
    return MappingEngine(small_accelerator(), EngineConfig())


@pytest.fixture(autouse=True)
def fresh_event_log():
    """Isolate the process-default event log: earlier tests in the same
    process (real cluster failovers, overload probes) leave events behind."""
    from repro.obs import events

    previous = events.set_default_log(events.EventLog())
    try:
        yield
    finally:
        events.set_default_log(previous)


def _request(problem=PROBLEM, seed=0, tag="", searcher="random",
             iterations=20):
    return MappingRequest(
        problem, searcher=searcher, iterations=iterations, seed=seed, tag=tag
    )


def _span_names(snapshot):
    return [s["name"] for s in snapshot["spans"]]


def _well_nested(snapshot):
    """Every non-root span's parent exists; same-pid children sit inside
    their parent's interval."""
    spans = {s["span_id"]: s for s in snapshot["spans"]}
    for s in snapshot["spans"]:
        parent = s["parent_id"]
        if parent is None:
            continue
        assert parent in spans, f"orphan span {s['name']}"
        p = spans[parent]
        if p["pid"] == s["pid"]:
            assert s["start"] >= p["start"] - 1e-9
            if s["end"] is not None and p["end"] is not None:
                assert s["end"] <= p["end"] + 1e-9
    return True


class TestServerTraces:
    def test_response_carries_a_complete_trace(self, engine):
        server = MappingServer(
            engine, ServeConfig(max_batch=4, max_wait_s=0.005, workers=1)
        )
        try:
            response = server.submit(_request(seed=1, tag="t")).result(
                timeout=30
            )
            assert response.trace_id
            snap = server.trace_snapshot(response.trace_id)
            assert snap is not None
            names = _span_names(snap)
            assert names[0] == "serve.request"
            assert "admission" in names
            assert "batch.wait" in names
            assert "finalize" in names
            assert _well_nested(snap)
            # The sealed stage breakdown equals what the response carries.
            assert snap["stages"] == response.stages
            root = snap["spans"][0]
            wall = root["end"] - root["start"]
            total = sum(response.stages.values())
            assert total <= wall + 1e-6
            assert total >= 0.5 * wall  # breakdown accounts for the bulk
        finally:
            server.shutdown(timeout=10.0)

    def test_cohort_rounds_and_kernel_spans_attributed(self, engine):
        # Two coalescible searches in one batch: each trace gets its own
        # cohort.round spans; the shared prewarm kernel lands in both.
        server = MappingServer(
            engine, ServeConfig(max_batch=8, max_wait_s=0.25, workers=1)
        )
        try:
            futures = [
                server.submit(_request(problem, seed=7, tag=f"m{i}"))
                for i, problem in enumerate((PROBLEM, PROBLEM_B))
            ]
            responses = [f.result(timeout=30) for f in futures]
            for response in responses:
                snap = server.trace_snapshot(response.trace_id)
                names = _span_names(snap)
                assert "cohort.round" in names
                assert "megabatch.kernel" in names
                assert _well_nested(snap)
                assert response.stages.get("kernel_s", 0.0) > 0.0
                kernel = next(
                    s for s in snap["spans"]
                    if s["name"] == "megabatch.kernel"
                )
                assert kernel["attrs"]["lanes"] >= 2  # megabatched union
        finally:
            server.shutdown(timeout=10.0)

    def test_follower_records_admission_and_links_leader(self, engine):
        server = MappingServer(
            engine,
            ServeConfig(
                max_batch=8, max_wait_s=0.25, workers=1,
                response_cache_size=0,
            ),
        )
        try:
            leader_future = server.submit(_request(seed=3, tag="leader"))
            follower_future = server.submit(_request(seed=3, tag="dup"))
            leader = leader_future.result(timeout=30)
            follower = follower_future.result(timeout=30)
            assert follower.tag == "dup"
            assert follower.trace_id
            assert follower.trace_id != leader.trace_id
            snap = server.trace_snapshot(follower.trace_id)
            names = _span_names(snap)
            # The follower's own trace is just its root + admission wait;
            # the leader's kernel/search spans are shared via the link.
            assert "admission" in names
            assert "cohort.round" not in names
            assert snap["links"] == [leader.trace_id]
            leader_names = [
                s["name"] for s in snap["linked_spans"][leader.trace_id]
            ]
            assert "finalize" in leader_names
            assert set(follower.stages) == {"admission_wait_s"}
        finally:
            server.shutdown(timeout=10.0)

    def test_failed_request_finishes_trace_with_error(self, engine):
        def exploding_runner(engine_, requests):
            raise RuntimeError("boom")

        server = MappingServer(
            engine,
            ServeConfig(max_batch=1, max_wait_s=0.0, workers=1),
            runner=exploding_runner,
        )
        try:
            future = server.submit(_request(seed=5, tag="doomed"))
            with pytest.raises(RuntimeError):
                future.result(timeout=30)
            # The trace is sealed, queryable, and carries the error class.
            [trace_id] = server.tracer.trace_ids()
            snap = server.trace_snapshot(trace_id)
            root = snap["spans"][0]
            assert root["end"] is not None
            assert root["attrs"]["error"] == "RuntimeError"
        finally:
            server.shutdown(timeout=10.0)

    def test_tracing_off_yields_no_trace(self, engine):
        server = MappingServer(
            engine, ServeConfig(max_batch=4, max_wait_s=0.005, tracing=False)
        )
        try:
            response = server.submit(_request(seed=2)).result(timeout=30)
            assert response.trace_id == ""
            assert response.stages == {}
            assert server.tracer.trace_ids() == []
        finally:
            server.shutdown(timeout=10.0)

    def test_cache_hit_gets_its_own_trivial_trace(self, engine):
        server = MappingServer(
            engine, ServeConfig(max_batch=4, max_wait_s=0.005, workers=1)
        )
        try:
            first = server.submit(_request(seed=9, tag="a")).result(
                timeout=30
            )
            second = server.submit(_request(seed=9, tag="b")).result(
                timeout=30
            )
            assert second.trace_id
            assert second.trace_id != first.trace_id
            snap = server.trace_snapshot(second.trace_id)
            assert _span_names(snap)[0] == "serve.request"
            assert snap["spans"][0]["attrs"].get("cache_hit") is True
        finally:
            server.shutdown(timeout=10.0)


class _FakePool:
    """Stands in for a ConnectionPool; scripted reply or failure."""

    def __init__(self, reply=None, error=None):
        self.reply = reply
        self.error = error
        self.calls = []

    def call(self, payload, timeout_s=None):
        self.calls.append(payload)
        if self.error is not None:
            raise self.error
        return self.reply

    def close(self):
        pass


def _router_without_processes(num_shards=2):
    from repro.cluster import ClusterConfig, ClusterRouter

    config = ClusterConfig(
        num_shards=num_shards,
        accelerator=small_accelerator(),
        respawn=False,
    )
    return ClusterRouter(config)


def _ok_reply(engine, request, trace_payload):
    """A canned shard reply: a real response traced by a real server."""
    server = MappingServer(
        engine, ServeConfig(max_batch=1, max_wait_s=0.0, workers=1)
    )
    try:
        trace_parent = (
            (trace_payload["trace_id"], trace_payload.get("parent_span", ""))
            if trace_payload
            else None
        )
        response = server.submit(
            request, trace_parent=trace_parent
        ).result(timeout=30)
        return {
            "ok": True,
            "response": response_to_dict(response),
            "spans": server.tracer.export_spans(response.trace_id),
        }
    finally:
        server.shutdown(timeout=10.0)


class TestRouterTraces:
    def test_failover_attempts_are_sibling_spans(self, engine):
        router = _router_without_processes(num_shards=2)
        try:
            request = _request(seed=11, tag="fo")
            primary = router.shard_for(request)
            backup = 1 - primary

            class _ServingPool(_FakePool):
                def call(self, payload, timeout_s=None):
                    self.calls.append(payload)
                    return _ok_reply(engine, request, payload.get("trace"))

            dead = _FakePool(error=ConnectionError("shard gone"))
            alive = _ServingPool()
            for shard_id, pool in ((primary, dead), (backup, alive)):
                handle = router._handles[shard_id]
                handle.pool = pool
                handle.live = True
            router._accepting = True
            response = router.submit(request).result(timeout=60)
            assert response.trace_id
            assert router.counters["failovers"].value == 1
            snap = router.trace_snapshot(response.trace_id)
            [tree] = snap["tree"]
            assert tree["span"]["name"] == "cluster.request"
            rpc_nodes = [
                c for c in tree["children"]
                if c["span"]["name"] == "shard.rpc"
            ]
            assert len(rpc_nodes) == 2  # failed + served, side by side
            by_attempt = sorted(
                rpc_nodes, key=lambda n: n["span"]["attrs"]["attempt"]
            )
            assert by_attempt[0]["span"]["attrs"]["shard"] == primary
            assert (
                by_attempt[0]["span"]["attrs"]["error"] == "ConnectionError"
            )
            assert by_attempt[1]["span"]["attrs"]["shard"] == backup
            # The shard's own spans merged in under the served attempt.
            child_names = [
                c["span"]["name"] for c in by_attempt[1]["children"]
            ]
            assert "serve.request" in child_names
            # Failover surfaced as an event too.
            kinds = [
                e["kind"] for e in router.events_snapshot(kind="failover")
            ]
            assert kinds == ["failover"]
        finally:
            router._accepting = False
            router._executor.shutdown(wait=False)

    def test_router_merges_shard_stages_plus_overhead(self, engine):
        router = _router_without_processes(num_shards=1)
        try:
            request = _request(seed=13, tag="merge")

            class _ServingPool(_FakePool):
                def call(self, payload, timeout_s=None):
                    self.calls.append(payload)
                    return _ok_reply(engine, request, payload.get("trace"))

            handle = router._handles[0]
            handle.pool = _ServingPool()
            handle.live = True
            router._accepting = True
            response = router.submit(request).result(timeout=60)
            assert "router_overhead_s" in response.stages
            assert response.stages["router_overhead_s"] >= 0.0
            assert "admission_wait_s" in response.stages
            snap = router.trace_snapshot(response.trace_id)
            assert _well_nested(snap)
            # The shard adopted the router's trace id end-to-end.
            pids = {s["pid"] for s in snap["spans"]}
            assert len(pids) == 1  # same process here, but one merged tree
            names = _span_names(snap)
            assert "cluster.request" in names
            assert "serve.request" in names
        finally:
            router._accepting = False
            router._executor.shutdown(wait=False)
