"""Length-prefixed socket RPC: framing, error taxonomy, pooling, server."""

import socket
import struct
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cluster.rpc import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    ConnectionPool,
    ProtocolError,
    RpcClient,
    RpcServer,
    recv_message,
    send_message,
)


class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"op": "ping", "nested": {"x": [1, 2, 3]}})
            assert recv_message(b) == {"op": "ping", "nested": {"x": [1, 2, 3]}}
        finally:
            a.close()
            b.close()

    def test_multiple_frames_keep_boundaries(self):
        a, b = socket.socketpair()
        try:
            for i in range(5):
                send_message(a, {"i": i})
            for i in range(5):
                assert recv_message(b) == {"i": i}
        finally:
            a.close()
            b.close()

    def test_clean_eof_raises_connection_closed(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(ConnectionClosed):
                recv_message(b)
        finally:
            b.close()

    def test_death_mid_frame_is_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 100) + b"only-part")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()

    def test_oversized_announcement_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="cap"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_invalid_json_is_protocol_error(self):
        a, b = socket.socketpair()
        try:
            body = b"not json at all"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="JSON"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_non_object_payload_rejected(self):
        a, b = socket.socketpair()
        try:
            body = b"[1, 2, 3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="object"):
                recv_message(b)
        finally:
            a.close()
            b.close()


@pytest.fixture()
def echo_server():
    def handler(payload):
        if payload.get("op") == "boom":
            raise ValueError("handler exploded")
        return {"ok": True, "echo": payload}

    server = RpcServer(handler).start()
    yield server
    server.stop()


class TestClientServer:
    def test_call_round_trip(self, echo_server):
        with RpcClient(echo_server.host, echo_server.port) as client:
            reply = client.call({"op": "ping", "n": 7})
            assert reply == {"ok": True, "echo": {"op": "ping", "n": 7}}

    def test_keep_alive_many_calls_one_connection(self, echo_server):
        with RpcClient(echo_server.host, echo_server.port) as client:
            for i in range(20):
                assert client.call({"i": i})["echo"]["i"] == i

    def test_handler_exception_becomes_error_reply(self, echo_server):
        with RpcClient(echo_server.host, echo_server.port) as client:
            reply = client.call({"op": "boom"})
            assert reply["ok"] is False
            assert reply["kind"] == "error"
            assert "ValueError" in reply["error"]
            # The connection survives a handler error.
            assert client.call({"op": "ping"})["ok"] is True

    def test_concurrent_clients(self, echo_server):
        def roundtrip(i):
            with RpcClient(echo_server.host, echo_server.port) as client:
                return client.call({"i": i})["echo"]["i"]

        with ThreadPoolExecutor(max_workers=8) as pool:
            assert sorted(pool.map(roundtrip, range(32))) == list(range(32))

    def test_shared_client_is_thread_safe(self, echo_server):
        client = RpcClient(echo_server.host, echo_server.port)
        results = []
        lock = threading.Lock()

        def worker(i):
            reply = client.call({"i": i})
            with lock:
                results.append(reply["echo"]["i"])

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        client.close()
        assert sorted(results) == list(range(16))

    def test_stop_unbinds_port(self, echo_server):
        port = echo_server.port
        echo_server.stop()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5)


class TestConnectionPool:
    def test_reuses_idle_connections(self, echo_server):
        pool = ConnectionPool(echo_server.host, echo_server.port, maxsize=4)
        first = pool.acquire()
        pool.release(first)
        assert pool.acquire() is first
        pool.close()

    def test_call_discards_broken_connections(self, echo_server):
        pool = ConnectionPool(echo_server.host, echo_server.port)
        broken = pool.acquire()
        broken.close()  # simulate a dead shard's half of the socket
        pool.release(broken)  # back to idle, now poisoned
        with pytest.raises((ConnectionError, OSError, RuntimeError)):
            pool.call({"op": "ping"})
        # A fresh call dials a new connection and succeeds.
        assert pool.call({"op": "ping"})["ok"] is True
        pool.close()

    def test_closed_pool_refuses(self, echo_server):
        pool = ConnectionPool(echo_server.host, echo_server.port)
        pool.close()
        with pytest.raises(ConnectionError):
            pool.acquire()

    def test_bounded_idle_retention(self, echo_server):
        pool = ConnectionPool(echo_server.host, echo_server.port, maxsize=2)
        clients = [pool.acquire() for _ in range(4)]
        for client in clients:
            pool.release(client)
        assert len(pool._idle) == 2
        pool.close()
