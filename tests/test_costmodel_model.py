"""Tests for the analytical cost model: invariants, bounds, sensitivities."""

import numpy as np
import pytest

from repro.costmodel import CostModel, algorithmic_minimum
from repro.costmodel.accelerator import MEMORY_LEVELS
from repro.mapspace import MapSpace


class TestEvaluationBasics:
    def test_produces_stats(self, cnn_space, cost_model, cnn_problem):
        stats = cost_model.evaluate(cnn_space.sample(0), cnn_problem)
        assert stats.total_energy_pj > 0
        assert stats.cycles >= 1
        assert 0 < stats.utilization <= 1
        assert stats.edp > 0

    def test_records_cover_all_tensor_levels(self, cnn_space, cost_model, cnn_problem):
        stats = cost_model.evaluate(cnn_space.sample(0), cnn_problem)
        pairs = {(r.tensor, r.level) for r in stats.records}
        expected = {
            (t.name, level) for t in cnn_problem.tensors for level in MEMORY_LEVELS
        }
        assert pairs == expected

    def test_deterministic(self, cnn_space, cost_model, cnn_problem):
        mapping = cnn_space.sample(1)
        a = cost_model.evaluate(mapping, cnn_problem)
        b = cost_model.evaluate(mapping, cnn_problem)
        assert a.edp == b.edp
        assert a.cycles == b.cycles

    def test_wrong_problem_raises(self, cnn_space, cost_model, mttkrp_problem):
        with pytest.raises(ValueError):
            cost_model.evaluate(cnn_space.sample(0), mttkrp_problem)

    def test_evaluate_edp_matches_stats(self, cnn_space, cost_model, cnn_problem):
        mapping = cnn_space.sample(2)
        assert cost_model.evaluate_edp(mapping, cnn_problem) == pytest.approx(
            cost_model.evaluate(mapping, cnn_problem).edp
        )


class TestLowerBoundInvariant:
    """No valid mapping may beat the algorithmic minimum."""

    @pytest.mark.parametrize("seed", range(8))
    def test_cnn_never_beats_bound(self, cnn_space, cost_model, cnn_problem, seed):
        bound = algorithmic_minimum(cnn_problem, cost_model.accelerator)
        stats = cost_model.evaluate(cnn_space.sample(seed), cnn_problem)
        assert stats.edp >= bound.edp
        assert stats.total_energy_pj >= bound.energy_pj
        assert stats.cycles >= bound.cycles

    @pytest.mark.parametrize("seed", range(4))
    def test_mttkrp_never_beats_bound(
        self, mttkrp_problem, accelerator, cost_model, seed
    ):
        space = MapSpace(mttkrp_problem, accelerator)
        bound = algorithmic_minimum(mttkrp_problem, accelerator)
        stats = cost_model.evaluate(space.sample(seed), mttkrp_problem)
        assert stats.edp >= bound.edp


class TestTrafficSanity:
    def test_dram_reads_at_least_tensor_sizes(
        self, cnn_space, cost_model, cnn_problem
    ):
        stats = cost_model.evaluate(cnn_space.sample(0), cnn_problem)
        for tensor in cnn_problem.tensors:
            assert stats.accesses_for(tensor.name, "DRAM") >= cnn_problem.tensor_size(
                tensor
            ) * 0.99

    def test_inner_levels_see_more_traffic(self, cnn_space, cost_model, cnn_problem):
        stats = cost_model.evaluate(cnn_space.sample(3), cnn_problem)
        by_level = {
            level: sum(r.accesses for r in stats.records if r.level == level)
            for level in MEMORY_LEVELS
        }
        assert by_level["L1"] >= by_level["L2"] >= by_level["DRAM"]

    def test_compute_reads_scale_with_points(self, cnn_space, cost_model, cnn_problem):
        stats = cost_model.evaluate(cnn_space.sample(0), cnn_problem)
        l1_total = sum(r.accesses for r in stats.records if r.level == "L1")
        # Every MAC reads operands from L1/registers: traffic >= total points.
        assert l1_total >= cnn_problem.total_points


class TestSensitivities:
    """The model must respond to mapping changes in the right direction."""

    def test_parallelism_reduces_cycles(self, cnn_problem, accelerator, cost_model):
        space = MapSpace(cnn_problem, accelerator)
        serial = None
        parallel = None
        for seed in range(40):
            mapping = space.sample(seed)
            if mapping.spatial_size == 1 and serial is None:
                serial = mapping
            if mapping.spatial_size >= 16 and parallel is None:
                parallel = mapping
            if serial and parallel:
                break
        if not (serial and parallel):
            pytest.skip("did not sample both extremes")
        cycles_serial = cost_model.evaluate(serial, cnn_problem).cycles
        cycles_parallel = cost_model.evaluate(parallel, cnn_problem).cycles
        assert cycles_parallel < cycles_serial

    def test_loop_order_changes_cost(self, cnn_space, cost_model, cnn_problem):
        """Swapping a DRAM-level loop order must change traffic for some
        mapping (the non-smoothness the paper's Figure 3 relies on)."""
        changed = False
        for seed in range(10):
            mapping = cnn_space.sample(seed)
            order = list(mapping.loop_order("DRAM"))
            swapped = mapping.with_loop_order("DRAM", order[::-1])
            if not cnn_space.is_member(swapped):
                continue
            a = cost_model.evaluate(mapping, cnn_problem).edp
            b = cost_model.evaluate(swapped, cnn_problem).edp
            if abs(a - b) / a > 1e-6:
                changed = True
                break
        assert changed

    def test_utilization_reflects_parallelism(self, cnn_space, cost_model, cnn_problem):
        for seed in range(5):
            mapping = cnn_space.sample(seed)
            stats = cost_model.evaluate(mapping, cnn_problem)
            # utilization can never exceed spatial fraction of the array
            assert stats.utilization <= mapping.spatial_size / cost_model.accelerator.num_pes + 1e-9


class TestMetaVector:
    def test_length_matches_paper(self, cnn_space, cost_model, cnn_problem):
        stats = cost_model.evaluate(cnn_space.sample(0), cnn_problem)
        # 3 tensors -> 12 outputs (CNN-Layer in the paper)
        assert len(stats.meta_vector(("Input", "Weights", "Output"))) == 12

    def test_mttkrp_length(self, mttkrp_problem, accelerator, cost_model):
        space = MapSpace(mttkrp_problem, accelerator)
        stats = cost_model.evaluate(space.sample(0), mttkrp_problem)
        # 4 tensors -> 15 outputs (MTTKRP in the paper)
        assert len(stats.meta_vector(("A", "B", "C", "Output"))) == 15

    def test_vector_contents(self, cnn_space, cost_model, cnn_problem):
        stats = cost_model.evaluate(cnn_space.sample(0), cnn_problem)
        vector = stats.meta_vector(("Input", "Weights", "Output"))
        assert vector[-3] == pytest.approx(stats.total_energy_pj)
        assert vector[-2] == pytest.approx(stats.utilization)
        assert vector[-1] == pytest.approx(stats.cycles)

    def test_energy_by_level_sums(self, cnn_space, cost_model, cnn_problem):
        stats = cost_model.evaluate(cnn_space.sample(0), cnn_problem)
        assert sum(stats.energy_by_level().values()) == pytest.approx(
            stats.memory_energy_pj
        )

    def test_summary_mentions_problem(self, cnn_space, cost_model, cnn_problem):
        stats = cost_model.evaluate(cnn_space.sample(0), cnn_problem)
        assert cnn_problem.name in stats.summary()
