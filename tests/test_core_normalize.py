"""Tests for whitening."""

import numpy as np
import pytest

from repro.core import Whitener


class TestWhitener:
    def test_fit_statistics(self):
        data = np.array([[1.0, 10.0], [3.0, 20.0]])
        w = Whitener.fit(data)
        np.testing.assert_allclose(w.mean, [2.0, 15.0])
        np.testing.assert_allclose(w.std, [1.0, 5.0])

    def test_transform_whitens(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(500, 4))
        w = Whitener.fit(data)
        z = w.transform(data)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(50, 3)) * [1, 100, 0.01] + [5, -2, 0]
        w = Whitener.fit(data)
        np.testing.assert_allclose(w.inverse(w.transform(data)), data, atol=1e-9)

    def test_constant_column_safe(self):
        data = np.array([[1.0, 7.0], [2.0, 7.0], [3.0, 7.0]])
        w = Whitener.fit(data)
        z = w.transform(data)
        assert np.isfinite(z).all()
        np.testing.assert_allclose(z[:, 1], 0.0)

    def test_single_row_transform(self):
        data = np.arange(12.0).reshape(4, 3)
        w = Whitener.fit(data)
        row = w.transform(data[0])
        assert row.shape == (3,)

    def test_column_helpers(self):
        data = np.array([[0.0, 0.0], [2.0, 10.0]])
        w = Whitener.fit(data)
        assert w.transform_column(2.0, 0) == pytest.approx(1.0)
        assert w.inverse_column(1.0, 0) == pytest.approx(2.0)

    def test_width(self):
        assert Whitener.fit(np.zeros((3, 5))).width == 5

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Whitener.fit(np.zeros(5))

    def test_state_roundtrip(self):
        data = np.random.default_rng(0).normal(size=(20, 3))
        w = Whitener.fit(data)
        restored = Whitener.from_state(w.state_dict())
        np.testing.assert_array_equal(restored.mean, w.mean)
        np.testing.assert_array_equal(restored.std, w.std)
