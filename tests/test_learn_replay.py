"""ReplayBuffer: target fidelity, reservoir bounds, holdout split, balance."""

import numpy as np
import pytest

from repro.core import Surrogate, generate_dataset
from repro.costmodel import CostModel
from repro.costmodel.accelerator import small_accelerator
from repro.costmodel.lower_bound import algorithmic_minimum
from repro.learn.replay import ReplayBuffer, ReplayConfig
from repro.mapspace import MapSpace
from repro.workloads import make_conv1d

ACCEL = small_accelerator()
MODEL = CostModel(ACCEL)
PROBLEM_A = make_conv1d("replay_a", w=32, r=5)
PROBLEM_B = make_conv1d("replay_b", w=48, r=3)


def _surrogate(mode: str = "meta") -> Surrogate:
    """An untrained surrogate: the buffer only uses its coordinate systems."""
    dataset = generate_dataset(
        "conv1d", ACCEL, 80, problems=(PROBLEM_A, PROBLEM_B), mode=mode, seed=0
    )
    return Surrogate.build(
        dataset.encoder,
        dataset.codec,
        dataset.input_whitener,
        dataset.target_whitener,
        "conv1d",
        hidden_layers=(8,),
        rng=0,
    )


def _priced(problem, count, seed):
    mappings = MapSpace(problem, ACCEL).sample_many(count, seed=seed)
    batch = MODEL.evaluate_batch(mappings, problem)
    return mappings, batch


class TestIngest:
    def test_batch_stats_observation(self):
        buffer = ReplayBuffer(_surrogate(), ACCEL)
        mappings, batch = _priced(PROBLEM_A, 40, seed=1)
        absorbed = buffer.ingest(PROBLEM_A, mappings, [float(v) for v in batch.edp], batch)
        assert absorbed == 40
        assert buffer.depth + buffer.holdout_depth == 40

    def test_scalar_stats_observation_matches_batch_path(self):
        """A finalize-tap (CostStats list) sample stores the same pair as
        the vectorized miss-tap path for the same mapping."""
        surrogate = _surrogate()
        via_batch = ReplayBuffer(surrogate, ACCEL)
        via_scalar = ReplayBuffer(surrogate, ACCEL)
        mappings, batch = _priced(PROBLEM_A, 4, seed=2)
        via_batch.ingest(PROBLEM_A, mappings, [float(v) for v in batch.edp], batch)
        via_scalar.ingest(
            PROBLEM_A,
            mappings,
            [float(v) for v in batch.edp],
            [MODEL.evaluate(m, PROBLEM_A) for m in mappings],
        )
        key = next(iter(via_batch._train))
        np.testing.assert_allclose(
            via_batch._train[key].x[:3], via_scalar._train[key].x[:3], rtol=1e-12
        )
        np.testing.assert_allclose(
            via_batch._train[key].y[:3], via_scalar._train[key].y[:3], rtol=1e-9
        )

    def test_holdout_truth_is_analytical_normalized_edp(self):
        buffer = ReplayBuffer(_surrogate(), ACCEL)
        mappings, batch = _priced(PROBLEM_A, 60, seed=3)
        buffer.ingest(PROBLEM_A, mappings, [float(v) for v in batch.edp], batch)
        _, truth = buffer.holdout_truth()
        bound = algorithmic_minimum(PROBLEM_A, ACCEL)
        expected = np.log2(np.asarray(batch.edp) / bound.edp + 1e-12)
        # Holdout rows are a subset of the ingested rows.
        assert truth.shape[0] == buffer.holdout_depth > 0
        for value in truth:
            assert np.min(np.abs(expected - value)) < 1e-6

    def test_bare_edp_skipped_in_meta_mode(self):
        buffer = ReplayBuffer(_surrogate("meta"), ACCEL)
        mappings, batch = _priced(PROBLEM_A, 8, seed=4)
        absorbed = buffer.ingest(
            PROBLEM_A, mappings, [float(v) for v in batch.edp], None
        )
        assert absorbed == 0
        assert buffer.snapshot()["skipped"] == 8

    def test_bare_edp_used_in_edp_mode(self):
        buffer = ReplayBuffer(_surrogate("edp"), ACCEL)
        mappings, batch = _priced(PROBLEM_A, 8, seed=5)
        absorbed = buffer.ingest(
            PROBLEM_A, mappings, [float(v) for v in batch.edp], None
        )
        assert absorbed == 8

    def test_wrong_algorithm_rejected(self):
        from repro.workloads import make_gemm

        buffer = ReplayBuffer(_surrogate(), ACCEL)
        problem = make_gemm("g", m=8, n=8, k=8)
        with pytest.raises(ValueError, match="algorithm"):
            buffer.ingest(problem, [], [], None)

    def test_empty_observation_is_noop(self):
        buffer = ReplayBuffer(_surrogate(), ACCEL)
        assert buffer.ingest(PROBLEM_A, [], [], None) == 0


class TestReservoir:
    def test_capacity_bounds_hot_problems(self):
        config = ReplayConfig(
            capacity_per_problem=16, holdout_capacity_per_problem=8, holdout_every=4
        )
        buffer = ReplayBuffer(_surrogate(), ACCEL, config)
        for seed in range(5):
            mappings, batch = _priced(PROBLEM_A, 50, seed=10 + seed)
            buffer.ingest(PROBLEM_A, mappings, [float(v) for v in batch.edp], batch)
        snap = buffer.snapshot()["problems"][PROBLEM_A.name]
        assert snap["train"] == 16
        assert snap["holdout"] == 8
        assert snap["seen"] == 250

    def test_rare_problem_not_crowded_out(self):
        config = ReplayConfig(capacity_per_problem=32, holdout_every=4)
        buffer = ReplayBuffer(_surrogate(), ACCEL, config)
        hot_maps, hot_batch = _priced(PROBLEM_A, 300, seed=20)
        buffer.ingest(PROBLEM_A, hot_maps, [float(v) for v in hot_batch.edp], hot_batch)
        rare_maps, rare_batch = _priced(PROBLEM_B, 10, seed=21)
        buffer.ingest(PROBLEM_B, rare_maps, [float(v) for v in rare_batch.edp], rare_batch)
        problems = buffer.snapshot()["problems"]
        assert problems[PROBLEM_B.name]["train"] > 0
        assert problems[PROBLEM_A.name]["train"] == 32

    def test_holdout_split_deterministic_and_disjoint(self):
        """Every k-th per-problem sample goes to holdout — by construction
        the stores partition the stream, so sizes must add up exactly."""
        config = ReplayConfig(
            capacity_per_problem=1000,
            holdout_capacity_per_problem=1000,
            holdout_every=5,
        )
        buffer = ReplayBuffer(_surrogate(), ACCEL, config)
        mappings, batch = _priced(PROBLEM_A, 100, seed=30)
        buffer.ingest(PROBLEM_A, mappings, [float(v) for v in batch.edp], batch)
        assert buffer.holdout_depth == 20  # indices 0, 5, 10, ...
        assert buffer.depth == 80


class TestSampling:
    def test_minibatch_shapes(self):
        surrogate = _surrogate()
        buffer = ReplayBuffer(surrogate, ACCEL)
        mappings, batch = _priced(PROBLEM_A, 40, seed=40)
        buffer.ingest(PROBLEM_A, mappings, [float(v) for v in batch.edp], batch)
        x, y = buffer.sample(12, rng=0)
        assert x.shape == (12, surrogate.encoder.length)
        assert y.shape == (12, surrogate.codec.width)

    def test_empty_buffer_samples_none(self):
        buffer = ReplayBuffer(_surrogate(), ACCEL)
        assert buffer.sample(8, rng=0) is None

    def test_sampling_balances_problems_not_traffic(self):
        """A problem with 10x the traffic gets ~the same minibatch share."""
        buffer = ReplayBuffer(_surrogate(), ACCEL)
        hot_maps, hot_batch = _priced(PROBLEM_A, 300, seed=41)
        buffer.ingest(PROBLEM_A, hot_maps, [float(v) for v in hot_batch.edp], hot_batch)
        rare_maps, rare_batch = _priced(PROBLEM_B, 30, seed=42)
        buffer.ingest(PROBLEM_B, rare_maps, [float(v) for v in rare_batch.edp], rare_batch)
        x, _ = buffer.sample(400, rng=1)
        # Rows are identifiable by problem: the encoding starts with the
        # problem's log2 dimension-bound prefix, which differs between the
        # two shapes.
        rare_rows = buffer._train[
            [k for k in buffer._train if buffer._names[k] == PROBLEM_B.name][0]
        ]
        rare_prefix = rare_rows.x[0][:2]
        rare_share = np.mean(np.all(np.isclose(x[:, :2], rare_prefix), axis=1))
        assert 0.35 < rare_share < 0.65

    def test_invalid_batch_size(self):
        buffer = ReplayBuffer(_surrogate(), ACCEL)
        with pytest.raises(ValueError):
            buffer.sample(0)


class TestConfigValidation:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            ReplayConfig(capacity_per_problem=0)
        with pytest.raises(ValueError):
            ReplayConfig(holdout_capacity_per_problem=0)
        with pytest.raises(ValueError):
            ReplayConfig(holdout_every=1)
