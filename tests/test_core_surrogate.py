"""Tests for the differentiable surrogate: predictions, gradients, I/O."""

import numpy as np
import pytest

from repro.core import Surrogate
from repro.core.dataset import TargetCodec
from repro.core.encoding import MappingEncoder
from repro.core.normalize import Whitener


@pytest.fixture(scope="module")
def surrogate(request):
    """An untrained small surrogate with identity-ish whiteners."""
    encoder = MappingEncoder(("X", "R"), ("Input", "Filter", "Output"))
    codec = TargetCodec(n_tensors=3)
    input_whitener = Whitener(mean=np.zeros(encoder.length), std=np.ones(encoder.length))
    target_whitener = Whitener(mean=np.zeros(codec.width), std=np.ones(codec.width))
    return Surrogate.build(
        encoder, codec, input_whitener, target_whitener, "conv1d",
        hidden_layers=(16, 16), rng=0,
    )


class TestConstruction:
    def test_width_checks(self, surrogate):
        with pytest.raises(ValueError):
            Surrogate(
                network=surrogate.network,
                encoder=MappingEncoder(("X",), ("A", "B")),  # wrong input width
                codec=surrogate.codec,
                input_whitener=surrogate.input_whitener,
                target_whitener=surrogate.target_whitener,
                algorithm="conv1d",
            )


class TestPrediction:
    def test_batch_prediction_shape(self, surrogate):
        out = surrogate.predict_whitened(np.zeros((5, surrogate.encoder.length)))
        assert out.shape == (5, surrogate.codec.width)

    def test_single_row_promoted(self, surrogate):
        out = surrogate.predict_whitened(np.zeros(surrogate.encoder.length))
        assert out.shape == (1, surrogate.codec.width)

    def test_log_edp_is_energy_plus_cycles(self, surrogate):
        x = np.zeros((1, surrogate.encoder.length))
        raw = surrogate.predict_raw_targets(x)[0]
        log_edp = surrogate.predict_log2_norm_edp(x)[0]
        codec = surrogate.codec
        assert log_edp == pytest.approx(
            raw[codec.total_energy_index] + raw[codec.cycles_index]
        )


class TestInputGradient:
    def test_gradient_matches_finite_difference(self, surrogate):
        rng = np.random.default_rng(0)
        x = rng.normal(size=surrogate.encoder.length)
        objective, gradient = surrogate.objective_and_gradient(x)
        eps = 1e-6
        for index in rng.choice(len(x), size=6, replace=False):
            up = x.copy()
            up[index] += eps
            down = x.copy()
            down[index] -= eps
            fd = (
                surrogate.predict_log2_norm_edp(up)[0]
                - surrogate.predict_log2_norm_edp(down)[0]
            ) / (2 * eps)
            assert gradient[index] == pytest.approx(fd, rel=1e-4, abs=1e-6)

    def test_objective_matches_prediction(self, surrogate):
        x = np.random.default_rng(1).normal(size=surrogate.encoder.length)
        objective, _ = surrogate.objective_and_gradient(x)
        assert objective == pytest.approx(surrogate.predict_log2_norm_edp(x)[0])

    def test_gradient_respects_target_whitening(self, surrogate):
        """Scaling the target whitener's std must scale gradients."""
        x = np.random.default_rng(2).normal(size=surrogate.encoder.length)
        _, base_gradient = surrogate.objective_and_gradient(x)
        scaled = Surrogate(
            network=surrogate.network,
            encoder=surrogate.encoder,
            codec=surrogate.codec,
            input_whitener=surrogate.input_whitener,
            target_whitener=Whitener(
                mean=surrogate.target_whitener.mean,
                std=surrogate.target_whitener.std * 3.0,
            ),
            algorithm=surrogate.algorithm,
        )
        _, scaled_gradient = scaled.objective_and_gradient(x)
        np.testing.assert_allclose(scaled_gradient, base_gradient * 3.0, rtol=1e-9)


class TestMappingInterface:
    def test_whiten_and_predict_mapping(self, trained_mm, cnn_space, cnn_problem):
        mapping = cnn_space.sample(0)
        surrogate = trained_mm.surrogate
        whitened = surrogate.whiten_mapping(mapping, cnn_problem)
        assert whitened.shape == (surrogate.encoder.length,)
        edp = surrogate.predict_edp_mapping(mapping, cnn_problem)
        assert edp > 0

    def test_mapping_gradient_shape(self, trained_mm, cnn_space, cnn_problem):
        surrogate = trained_mm.surrogate
        objective, gradient = surrogate.mapping_gradient(cnn_space.sample(1), cnn_problem)
        assert np.isfinite(objective)
        assert gradient.shape == (surrogate.encoder.length,)


class TestPersistence:
    def test_save_load_roundtrip(self, trained_mm, cnn_space, cnn_problem, tmp_path):
        surrogate = trained_mm.surrogate
        path = tmp_path / "surrogate.npz"
        surrogate.save(path)
        loaded = Surrogate.load(path)
        mapping = cnn_space.sample(0)
        original = surrogate.predict_edp_mapping(mapping, cnn_problem)
        restored = loaded.predict_edp_mapping(mapping, cnn_problem)
        assert restored == pytest.approx(original)
        assert loaded.algorithm == surrogate.algorithm


class TestBatchedPaths:
    def test_objective_and_gradient_batch_matches_scalar(self, surrogate):
        rng = np.random.default_rng(3)
        inputs = rng.normal(size=(5, surrogate.encoder.length))
        values, gradients = surrogate.objective_and_gradient_batch(inputs)
        assert values.shape == (5,)
        assert gradients.shape == inputs.shape
        for row in range(5):
            value, gradient = surrogate.objective_and_gradient(inputs[row])
            assert values[row] == pytest.approx(value)
            np.testing.assert_allclose(gradients[row], gradient, rtol=1e-10)

    def test_scalar_wrapper_shapes(self, surrogate):
        rng = np.random.default_rng(4)
        x = rng.normal(size=surrogate.encoder.length)
        value, gradient = surrogate.objective_and_gradient(x)
        assert isinstance(value, float)
        assert gradient.shape == x.shape

    def test_predict_edp_many_matches_scalar(self, trained_mm, cnn_space, cnn_problem):
        mappings = cnn_space.sample_many(8, seed=2)
        batched = trained_mm.surrogate.predict_edp_many(mappings, cnn_problem)
        assert batched.shape == (8,)
        for mapping, value in zip(mappings, batched):
            assert value == pytest.approx(
                trained_mm.surrogate.predict_edp_mapping(mapping, cnn_problem)
            )

    def test_predict_edp_many_empty(self, trained_mm, cnn_problem):
        assert trained_mm.surrogate.predict_edp_many([], cnn_problem).shape == (0,)

    def test_whiten_mappings_rows_match(self, trained_mm, cnn_space, cnn_problem):
        mappings = cnn_space.sample_many(4, seed=6)
        stacked = trained_mm.surrogate.whiten_mappings(mappings, cnn_problem)
        for row, mapping in enumerate(mappings):
            np.testing.assert_array_equal(
                stacked[row],
                trained_mm.surrogate.whiten_mapping(mapping, cnn_problem),
            )
