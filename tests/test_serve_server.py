"""MappingServer: determinism, collapsing, backpressure, priority, drain."""

import threading
import time

import pytest

from repro.costmodel.accelerator import small_accelerator
from repro.engine import EngineConfig, MappingEngine, MappingRequest
from repro.serve import (
    MappingServer,
    Priority,
    ServeConfig,
    ServerClosed,
    ServerOverloaded,
)
from repro.workloads import make_conv1d

PROBLEM_A = make_conv1d("serve_a", w=32, r=5)
PROBLEM_B = make_conv1d("serve_b", w=48, r=3)


@pytest.fixture()
def engine():
    return MappingEngine(small_accelerator(), EngineConfig())


def _request(problem=PROBLEM_A, searcher="random", seed=0, tag="", iterations=15):
    return MappingRequest(
        problem, searcher=searcher, iterations=iterations, seed=seed, tag=tag
    )


class _GatedRunner:
    """Stub runner that blocks until released and records execution order."""

    def __init__(self):
        self.gate = threading.Event()
        self.order = []
        self.lock = threading.Lock()

    def __call__(self, engine, requests):
        self.gate.wait(timeout=10.0)
        with self.lock:
            self.order.extend(request.tag for request in requests)
        return [None] * len(requests)


class TestDeterminism:
    def test_batched_serving_bit_identical_to_solo(self, engine):
        """Acceptance: solo map, map_batch, and server-coalesced serving
        produce bit-identical responses per seed."""
        requests = [
            _request(problem, searcher, seed, tag=f"{searcher}/{seed}")
            for problem in (PROBLEM_A, PROBLEM_B)
            for searcher in ("random", "annealing")
            for seed in range(3)
        ]
        solo = [engine.map(request) for request in requests]
        via_batch = engine.map_batch(requests)
        with MappingServer(
            engine, ServeConfig(max_batch=16, max_wait_s=0.05, workers=2)
        ) as server:
            futures = [server.submit(request) for request in requests]
            via_server = [future.result(timeout=60) for future in futures]
        for a, b, c in zip(solo, via_batch, via_server):
            assert a.mapping == b.mapping == c.mapping
            assert a.stats == b.stats == c.stats
            assert (
                a.result.objective_values
                == b.result.objective_values
                == c.result.objective_values
            )

    def test_batches_actually_formed(self, engine):
        with MappingServer(
            engine, ServeConfig(max_batch=8, max_wait_s=0.1, workers=1)
        ) as server:
            futures = [
                server.submit(_request(seed=seed)) for seed in range(8)
            ]
            for future in futures:
                future.result(timeout=60)
            snapshot = server.metrics_snapshot()
        assert snapshot["counters"]["served"] == 8
        # Eight same-problem requests submitted together ride few batches.
        assert snapshot["batch_size"]["count"] <= 3
        assert snapshot["latency"]["p50_ms"] is not None


class TestCollapsing:
    def test_duplicate_inflight_requests_collapse(self, engine):
        config = ServeConfig(
            max_batch=16, max_wait_s=0.05, workers=1, response_cache_size=0
        )
        with MappingServer(engine, config) as server:
            first = server.submit(_request(seed=7, tag="original"))
            duplicate = server.submit(_request(seed=7, tag="duplicate"))
            distinct = server.submit(_request(seed=8, tag="distinct"))
            a = first.result(timeout=60)
            b = duplicate.result(timeout=60)
            c = distinct.result(timeout=60)
            snapshot = server.metrics_snapshot()
        assert snapshot["counters"]["collapsed"] == 1
        assert a.tag == "original" and b.tag == "duplicate"
        assert a.mapping == b.mapping and a.stats == b.stats
        assert c.mapping != a.mapping or c.stats != a.stats

    def test_response_cache_hits_across_time(self, engine):
        with MappingServer(
            engine, ServeConfig(max_batch=4, max_wait_s=0.01, workers=1)
        ) as server:
            cold = server.submit(_request(seed=3, tag="cold")).result(timeout=60)
            warm = server.submit(_request(seed=3, tag="warm")).result(timeout=60)
            snapshot = server.metrics_snapshot()
        assert snapshot["counters"]["response_cache_hits"] == 1
        assert warm.tag == "warm"
        assert warm.mapping == cold.mapping

    def test_high_priority_duplicate_flushes_the_waiting_leader(self, engine):
        """A HIGH request collapsing onto a NORMAL in-flight duplicate must
        not wait out the batching delay: the leader's group ships now."""
        with MappingServer(
            engine,
            # Leader would otherwise sit for the full 10s deadline.
            ServeConfig(max_batch=64, max_wait_s=10.0, workers=1),
        ) as server:
            started = time.monotonic()
            leader = server.submit(_request(seed=7, tag="leader"))
            urgent = server.submit(
                _request(seed=7, tag="urgent"), priority=Priority.HIGH
            )
            a = leader.result(timeout=30)
            b = urgent.result(timeout=30)
            elapsed = time.monotonic() - started
            snapshot = server.metrics_snapshot()
        assert elapsed < 5.0, "HIGH duplicate waited out the batching deadline"
        assert snapshot["counters"]["collapsed"] == 1
        assert a.mapping == b.mapping
        assert b.tag == "urgent"

    def test_unseeded_requests_never_collapse(self, engine):
        with MappingServer(
            engine, ServeConfig(max_batch=4, max_wait_s=0.01, workers=1)
        ) as server:
            futures = [
                server.submit(_request(seed=None, iterations=5))
                for _ in range(3)
            ]
            for future in futures:
                future.result(timeout=60)
            snapshot = server.metrics_snapshot()
        assert snapshot["counters"]["collapsed"] == 0
        assert snapshot["counters"]["response_cache_hits"] == 0


class TestBackpressure:
    def test_overload_rejects_with_retry_hint(self, engine):
        runner = _GatedRunner()
        server = MappingServer(
            engine,
            ServeConfig(max_batch=1, max_wait_s=0.0, max_queue=2, workers=1,
                        collapse_duplicates=False, response_cache_size=0),
            runner=runner,
        )
        try:
            server.submit(_request(seed=0, tag="a"))
            server.submit(_request(seed=1, tag="b"))
            deadline = time.monotonic() + 5.0
            rejected = None
            while time.monotonic() < deadline:
                try:
                    server.submit(_request(seed=99, tag="overflow"))
                except ServerOverloaded as error:
                    rejected = error
                    break
                time.sleep(0.005)
            assert rejected is not None, "queue never filled"
            assert rejected.retry_after_s > 0
            assert server.metrics_snapshot()["counters"]["rejected"] >= 1
        finally:
            runner.gate.set()
            server.shutdown(timeout=10.0)

    def test_collapsed_followers_count_against_admission(self, engine):
        """A duplicate-request storm can't grow follower state without
        bound: followers occupy queue slots and overflow is rejected."""
        from repro.serve.cohort import serve_batch

        gate = threading.Event()

        def gated_real_runner(engine_, reqs):
            gate.wait(timeout=10.0)
            return serve_batch(engine_, reqs)

        server = MappingServer(
            engine,
            ServeConfig(max_batch=1, max_wait_s=0.0, max_queue=3, workers=1,
                        response_cache_size=0),
            runner=gated_real_runner,
        )
        try:
            leader = server.submit(_request(seed=5, tag="leader"))
            deadline = time.monotonic() + 5.0
            rejected = None
            collapsed = 0
            while time.monotonic() < deadline and rejected is None:
                try:
                    server.submit(_request(seed=5, tag=f"dup{collapsed}"))
                    collapsed += 1
                except ServerOverloaded as error:
                    rejected = error
            assert rejected is not None, "follower growth was never bounded"
            assert collapsed <= 3  # max_queue, not arrival count, is the cap
            gate.set()
            assert leader.result(timeout=30).tag == "leader"
        finally:
            gate.set()
            server.shutdown(timeout=10.0)

    def test_priority_served_before_backlog(self, engine):
        runner = _GatedRunner()
        server = MappingServer(
            engine,
            ServeConfig(max_batch=1, max_wait_s=0.0, max_queue=64, workers=1,
                        collapse_duplicates=False, response_cache_size=0),
            runner=runner,
        )
        try:
            futures = [
                server.submit(_request(seed=i, tag=f"normal-{i}"))
                for i in range(4)
            ]
            futures.append(
                server.submit(
                    _request(seed=99, tag="urgent"), priority=Priority.HIGH
                )
            )
            runner.gate.set()
            for future in futures:
                future.result(timeout=30)
        finally:
            server.shutdown(timeout=10.0)
        # At most one normal batch was already running when "urgent"
        # arrived; everything else queued behind it must yield to HIGH.
        assert runner.order.index("urgent") <= 1


    def test_high_duplicate_promotes_already_flushed_leader(self, engine):
        """If the leader's batch already flushed into the ready queue, a
        HIGH duplicate re-keys that job ahead of the NORMAL backlog."""
        from repro.serve.cohort import serve_batch

        gate = threading.Event()
        order = []

        def gated_recording_runner(engine_, reqs):
            gate.wait(timeout=10.0)
            order.extend(r.tag for r in reqs)
            return serve_batch(engine_, reqs)

        server = MappingServer(
            engine,
            ServeConfig(max_batch=1, max_wait_s=0.0, max_queue=64, workers=1,
                        response_cache_size=0),
            runner=gated_recording_runner,
        )
        try:
            blocker = server.submit(_request(seed=0, tag="blocker"))
            backlog = [
                server.submit(_request(seed=10 + i, tag=f"normal-{i}"))
                for i in range(3)
            ]
            leader = server.submit(_request(seed=5, tag="leader"))
            urgent = server.submit(
                _request(seed=5, tag="urgent"), priority=Priority.HIGH
            )
            gate.set()
            assert urgent.result(timeout=30).tag == "urgent"
            for future in [blocker, leader] + backlog:
                future.result(timeout=30)
        finally:
            gate.set()
            server.shutdown(timeout=10.0)
        # Leader (carrying the HIGH follower) ran right after the batch
        # that was already in flight, ahead of the earlier NORMAL backlog.
        assert order.index("leader") <= 1


class TestLifecycle:
    def test_drain_serves_admitted_then_closes(self, engine):
        server = MappingServer(
            engine, ServeConfig(max_batch=8, max_wait_s=5.0, workers=1)
        )
        futures = [server.submit(_request(seed=seed)) for seed in range(3)]
        # max_wait is long: requests are still sitting in the batcher.
        assert server.drain(timeout=60.0)
        for future in futures:
            assert future.done()
            assert future.result().stats.edp > 0
        with pytest.raises(ServerClosed):
            server.submit(_request(seed=9))
        server.shutdown(timeout=10.0)

    def test_context_manager_shuts_down(self, engine):
        with MappingServer(engine, ServeConfig(workers=1)) as server:
            response = server.map(_request(seed=1), timeout=60)
            assert response.stats.edp > 0
        with pytest.raises(ServerClosed):
            server.submit(_request(seed=2))

    def test_unknown_searcher_rejected_at_admission(self, engine):
        """A bad searcher name is refused at submit, before it can be
        coalesced into (and poison) a batch of innocent requests."""
        with MappingServer(
            engine, ServeConfig(max_batch=1, max_wait_s=0.0, workers=1)
        ) as server:
            with pytest.raises(KeyError, match="no-such-searcher"):
                server.submit(
                    MappingRequest(PROBLEM_A, searcher="no-such-searcher",
                                   iterations=5, seed=0)
                )

    def test_one_poisoned_request_does_not_fail_its_batchmates(self, engine):
        """A request that passes admission but fails during preparation
        (bogus searcher config) errors alone; everything coalesced with it
        is re-run solo and succeeds."""
        with MappingServer(
            engine,
            ServeConfig(max_batch=8, max_wait_s=0.05, workers=1,
                        collapse_duplicates=False, response_cache_size=0),
        ) as server:
            good = [server.submit(_request(seed=seed)) for seed in range(3)]
            bad = server.submit(
                MappingRequest(PROBLEM_A, searcher="random", iterations=5,
                               seed=9, searcher_config={"bogus_knob": 1})
            )
            for future in good:
                assert future.result(timeout=60).stats.edp > 0
            with pytest.raises(Exception, match="bogus_knob"):
                bad.result(timeout=60)
            snapshot = server.metrics_snapshot()
        assert snapshot["counters"]["errors"] == 1
        assert snapshot["counters"]["served"] == 3

    def test_cancelled_future_does_not_kill_the_worker(self, engine):
        """cancel() on a queued request must not crash the worker thread,
        strand its batchmates, or wedge shutdown."""
        runner = _GatedRunner()
        server = MappingServer(
            engine,
            ServeConfig(max_batch=1, max_wait_s=0.0, max_queue=64, workers=1,
                        collapse_duplicates=False, response_cache_size=0),
            runner=runner,
        )
        try:
            blocker = server.submit(_request(seed=0, tag="blocker"))
            doomed = server.submit(_request(seed=1, tag="doomed"))
            survivor = server.submit(_request(seed=2, tag="survivor"))
            assert doomed.cancel()  # still queued behind the gated batch
            runner.gate.set()
            blocker.result(timeout=30)
            # The worker survived the cancelled future and kept serving.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and "survivor" not in runner.order:
                time.sleep(0.01)
            assert "survivor" in runner.order
        finally:
            assert server.shutdown(timeout=10.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ServeConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServeConfig(workers=0)
        with pytest.raises(ValueError):
            ServeConfig(response_cache_size=-1)
