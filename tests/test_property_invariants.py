"""Cross-cutting property tests: invariants that must hold for *any* valid
mapping of *any* problem.

These are the load-bearing guarantees the search stack relies on:

* every sampled mapping is valid; projection is idempotent on valid
  mappings and always lands in the space from arbitrary corruption;
* the cost model never beats the algorithmic minimum and orders memory
  traffic inner >= outer;
* the encoder round-trips exactly on valid mappings.

Run over a seed sweep on a GEMM problem (cheap) plus the CNN fixture.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MappingEncoder
from repro.costmodel import CostModel, algorithmic_minimum, default_accelerator
from repro.mapspace import MapSpace
from repro.workloads import make_gemm

ACC = default_accelerator()
GEMM = make_gemm("prop_gemm", m=96, n=160, k=288)
SPACE = MapSpace(GEMM, ACC)
MODEL = CostModel(ACC)
BOUND = algorithmic_minimum(GEMM, ACC)
ENCODER = MappingEncoder.for_problem(GEMM)


class TestSamplingInvariants:
    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=40, deadline=None)
    def test_sample_is_valid(self, seed):
        assert SPACE.is_member(SPACE.sample(seed))

    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=25, deadline=None)
    def test_projection_idempotent_on_samples(self, seed):
        mapping = SPACE.sample(seed)
        assert SPACE.project(mapping) == mapping

    @given(
        st.integers(min_value=0, max_value=10_000_000),
        st.integers(min_value=0, max_value=10_000_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_neighbor_chain_stays_valid(self, seed, move_seed):
        mapping = SPACE.sample(seed)
        rng = np.random.default_rng(move_seed)
        for _ in range(5):
            mapping = SPACE.random_neighbor(mapping, rng)
            assert SPACE.is_member(mapping)


class TestCostInvariants:
    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=30, deadline=None)
    def test_never_beats_lower_bound(self, seed):
        stats = MODEL.evaluate(SPACE.sample(seed), GEMM)
        assert stats.edp >= BOUND.edp
        assert stats.total_energy_pj >= BOUND.energy_pj
        assert stats.cycles >= BOUND.cycles

    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=30, deadline=None)
    def test_traffic_ordering(self, seed):
        stats = MODEL.evaluate(SPACE.sample(seed), GEMM)
        by_level = {
            level: sum(r.accesses for r in stats.records if r.level == level)
            for level in ("DRAM", "L2", "L1")
        }
        assert by_level["L1"] >= by_level["L2"] >= by_level["DRAM"] > 0

    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=30, deadline=None)
    def test_utilization_bounds(self, seed):
        mapping = SPACE.sample(seed)
        stats = MODEL.evaluate(mapping, GEMM)
        assert 0.0 < stats.utilization <= 1.0
        assert stats.utilization <= mapping.spatial_size / ACC.num_pes + 1e-12


class TestEncodingInvariants:
    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_identity(self, seed):
        mapping = SPACE.sample(seed)
        vector = ENCODER.encode(mapping, GEMM)
        assert ENCODER.decode(vector, SPACE) == mapping

    @given(
        st.lists(
            st.floats(min_value=-4, max_value=4, allow_nan=False),
            min_size=30,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_decode_any_vector_valid(self, values):
        # GEMM: 3 dims * 8 + 3 tensors * 2 = 30 values.
        decoded = ENCODER.decode(np.asarray(values), SPACE)
        assert SPACE.is_member(decoded)


class TestDeterminismInvariants:
    def test_cost_model_is_pure(self):
        mapping = SPACE.sample(11)
        first = MODEL.evaluate(mapping, GEMM)
        for _ in range(3):
            again = MODEL.evaluate(mapping, GEMM)
            assert again.edp == first.edp
            assert again.records == first.records

    def test_space_sampling_streams_are_stable(self):
        a = [m.tile_factors for m in SPACE.sample_many(5, seed=3)]
        b = [m.tile_factors for m in SPACE.sample_many(5, seed=3)]
        assert a == b
