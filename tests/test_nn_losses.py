"""Tests for the regression losses (Huber / MSE / MAE — Figure 7b set)."""

import numpy as np
import pytest

from repro.nn import LOSS_FUNCTIONS, Tensor, huber_loss, l1_loss, mse_loss


def _pred(values):
    return Tensor(np.asarray(values, dtype=float), requires_grad=True)


class TestMSE:
    def test_zero_at_target(self):
        assert mse_loss(_pred([1.0, 2.0]), np.array([1.0, 2.0])).item() == 0.0

    def test_value(self):
        assert mse_loss(_pred([3.0]), np.array([1.0])).item() == pytest.approx(4.0)

    def test_gradient(self):
        p = _pred([3.0])
        mse_loss(p, np.array([1.0])).backward()
        np.testing.assert_allclose(p.grad, [4.0])  # 2 * (3 - 1) / 1


class TestMAE:
    def test_value(self):
        assert l1_loss(_pred([3.0, -1.0]), np.array([1.0, 1.0])).item() == pytest.approx(2.0)

    def test_gradient_is_sign(self):
        p = _pred([3.0, -5.0])
        l1_loss(p, np.array([0.0, 0.0])).backward()
        np.testing.assert_allclose(p.grad, [0.5, -0.5])  # sign / n


class TestHuber:
    def test_quadratic_inside_delta(self):
        # residual 0.5 < delta=1: loss = 0.5 * r^2
        assert huber_loss(_pred([0.5]), np.array([0.0])).item() == pytest.approx(0.125)

    def test_linear_outside_delta(self):
        # residual 3 > delta=1: loss = 0.5 + (3 - 1) = 2.5
        assert huber_loss(_pred([3.0]), np.array([0.0])).item() == pytest.approx(2.5)

    def test_custom_delta(self):
        # delta=2, residual 3: 0.5 * 4 + 2 * (3 - 2) = 4
        assert huber_loss(_pred([3.0]), np.array([0.0]), delta=2.0).item() == pytest.approx(4.0)

    def test_gradient_saturates(self):
        p = _pred([10.0])
        huber_loss(p, np.array([0.0])).backward()
        np.testing.assert_allclose(p.grad, [1.0])  # capped at delta

    def test_gradient_linear_inside(self):
        p = _pred([0.5])
        huber_loss(p, np.array([0.0])).backward()
        np.testing.assert_allclose(p.grad, [0.5])

    def test_invalid_delta_raises(self):
        with pytest.raises(ValueError):
            huber_loss(_pred([1.0]), np.array([0.0]), delta=0.0)

    def test_tracks_mae_for_outliers(self):
        # For |r| >> delta: huber = |r| - delta/2, far below MSE's r^2.
        prediction = [10.0]
        target = np.array([0.0])
        h = huber_loss(_pred(prediction), target).item()
        m = mse_loss(_pred(prediction), target).item()
        a = l1_loss(_pred(prediction), target).item()
        assert h == pytest.approx(a - 0.5)
        assert h < m


class TestRegistry:
    def test_contains_paper_losses(self):
        assert set(LOSS_FUNCTIONS) == {"huber", "mse", "mae"}

    def test_all_callable_on_tensors(self):
        for loss in LOSS_FUNCTIONS.values():
            value = loss(_pred([1.0, 2.0]), np.array([0.0, 0.0]))
            assert value.item() > 0

    def test_accepts_tensor_target(self):
        target = Tensor(np.array([1.0]))
        assert mse_loss(_pred([1.0]), target).item() == 0.0
