"""Registry concurrency across *real* processes: racing publishes, adoption.

test_learn_registry.py simulates a foreign publisher with a second registry
instance in-process; these tests pay for actual OS processes because the
guarantees under test — exclusive ``os.link`` publish, monotonic versions,
watcher adoption — are exactly the cross-process contract the cluster's
fleet propagation rides on.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster.watcher import RegistryWatcher
from repro.costmodel.accelerator import small_accelerator
from repro.engine.engine import EngineConfig, MappingEngine
from repro.learn.registry import ModelRegistry

REPO_ROOT = Path(__file__).resolve().parent.parent


def _env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


#: Trains a tiny pipeline, signals readiness, waits for the shared "go"
#: flag (so both publishers burst at the same instant), then publishes
#: ``count`` perturbed variants and prints the version numbers it claimed.
PUBLISHER_SCRIPT = """
import json, sys, time
from pathlib import Path

import numpy as np

from repro.core import MindMappings, MindMappingsConfig, TrainingConfig
from repro.costmodel.accelerator import small_accelerator
from repro.learn.registry import ModelRegistry
from repro.workloads import make_conv1d

registry_root = Path(sys.argv[1])
flag_dir = Path(sys.argv[2])
worker = int(sys.argv[3])
count = int(sys.argv[4])

config = MindMappingsConfig(
    dataset_samples=200,
    training=TrainingConfig(hidden_layers=(8, 8), epochs=1),
)
problems = (
    make_conv1d("mp_train_a", w=8, r=2),
    make_conv1d("mp_train_b", w=12, r=3),
)
pipeline = MindMappings.train(
    "conv1d", small_accelerator(), config, problems=problems, seed=worker
)

(flag_dir / f"ready-{worker}").touch()
deadline = time.monotonic() + 120
while not (flag_dir / "go").exists():
    if time.monotonic() > deadline:
        raise SystemExit("never released")
    time.sleep(0.005)

registry = ModelRegistry(registry_root)
rng = np.random.default_rng(worker)
claimed = []
for _ in range(count):
    for parameter in pipeline.surrogate.network.parameters():
        parameter.data += rng.normal(scale=1e-4, size=parameter.data.shape)
    claimed.append(
        registry.publish(pipeline, metadata={"worker": str(worker)})
    )
print(json.dumps(claimed))
"""


def _run_publisher(registry_root, flag_dir, worker, count):
    return subprocess.Popen(
        [sys.executable, "-c", PUBLISHER_SCRIPT, str(registry_root),
         str(flag_dir), str(worker), str(count)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=_env(),
    )


@pytest.mark.slow
def test_two_processes_racing_publishes_never_clobber(tmp_path):
    """Two real processes publish simultaneously into one registry: every
    version number is claimed exactly once, every artifact is live and
    loadable, and each file's metadata names the process that won it."""
    registry_root = tmp_path / "registry"
    flag_dir = tmp_path / "flags"
    registry_root.mkdir()
    flag_dir.mkdir()
    count = 6

    workers = [
        _run_publisher(registry_root, flag_dir, worker, count)
        for worker in (1, 2)
    ]
    deadline = time.monotonic() + 180
    while not all((flag_dir / f"ready-{w}").exists() for w in (1, 2)):
        if time.monotonic() > deadline:
            for proc in workers:
                proc.kill()
            pytest.fail("publishers never trained/readied")
        time.sleep(0.01)
    (flag_dir / "go").touch()  # both burst their publishes concurrently

    claims = {}
    for worker, proc in zip((1, 2), workers):
        out, err = proc.communicate(timeout=180)
        assert proc.returncode == 0, f"publisher {worker} failed:\n{err}"
        claims[worker] = json.loads(out.strip().splitlines()[-1])

    # Every number claimed exactly once across both processes, no gaps.
    all_claims = sorted(claims[1] + claims[2])
    assert all_claims == list(range(1, 2 * count + 1)), (
        f"version race lost updates: {claims}"
    )

    # A fresh index over the directory agrees, and each artifact is
    # loadable with metadata naming its winning process.
    registry = ModelRegistry(registry_root)
    assert registry.versions("conv1d") == all_claims
    accelerator = small_accelerator()
    for worker, versions in claims.items():
        for version in versions:
            assert registry.metadata("conv1d", version)["worker"] == str(worker)
            _pipeline, loaded = registry.load("conv1d", accelerator, version)
            assert loaded == version


def test_watcher_adopts_publish_from_real_process(tmp_path):
    """The fleet-propagation contract end to end across one real process
    boundary: a publisher *process* lands a version, a watcher in this
    process refreshes, adopts, and hot-swaps it."""
    registry_root = tmp_path / "registry"
    flag_dir = tmp_path / "flags"
    registry_root.mkdir()
    flag_dir.mkdir()

    engine = MappingEngine(small_accelerator(), EngineConfig(train_seed=0))
    watcher = RegistryWatcher(engine, ModelRegistry(registry_root))
    assert watcher.poll() == []  # empty registry: nothing to adopt

    proc = _run_publisher(registry_root, flag_dir, worker=3, count=1)
    (flag_dir / "go").touch()
    out, err = proc.communicate(timeout=180)
    assert proc.returncode == 0, f"publisher failed:\n{err}"

    assert watcher.poll() == ["conv1d"]
    versions = engine.surrogate_versions()
    assert versions["conv1d"]["version"] == 1
    assert versions["conv1d"]["source"] == "registry:v1"
    meta = watcher.registry.metadata("conv1d", 1)
    assert meta["worker"] == "3"
