"""Regression guards for the concurrency/determinism bugs this linter found.

Each test reintroduces the original bug as a textual mutation of the
*real* source file and asserts the responsible rule fires — so the fix
cannot silently regress, and neither can the rule that guards it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def reanalyze_mutated(tmp_path, source_path, old, new, select):
    source = source_path.read_text(encoding="utf-8")
    assert source.count(old) == 1, f"mutation anchor drifted in {source_path}"
    mutated = tmp_path / source_path.name
    mutated.write_text(source.replace(old, new), encoding="utf-8")
    result = analyze([mutated], select=select, root=tmp_path)
    return [f.rule_id for f in result.findings]


def test_merged_tree_is_lint_clean():
    """The PR-level gate, as a test: the shipped tree has no findings."""
    result = analyze([SRC], root=REPO_ROOT)
    assert [f.render() for f in result.findings] == []
    assert result.suppressed >= 3  # the justified deliberate patterns


def test_server_ema_update_must_hold_the_lock(tmp_path):
    # The original bug: _execute updated _service_ema_s without the lock
    # while _retry_after_locked read it under the lock.
    fired = reanalyze_mutated(
        tmp_path,
        SRC / "serve" / "server.py",
        "            with self._lock:\n"
        "                self._service_ema_s += 0.2 * (per_request - self._service_ema_s)",
        "            self._service_ema_s += 0.2 * (per_request - self._service_ema_s)",
        select=["RPR001"],
    )
    assert "RPR001" in fired


def test_registry_scan_must_run_under_the_lock(tmp_path):
    # The original bug: refresh()'s rescan helper was named _scan, so its
    # writes to _versions/_highwater looked (and in __init__ were) lock-free.
    source = (SRC / "learn" / "registry.py").read_text(encoding="utf-8")
    mutated = tmp_path / "registry.py"
    mutated.write_text(source.replace("_scan_locked", "_scan"), encoding="utf-8")
    result = analyze([mutated], select=["RPR001"], root=tmp_path)
    assert "RPR001" in [f.rule_id for f in result.findings]


def test_registry_scan_must_sort_directory_listing(tmp_path):
    fired = reanalyze_mutated(
        tmp_path,
        SRC / "learn" / "registry.py",
        "for path in sorted(self.root.iterdir()):",
        "for path in self.root.iterdir():",
        select=["RPR104"],
    )
    assert fired == ["RPR104"]


@pytest.mark.parametrize(
    "relpath",
    [
        "serve/server.py",
        "serve/http.py",
        "learn/registry.py",
        "cluster/router.py",
        "cluster/rpc.py",
    ],
)
def test_triaged_modules_stay_clean(relpath):
    result = analyze([SRC / relpath], root=REPO_ROOT)
    assert [f.render() for f in result.findings] == []


def test_registry_scan_is_order_independent(tmp_path):
    """Behavioral half of the RPR104 fix: the index is identical no
    matter what order artifacts were created in."""
    from repro.learn.registry import ModelRegistry

    layouts = (
        ["algo-v000001.npz", "algo-v000003.npz", "algo-v000002.npz"],
        ["algo-v000002.npz", "algo-v000001.npz", "algo-v000003.npz"],
    )
    indexes = []
    for i, names in enumerate(layouts):
        root = tmp_path / f"reg{i}"
        root.mkdir()
        for name in names:
            (root / name).write_bytes(b"")
        registry = ModelRegistry(root)
        indexes.append(registry.latest_version("algo"))
    assert indexes[0] == indexes[1] == 3
