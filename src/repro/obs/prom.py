"""Prometheus text exposition for the JSON metrics snapshots.

The serving stack's native metrics surface is a nested JSON snapshot
(:meth:`repro.serve.metrics.MetricsRegistry.snapshot`, or the cluster
router's fleet view).  This module renders either shape into Prometheus
text format 0.0.4 so a scraper can hit ``/v1/metrics?format=prom``:

* counters  -> ``repro_<name>_total``
* latency   -> a ``summary`` (``quantile`` label + ``_count``/``_sum``)
* batch size -> a ``histogram`` (cumulative ``le`` buckets)
* label dimensions -> ``repro_served_by_algorithm_total{algorithm="..."}``
  and ``repro_served_by_problem_total{problem="<fingerprint>"}``
* fleet snapshots -> every per-shard series re-rendered under a
  ``{shard="N"}`` label — per-shard behavior stays visible instead of
  being flattened into fleet sums.
* SLO state -> ``repro_slo_alert_state{slo="..."}`` (0/1/2 for
  ok/warning/page), ``repro_slo_error_budget_remaining{slo="..."}``, and
  ``repro_slo_burn_rate{slo="...",window="fast"|"slow"}``.
* latest complete time-series window -> non-cumulative
  ``repro_window_rate{counter="served"}`` per-second gauges and
  ``repro_window_latency_p99_seconds``.

Rendering is pure (snapshot dict in, text out): no clocks, no state, so
the module trivially satisfies the RPR105 clock-injection rule.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: (metric name without prefix, label dict, numeric value)
Sample = Tuple[str, Dict[str, str], float]

#: Explicit metric types where the ``_total`` suffix rule is not enough.
_SUMMARY_METRICS = ("request_latency_seconds", "router_request_latency_seconds")
_HISTOGRAM_METRICS = ("batch_size",)

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_label_value(value: object) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))  # type: ignore[arg-type]


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{escape_label_value(labels[key])}"'
                     for key in sorted(labels))
    return "{" + inner + "}"


def _metric_type(name: str) -> str:
    base = name
    for suffix in ("_count", "_sum", "_bucket"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
            break
    if base in _SUMMARY_METRICS:
        return "summary"
    if base in _HISTOGRAM_METRICS:
        return "histogram"
    return "counter" if name.endswith("_total") else "gauge"


def _counter_samples(counters: Dict[str, object], labels: Dict[str, str],
                     prefix: str = "") -> List[Sample]:
    samples: List[Sample] = []
    for name in sorted(counters):
        value = counters[name]
        if isinstance(value, (int, float)):
            samples.append((f"{prefix}{name}_total", labels, value))
    return samples


def _latency_samples(latency: Dict[str, object], labels: Dict[str, str],
                     metric: str = "request_latency_seconds") -> List[Sample]:
    samples: List[Sample] = []
    count = latency.get("count", 0)
    samples.append((f"{metric}_count", labels, count))  # type: ignore[arg-type]
    mean_ms = latency.get("mean_ms")
    if isinstance(mean_ms, (int, float)) and isinstance(count, int):
        samples.append((f"{metric}_sum", labels, mean_ms / 1e3 * count))
    for quantile, key in (("0.5", "p50_ms"), ("0.95", "p95_ms"),
                          ("0.99", "p99_ms")):
        value = latency.get(key)
        if isinstance(value, (int, float)):
            samples.append((metric, dict(labels, quantile=quantile),
                            value / 1e3))
    return samples


def _bucket_bound(key: str) -> Optional[float]:
    if key.startswith("<="):
        try:
            return float(key[2:])
        except ValueError:
            return None
    return None  # the ">top" overflow bucket folds into +Inf


def _histogram_samples(hist: Dict[str, object], labels: Dict[str, str],
                       metric: str = "batch_size") -> List[Sample]:
    samples: List[Sample] = []
    count = hist.get("count", 0)
    buckets = hist.get("buckets", {})
    bounded: List[Tuple[float, int]] = []
    if isinstance(buckets, dict):
        for key in sorted(buckets, key=lambda k: (_bucket_bound(k) is None,
                                                  _bucket_bound(k) or 0.0)):
            bound = _bucket_bound(key)
            if bound is not None:
                bounded.append((bound, int(buckets[key])))  # type: ignore[arg-type]
    cumulative = 0
    for bound, bucket_count in bounded:
        cumulative += bucket_count
        samples.append((f"{metric}_bucket", dict(labels, le=_fmt(bound)),
                        cumulative))
    samples.append((f"{metric}_bucket", dict(labels, le="+Inf"), count))  # type: ignore[arg-type]
    samples.append((f"{metric}_count", labels, count))  # type: ignore[arg-type]
    mean = hist.get("mean")
    if isinstance(mean, (int, float)) and isinstance(count, int):
        samples.append((f"{metric}_sum", labels, mean * count))
    return samples


def _label_dimension_samples(label_dims: Dict[str, object],
                             labels: Dict[str, str]) -> List[Sample]:
    """``labels`` snapshot section -> one labeled counter per dimension."""
    dimension_label = {"served_by_algorithm": "algorithm",
                       "served_by_problem": "problem"}
    samples: List[Sample] = []
    for dimension in sorted(label_dims):
        series = label_dims[dimension]
        if not isinstance(series, dict):
            continue
        label_name = dimension_label.get(dimension, "key")
        for key in sorted(series):
            value = series[key]
            if isinstance(value, (int, float)):
                samples.append((f"{dimension}_total",
                                dict(labels, **{label_name: str(key)}),
                                value))
    return samples


#: Alert state -> numeric gauge value (``repro_slo_alert_state``).
_STATE_VALUES = {"ok": 0, "warning": 1, "page": 2}


def _slo_samples(slo: Dict[str, object],
                 labels: Dict[str, str]) -> List[Sample]:
    """The ``slo`` snapshot section -> per-objective burn/budget gauges."""
    samples: List[Sample] = []
    entries = slo.get("slos")
    if not isinstance(entries, list):
        return samples
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        slo_labels = dict(labels, slo=str(entry.get("name")))
        state = _STATE_VALUES.get(str(entry.get("state")))
        if state is not None:
            samples.append(("slo_alert_state", slo_labels, state))
        budget = entry.get("budget_remaining")
        if isinstance(budget, (int, float)):
            samples.append(("slo_error_budget_remaining", slo_labels, budget))
        for window, key in (("fast", "burn_fast"), ("slow", "burn_slow")):
            burn = entry.get(key)
            if isinstance(burn, (int, float)):
                samples.append(("slo_burn_rate",
                                dict(slo_labels, window=window), burn))
    return samples


def _timeseries_samples(window: Dict[str, object],
                        labels: Dict[str, str]) -> List[Sample]:
    """The latest-window ``timeseries`` section -> per-counter rate gauges
    (non-cumulative: the newest complete window's deltas per second)."""
    samples: List[Sample] = []
    rates = window.get("rates")
    if isinstance(rates, dict):
        for name in sorted(rates):
            value = rates[name]
            if isinstance(value, (int, float)):
                samples.append(("window_rate",
                                dict(labels, counter=str(name)), value))
    latency = window.get("latency")
    if isinstance(latency, dict):
        p99 = latency.get("p99_ms")
        if isinstance(p99, (int, float)):
            samples.append(("window_latency_p99_seconds", labels, p99 / 1e3))
    return samples


def server_samples(snapshot: Dict[str, object],
                   labels: Optional[Dict[str, str]] = None) -> List[Sample]:
    """Samples for a single-server (MetricsRegistry-shaped) snapshot."""
    labels = dict(labels or {})
    samples: List[Sample] = []
    for gauge_key, metric in (("uptime_s", "uptime_seconds"),
                              ("throughput_rps", "throughput_rps"),
                              ("queue_depth", "queue_depth")):
        value = snapshot.get(gauge_key)
        if isinstance(value, (int, float)):
            samples.append((metric, labels, value))
    counters = snapshot.get("counters")
    if isinstance(counters, dict):
        samples.extend(_counter_samples(counters, labels))
    latency = snapshot.get("latency")
    if isinstance(latency, dict):
        samples.extend(_latency_samples(latency, labels))
    batch = snapshot.get("batch_size")
    if isinstance(batch, dict):
        samples.extend(_histogram_samples(batch, labels))
    label_dims = snapshot.get("labels")
    if isinstance(label_dims, dict):
        samples.extend(_label_dimension_samples(label_dims, labels))
    cache = snapshot.get("oracle_cache")
    if isinstance(cache, dict):
        for key in sorted(cache):
            value = cache[key]
            if isinstance(value, (int, float)):
                metric = ("oracle_cache_size" if key == "size"
                          else f"oracle_cache_{key}_total")
                samples.append((metric, labels, value))
    slo = snapshot.get("slo")
    if isinstance(slo, dict):
        samples.extend(_slo_samples(slo, labels))
    window = snapshot.get("timeseries")
    if isinstance(window, dict):
        samples.extend(_timeseries_samples(window, labels))
    return samples


def router_samples(snapshot: Dict[str, object]) -> List[Sample]:
    """Samples for a cluster fleet snapshot: router series, fleet sums,
    and — the point — every shard's series under a ``shard`` label."""
    samples: List[Sample] = []
    for gauge_key, metric in (("uptime_s", "uptime_seconds"),
                              ("throughput_rps", "throughput_rps"),
                              ("queue_depth", "queue_depth")):
        value = snapshot.get(gauge_key)
        if isinstance(value, (int, float)):
            samples.append((metric, {}, value))
    router = snapshot.get("router")
    if isinstance(router, dict):
        counters = router.get("counters")
        if isinstance(counters, dict):
            samples.extend(_counter_samples(counters, {}, prefix="router_"))
        latency = router.get("latency")
        if isinstance(latency, dict):
            samples.extend(_latency_samples(
                latency, {}, metric="router_request_latency_seconds"))
    fleet = snapshot.get("fleet")
    if isinstance(fleet, dict):
        counters = fleet.get("counters")
        if isinstance(counters, dict):
            samples.extend(_counter_samples(counters, {}, prefix="fleet_"))
    shards = snapshot.get("shards")
    if isinstance(shards, dict):
        for shard_id in sorted(shards):
            shard = shards[shard_id]
            label = {"shard": str(shard_id)}
            if isinstance(shard, dict) and "counters" in shard:
                samples.append(("shard_up", label, 1))
                samples.extend(server_samples(shard, labels=label))
            else:
                samples.append(("shard_up", label, 0))
    return samples


def render_samples(samples: Iterable[Sample], prefix: str = "repro") -> str:
    """Group samples by metric and render with one TYPE line per family."""
    by_metric: Dict[str, List[Sample]] = {}
    order: List[str] = []
    for name, labels, value in samples:
        family = name
        for suffix in ("_count", "_sum", "_bucket"):
            if family.endswith(suffix):
                family = family[: -len(suffix)]
                break
        if family not in by_metric:
            by_metric[family] = []
            order.append(family)
        by_metric[family].append((name, labels, value))
    lines: List[str] = []
    for family in order:
        lines.append(f"# TYPE {prefix}_{family} {_metric_type(family)}")
        for name, labels, value in by_metric[family]:
            lines.append(f"{prefix}_{name}{_labels_text(labels)} "
                         f"{_fmt(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_prometheus(snapshot: Dict[str, object],
                      prefix: str = "repro") -> str:
    """Render a server or fleet JSON snapshot as Prometheus text."""
    if isinstance(snapshot.get("shards"), dict):
        return render_samples(router_samples(snapshot), prefix=prefix)
    return render_samples(server_samples(snapshot), prefix=prefix)


__all__ = [
    "CONTENT_TYPE",
    "Sample",
    "escape_label_value",
    "render_prometheus",
    "render_samples",
    "router_samples",
    "server_samples",
]
