"""Bounded ring buffer of structured operational events.

Metrics answer "how much"; traces answer "where did this request go";
events answer "what *happened*" — the discrete state changes an operator
greps for first: a surrogate swap published, a gate rejection, a shard
respawn, a failover hop, a 429.  Each event is a small dict with a
monotonic sequence number, an injected-clock timestamp, a ``kind`` tag,
and free-form fields; the buffer is bounded so an event storm can never
grow memory.

Emitters across the stack write to the **process-default log** (one per
OS process — each cluster shard has its own; the router merges them via
the ``events`` RPC op).  Tests swap the default with
:func:`set_default_log` to observe emissions in isolation.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.trace import Clock, MonotonicClock

#: Event kinds emitted by the stack (docs/OBSERVABILITY.md catalogs them).
KNOWN_KINDS = (
    "failover",
    "gate_rejected",
    "overloaded",
    "shard_down",
    "shard_respawned",
    "slo_page",
    "slo_recovered",
    "slo_warning",
    "swap_published",
)


class EventLog:
    """Thread-safe bounded event buffer (newest ``capacity`` retained)."""

    def __init__(self, capacity: int = 512,
                 clock: Optional[Clock] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, object]] = deque(maxlen=self.capacity)

    def emit(self, kind: str, **fields: object) -> Dict[str, object]:
        if kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; the catalog in KNOWN_KINDS "
                f"and the emitters must not drift apart"
            )
        event: Dict[str, object] = {
            "seq": next(self._seq),
            "ts_s": self.clock(),
            "kind": str(kind),
            "fields": fields,
        }
        with self._lock:
            self._events.append(event)
        return event

    def snapshot(self, kind: Optional[str] = None,
                 limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Oldest-first copies of retained events, optionally filtered by
        ``kind`` and truncated to the newest ``limit``."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        if limit is not None and limit >= 0:
            events = events[len(events) - min(limit, len(events)):]
        return [dict(e, fields=dict(e["fields"])) for e in events]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_DEFAULT_LOG = EventLog()


def default_log() -> EventLog:
    return _DEFAULT_LOG


def set_default_log(log: EventLog) -> EventLog:
    """Replace the process-default log (tests); returns the previous one."""
    global _DEFAULT_LOG
    previous = _DEFAULT_LOG
    _DEFAULT_LOG = log
    return previous


def emit(kind: str, **fields: object) -> Dict[str, object]:
    """Emit to the process-default log."""
    return _DEFAULT_LOG.emit(kind, **fields)


def snapshot(kind: Optional[str] = None,
             limit: Optional[int] = None) -> List[Dict[str, object]]:
    """Snapshot the process-default log."""
    return _DEFAULT_LOG.snapshot(kind=kind, limit=limit)


__all__ = [
    "EventLog",
    "KNOWN_KINDS",
    "default_log",
    "emit",
    "set_default_log",
    "snapshot",
]
