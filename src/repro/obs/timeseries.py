"""Rolling time-series telemetry: a bounded ring of fixed-interval windows.

The metrics registry answers "how much since boot"; this module answers
"how much *per second, right now*".  Time is cut into fixed-interval
windows keyed by an injected :class:`~repro.obs.trace.Clock`; each window
accumulates

* **counter deltas** — a :class:`MetricsSampler` periodically pulls a
  cumulative counter snapshot and attributes the delta since its previous
  pull to the current window, so ``delta / interval`` is a rate;
* **a latency digest** — count/sum/min/max plus a fixed log2 bucket
  histogram (approximate p50/p95/p99 by in-bucket interpolation) and
  *exact* over-threshold counts for every registered SLO threshold;
* **batch-size stats** — count/sum/max of flushed batch sizes.

The ring is bounded (``capacity`` windows, oldest evicted) and windows
with no observations simply do not exist — an absent window reads as
zero activity, which keeps idle periods free.  Everything is driven by
the one injected clock, so tests roll windows with
:class:`~repro.obs.trace.FakeClock` and never sleep; the only real-time
component is the optional sampler thread, which merely *calls*
:meth:`MetricsSampler.sample` on a cadence.

Like the rest of :mod:`repro.obs`, this module imports nothing from the
rest of ``repro`` — the serving and cluster layers feed it, never the
other way around.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.trace import Clock, MonotonicClock

#: Latency histogram bounds (seconds): 0.5ms doubling to ~262s.  Fixed so
#: every window digests into the same buckets and windows are mergeable.
LATENCY_BUCKET_BOUNDS_S: Tuple[float, ...] = tuple(
    0.0005 * 2.0 ** k for k in range(20)
)

_QUANTILE_KEYS = ((0.50, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms"))


class LatencyDigest:
    """Per-window latency summary: moments + log2 histogram + thresholds.

    Not thread-safe on its own — the owning ring serializes access.
    ``thresholds`` maps a caller-chosen key (an SLO name) to a bound in
    seconds; :meth:`observe` counts observations *strictly above* each
    bound, which gives SLO trackers exact per-window bad-event counts
    instead of histogram approximations.
    """

    __slots__ = ("count", "sum_s", "min_s", "max_s", "buckets", "over")

    def __init__(self) -> None:
        self.count = 0
        self.sum_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0
        self.buckets = [0] * (len(LATENCY_BUCKET_BOUNDS_S) + 1)
        self.over: Dict[str, int] = {}

    def observe(self, seconds: float,
                thresholds: Mapping[str, float]) -> None:
        seconds = float(seconds)
        self.count += 1
        self.sum_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)
        index = len(LATENCY_BUCKET_BOUNDS_S)
        for i, bound in enumerate(LATENCY_BUCKET_BOUNDS_S):
            if seconds <= bound:
                index = i
                break
        self.buckets[index] += 1
        for key in sorted(thresholds):
            if seconds > thresholds[key]:
                self.over[key] = self.over.get(key, 0) + 1

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile (seconds) by in-bucket interpolation."""
        if not self.count:
            return None
        rank = max(math.ceil(q * self.count), 1)
        cumulative = 0
        for i, bucket_count in enumerate(self.buckets):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                upper = (LATENCY_BUCKET_BOUNDS_S[i]
                         if i < len(LATENCY_BUCKET_BOUNDS_S) else self.max_s)
                lower = LATENCY_BUCKET_BOUNDS_S[i - 1] if i > 0 else 0.0
                fraction = (rank - cumulative) / bucket_count
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min_s), self.max_s)
            cumulative += bucket_count
        return self.max_s

    def snapshot(self) -> Dict[str, object]:
        if not self.count:
            return {"count": 0}
        payload: Dict[str, object] = {
            "count": self.count,
            "mean_ms": self.sum_s / self.count * 1e3,
            "min_ms": self.min_s * 1e3,
            "max_ms": self.max_s * 1e3,
        }
        for q, key in _QUANTILE_KEYS:
            value = self.quantile(q)
            payload[key] = None if value is None else value * 1e3
        if self.over:
            payload["over_threshold"] = {key: self.over[key]
                                         for key in sorted(self.over)}
        return payload


class _Window:
    """One fixed-interval window's accumulators (guarded by the ring lock)."""

    __slots__ = ("index", "start_s", "counters", "gauges", "latency",
                 "batch_count", "batch_sum", "batch_max")

    def __init__(self, index: int, start_s: float) -> None:
        self.index = index
        self.start_s = start_s
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.latency = LatencyDigest()
        self.batch_count = 0
        self.batch_sum = 0
        self.batch_max = 0


class TimeseriesRing:
    """Thread-safe bounded ring of fixed-interval telemetry windows.

    All timestamps come from the injected ``clock``; the window an
    observation lands in is ``floor((now - epoch) / interval)`` where
    ``epoch`` is the clock reading at construction.  The newest
    ``capacity`` windows are retained.
    """

    def __init__(self, interval_s: float = 1.0, capacity: int = 180,
                 clock: Optional[Clock] = None) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._epoch = self.clock()
        self._lock = threading.Lock()
        self._windows: "OrderedDict[int, _Window]" = OrderedDict()
        self._thresholds: Dict[str, float] = {}
        self._last_cumulative: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Registration + hot-path feeds
    # ------------------------------------------------------------------

    def register_threshold(self, key: str, threshold_s: float) -> None:
        """Track exact per-window counts of latencies above ``threshold_s``
        under ``key`` (idempotent; SLO trackers register their bounds)."""
        with self._lock:
            self._thresholds[str(key)] = float(threshold_s)

    def window_index(self, now: Optional[float] = None) -> int:
        if now is None:
            now = self.clock()
        return int((now - self._epoch) // self.interval_s)

    def _window_locked(self, now: float) -> _Window:
        index = self.window_index(now)
        window = self._windows.get(index)
        if window is None:
            window = _Window(index, self._epoch + index * self.interval_s)
            self._windows[index] = window
            while len(self._windows) > self.capacity:
                self._windows.popitem(last=False)
        return window

    def observe_latency(self, seconds: float,
                        now: Optional[float] = None) -> None:
        if now is None:
            now = self.clock()
        with self._lock:
            self._window_locked(now).latency.observe(seconds, self._thresholds)

    def observe_batch(self, size: int, now: Optional[float] = None) -> None:
        if now is None:
            now = self.clock()
        size = int(size)
        with self._lock:
            window = self._window_locked(now)
            window.batch_count += 1
            window.batch_sum += size
            window.batch_max = max(window.batch_max, size)

    def record_counters(self, cumulative: Mapping[str, float],
                        now: Optional[float] = None) -> None:
        """Attribute deltas of a *cumulative* counter snapshot (vs the
        previous call) to the current window.  Negative deltas (a counter
        reset upstream) are clamped to zero rather than corrupting rates."""
        if now is None:
            now = self.clock()
        with self._lock:
            window = self._window_locked(now)
            for name in sorted(cumulative):
                value = float(cumulative[name])
                delta = value - self._last_cumulative.get(name, 0.0)
                self._last_cumulative[name] = value
                if delta > 0:
                    window.counters[name] = window.counters.get(name, 0.0) + delta

    def record_gauges(self, gauges: Mapping[str, float],
                      now: Optional[float] = None) -> None:
        """Record point-in-time gauges (last sample in the window wins)."""
        if now is None:
            now = self.clock()
        with self._lock:
            window = self._window_locked(now)
            for name in sorted(gauges):
                window.gauges[name] = float(gauges[name])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def totals(self, horizon_s: float,
               now: Optional[float] = None) -> Dict[str, object]:
        """Aggregate the windows covering the last ``horizon_s`` seconds:
        summed counter deltas, latency count, and over-threshold counts.
        The SLO tracker's one read."""
        if now is None:
            now = self.clock()
        first = self.window_index(now - max(horizon_s - self.interval_s, 0.0))
        counters: Dict[str, float] = {}
        latency_count = 0
        over: Dict[str, int] = {}
        with self._lock:
            for index, window in self._windows.items():
                if index < first or index > self.window_index(now):
                    continue
                for name, delta in window.counters.items():
                    counters[name] = counters.get(name, 0.0) + delta
                latency_count += window.latency.count
                for key, count in window.latency.over.items():
                    over[key] = over.get(key, 0) + count
        return {"counters": counters, "latency_count": latency_count,
                "over_threshold": over}

    def _window_snapshot_locked(self, window: _Window,
                                now: float) -> Dict[str, object]:
        end_s = window.start_s + self.interval_s
        complete = now >= end_s
        elapsed = self.interval_s if complete else max(now - window.start_s,
                                                       1e-9)
        return {
            "index": window.index,
            "start_s": window.start_s,
            "end_s": end_s,
            "complete": complete,
            "counters": {name: window.counters[name]
                         for name in sorted(window.counters)},
            "rates": {name: window.counters[name] / elapsed
                      for name in sorted(window.counters)},
            "gauges": {name: window.gauges[name]
                       for name in sorted(window.gauges)},
            "latency": window.latency.snapshot(),
            "batch": {
                "count": window.batch_count,
                "mean": (window.batch_sum / window.batch_count
                         if window.batch_count else None),
                "max": window.batch_max,
            },
        }

    def snapshot(self, metric: Optional[str] = None,
                 windows: Optional[int] = None,
                 now: Optional[float] = None) -> Dict[str, object]:
        """The ``/v1/timeseries`` body: newest-last window dicts.

        ``windows`` truncates to the most recent N; ``metric`` projects a
        dotted path (``"rates.served"``, ``"latency.p95_ms"``) into a
        compact ``{"index", "start_s", "end_s", "complete", "value"}``
        series.  Unknown paths raise ``KeyError`` (the gateway maps that
        to 400).
        """
        if now is None:
            now = self.clock()
        with self._lock:
            rendered = [self._window_snapshot_locked(window, now)
                        for window in self._windows.values()]
        rendered.sort(key=lambda w: w["index"])
        if windows is not None:
            if windows < 0:
                raise ValueError(f"windows must be >= 0, got {windows}")
            rendered = rendered[len(rendered) - min(windows, len(rendered)):]
        payload: Dict[str, object] = {
            "interval_s": self.interval_s,
            "capacity": self.capacity,
            "now_s": now,
        }
        if metric is None:
            payload["windows"] = rendered
            return payload
        series = []
        for window in rendered:
            value: object = window
            for part in str(metric).split("."):
                if not isinstance(value, dict) or part not in value:
                    raise KeyError(
                        f"unknown metric path {metric!r} "
                        f"(no {part!r} component)"
                    )
                value = value[part]
            series.append({"index": window["index"],
                           "start_s": window["start_s"],
                           "end_s": window["end_s"],
                           "complete": window["complete"],
                           "value": value})
        payload["metric"] = str(metric)
        payload["series"] = series
        return payload

    def latest_rates(self, now: Optional[float] = None) -> Dict[str, object]:
        """The newest *complete* window's rates + latency digest (falling
        back to the partial current window), for Prometheus gauges."""
        if now is None:
            now = self.clock()
        with self._lock:
            candidates = sorted(self._windows)
            chosen: Optional[_Window] = None
            for index in reversed(candidates):
                window = self._windows[index]
                if now >= window.start_s + self.interval_s:
                    chosen = window
                    break
            if chosen is None and candidates:
                chosen = self._windows[candidates[-1]]
            if chosen is None:
                return {}
            return self._window_snapshot_locked(chosen, now)


class MetricsSampler:
    """Pulls cumulative snapshots into a ring on a cadence, then notifies.

    ``sample_fn`` returns ``(counters, gauges)`` — cumulative counter
    values and point-in-time gauges.  Each :meth:`sample` records both
    into the ring and then calls every ``listener`` (SLO trackers hook
    their ``evaluate`` here, so burn rates advance exactly when fresh
    windows do).  :meth:`start` runs ``sample`` on a daemon thread every
    ``interval_s`` of *real* time; deterministic tests skip ``start`` and
    call ``sample`` themselves under a fake clock.
    """

    def __init__(
        self,
        sample_fn: Callable[[], Tuple[Mapping[str, float], Mapping[str, float]]],
        ring: TimeseriesRing,
        listeners: Sequence[Callable[[], object]] = (),
        interval_s: float = 0.5,
        clock: Optional[Clock] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self._sample_fn = sample_fn
        self._ring = ring
        self._listeners = list(listeners)
        self.interval_s = float(interval_s)
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._samples = 0
        self._sample_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def samples(self) -> int:
        return self._samples

    def add_listener(self, listener: Callable[[], object]) -> None:
        self._listeners.append(listener)

    def sample(self) -> None:
        """One pull: record counters + gauges, then notify listeners.

        The pull-and-record pair runs under a sampler lock: the
        background thread and gateway reads both call this, and an
        interleaved stale snapshot recorded *after* a newer one would
        rewind the ring's cumulative baseline and re-count the same
        increment into the next delta.  Listeners run outside the lock
        (they serialize on their own locks).
        """
        with self._sample_lock:
            now = self.clock()
            counters, gauges = self._sample_fn()
            self._ring.record_counters(counters, now=now)
            if gauges:
                self._ring.record_gauges(gauges, now=now)
            self._samples += 1
        for listener in self._listeners:
            listener()

    def start(self) -> "MetricsSampler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(timeout=self.interval_s):
            try:
                self.sample()
            except Exception:  # noqa: BLE001 — telemetry must never kill serving
                continue

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None


__all__ = [
    "LATENCY_BUCKET_BOUNDS_S",
    "LatencyDigest",
    "MetricsSampler",
    "TimeseriesRing",
]
