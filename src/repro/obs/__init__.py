"""repro.obs — tracing, events, and Prometheus exposition.

The observability substrate for the serving stack: per-request span trees
with stage-attributed latency (:mod:`repro.obs.trace`), a bounded buffer
of structured operational events (:mod:`repro.obs.events`), and Prometheus
text rendering of the JSON metrics snapshots (:mod:`repro.obs.prom`).

This package deliberately imports **nothing** from the rest of ``repro``
so every layer — costmodel kernels, serve, cluster, learn — can
instrument itself without import cycles.  ``python -m repro.obs
--selftest`` proves a traced request through a real server (and a real
2-shard cluster) produces a complete, well-nested span tree.
"""

from repro.obs.events import (
    EventLog,
    KNOWN_KINDS,
    default_log,
    emit,
    set_default_log,
    snapshot,
)
from repro.obs.prom import render_prometheus
from repro.obs.trace import (
    Clock,
    FakeClock,
    MonotonicClock,
    Span,
    TraceHandle,
    Tracer,
    activate,
    current_handles,
    span,
    span_tree,
)

__all__ = [
    "Clock",
    "EventLog",
    "FakeClock",
    "KNOWN_KINDS",
    "MonotonicClock",
    "Span",
    "TraceHandle",
    "Tracer",
    "activate",
    "current_handles",
    "default_log",
    "emit",
    "render_prometheus",
    "set_default_log",
    "snapshot",
    "span",
    "span_tree",
]
