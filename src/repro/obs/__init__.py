"""repro.obs — tracing, events, time-series, SLOs, profiling, Prometheus.

The observability substrate for the serving stack: per-request span trees
with stage-attributed latency (:mod:`repro.obs.trace`), a bounded buffer
of structured operational events (:mod:`repro.obs.events`), rolling
fixed-interval telemetry windows (:mod:`repro.obs.timeseries`),
declarative SLOs with burn-rate alerting (:mod:`repro.obs.slo`), a
continuous sampling profiler (:mod:`repro.obs.profile`), and Prometheus
text rendering of the JSON metrics snapshots (:mod:`repro.obs.prom`).

This package deliberately imports **nothing** from the rest of ``repro``
so every layer — costmodel kernels, serve, cluster, learn — can
instrument itself without import cycles.  ``python -m repro.obs
--selftest`` proves a traced request through a real server (and a real
2-shard cluster) produces a complete, well-nested span tree and that a
latency SLO breach drives the burn-rate state machine to page.
"""

from repro.obs.events import (
    EventLog,
    KNOWN_KINDS,
    default_log,
    emit,
    set_default_log,
    snapshot,
)
from repro.obs.profile import SamplingProfiler, span_hotspots
from repro.obs.prom import render_prometheus
from repro.obs.slo import DEFAULT_SLOS, SLOSpec, SLOTracker, worst_state
from repro.obs.timeseries import MetricsSampler, TimeseriesRing
from repro.obs.trace import (
    Clock,
    FakeClock,
    MonotonicClock,
    Span,
    TraceHandle,
    Tracer,
    activate,
    current_handles,
    span,
    span_tree,
)

__all__ = [
    "Clock",
    "DEFAULT_SLOS",
    "EventLog",
    "FakeClock",
    "KNOWN_KINDS",
    "MetricsSampler",
    "MonotonicClock",
    "SLOSpec",
    "SLOTracker",
    "SamplingProfiler",
    "Span",
    "TimeseriesRing",
    "TraceHandle",
    "Tracer",
    "activate",
    "current_handles",
    "default_log",
    "emit",
    "render_prometheus",
    "set_default_log",
    "snapshot",
    "span",
    "span_hotspots",
    "span_tree",
]
