"""Observability entry point: ``python -m repro.obs --selftest`` is the
CI smoke gate for tracing + telemetry.

Part 1 drives one traced request through a real HTTP gateway and checks
the contract end to end: the response carries a ``trace_id``, ``GET
/v1/trace/<id>`` returns a complete well-nested span tree whose stage
breakdown sums (within slack) to the root span's wall time, ``GET
/v1/metrics?format=prom`` renders Prometheus text exposition, and
flooding a ``max_queue=1`` server surfaces ``overloaded`` events at
``GET /v1/events``.

Part 2 brings up a real 2-shard cluster (separate processes, socket
RPC) and checks cross-process propagation: a routed request's merged
tree nests ``cluster.request`` -> ``shard.rpc`` -> ``serve.request`` ->
``cohort.round`` -> ``megabatch.kernel``, with the shard's spans carrying
the shard process's pid.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request

from repro.costmodel.accelerator import small_accelerator
from repro.engine.engine import EngineConfig, MappingEngine, MappingRequest
from repro.serve.codec import request_to_dict
from repro.serve.http import start_gateway
from repro.serve.server import MappingServer, ServeConfig, ServerOverloaded
from repro.workloads.conv1d import make_conv1d


def _check(condition: bool, message: str) -> None:
    """Assertion that survives ``python -O`` (the selftest is a CI gate)."""
    if not condition:
        raise RuntimeError(f"selftest check failed: {message}")


def _post(url: str, payload: dict) -> dict:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=120) as reply:
        return json.loads(reply.read())


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as reply:
        return json.loads(reply.read())


def _get_text(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as reply:
        return reply.read().decode("utf-8")


def _assert_well_nested(snapshot: dict) -> None:
    """Every non-root span's parent exists; same-pid children sit inside
    their parent's interval (cross-pid clocks are not comparable)."""
    spans = {s["span_id"]: s for s in snapshot["spans"]}
    for s in snapshot["spans"]:
        parent_id = s["parent_id"]
        if parent_id is None:
            continue
        _check(parent_id in spans, f"orphan span {s['name']}")
        parent = spans[parent_id]
        if parent["pid"] != s["pid"]:
            continue
        _check(s["start"] >= parent["start"] - 1e-9,
               f"span {s['name']} starts before its parent")
        if s["end"] is not None and parent["end"] is not None:
            _check(s["end"] <= parent["end"] + 1e-9,
                   f"span {s['name']} outlives its parent")


def _tree_path(node: dict, names: list) -> bool:
    """True when some root-to-leaf walk visits ``names`` in order (gaps
    allowed: intermediate spans may sit between the named ones)."""
    if not names:
        return True
    remaining = names[1:] if node["span"]["name"] == names[0] else names
    if not remaining:
        return True
    return any(_tree_path(child, remaining) for child in node["children"])


def _selftest_server(say) -> None:
    engine = MappingEngine(small_accelerator(), EngineConfig())
    problem = make_conv1d("obs_selftest", w=32, r=5)
    server = MappingServer(
        engine, ServeConfig(max_batch=8, max_wait_s=0.02)
    )
    gateway = start_gateway(server)
    say(f"gateway listening at {gateway.address}")
    try:
        request = MappingRequest(
            problem, searcher="random", iterations=40, seed=1, tag="traced"
        )
        reply = _post(
            f"{gateway.address}/v1/map", {"request": request_to_dict(request)}
        )
        response = reply["response"]
        trace_id = response.get("trace_id", "")
        _check(bool(trace_id), "served response carries no trace_id")

        trace = _get(f"{gateway.address}/v1/trace/{trace_id}")
        names = [s["name"] for s in trace["spans"]]
        _check(names[0] == "serve.request", f"root span is {names[0]}")
        for expected in ("admission", "megabatch.kernel", "finalize"):
            _check(expected in names, f"no {expected} span in {names}")
        _assert_well_nested(trace)
        root = trace["spans"][0]
        wall = root["end"] - root["start"]
        total = sum(trace["stages"].values())
        slack = max(0.25 * wall, 0.05)
        _check(abs(total - wall) <= slack,
               f"stage sum {total:.4f}s vs root wall {wall:.4f}s "
               f"(slack {slack:.4f}s)")
        _check(trace["stages"] == response["stages"],
               "trace stages != response stages")
        say(f"traced request: {len(names)} spans, well nested; "
            f"stages sum {total * 1e3:.1f}ms vs wall {wall * 1e3:.1f}ms")

        prom_text = _get_text(f"{gateway.address}/v1/metrics?format=prom")
        _check("# TYPE repro_served_total counter" in prom_text,
               "prometheus exposition missing repro_served_total TYPE line")
        _check("repro_served_total 1" in prom_text,
               "repro_served_total sample not rendered")
        say("prometheus exposition renders "
            f"({len(prom_text.splitlines())} lines)")

        # Flood a max_queue=1 server (its runner parked on an event) until
        # admission rejects; the rejection must surface as an event.
        release = threading.Event()

        def parked_runner(engine_, requests):
            release.wait(timeout=30)
            from repro.serve.cohort import serve_batch
            return serve_batch(engine_, requests)

        tiny = MappingServer(
            engine,
            ServeConfig(max_batch=1, max_wait_s=0.0, max_queue=1, workers=1,
                        collapse_duplicates=False, response_cache_size=0),
            runner=parked_runner,
        )
        rejections = 0
        futures = []
        try:
            for seed in range(8):
                probe = MappingRequest(
                    problem, searcher="random", iterations=10, seed=seed,
                    tag=f"flood/{seed}",
                )
                try:
                    futures.append(tiny.submit(probe))
                except ServerOverloaded:
                    rejections += 1
        finally:
            release.set()
            tiny.shutdown(timeout=30.0)
        _check(rejections >= 1, "flood produced no ServerOverloaded")
        events = _get(f"{gateway.address}/v1/events?kind=overloaded")
        _check(len(events["events"]) >= rejections,
               f"{rejections} rejections but "
               f"{len(events['events'])} overloaded events")
        say(f"backpressure: {rejections} rejections surfaced at /v1/events")
    finally:
        gateway.shutdown()
        _check(server.shutdown(timeout=30.0), "drain timed out")


def _selftest_cluster(say) -> None:
    from repro.cluster.router import ClusterConfig, ClusterRouter

    config = ClusterConfig(
        num_shards=2,
        accelerator=small_accelerator(),
        engine=EngineConfig(),
        serve=ServeConfig(max_batch=8, max_wait_s=0.02),
        health_interval_s=0.2,
    )
    router = ClusterRouter(config)
    spawn_started = time.perf_counter()  # repro: ignore[RPR105] -- CLI progress timing, not traced state
    router.start()
    say(f"2 shards up in {time.perf_counter() - spawn_started:.1f}s")  # repro: ignore[RPR105] -- CLI progress timing, not traced state
    try:
        problem = make_conv1d("obs_selftest_cluster", w=24, r=3)
        request = MappingRequest(
            problem, searcher="random", iterations=40, seed=2, tag="routed"
        )
        response = router.submit(request).result(timeout=120)
        _check(bool(response.trace_id), "routed response carries no trace_id")
        _check("router_overhead_s" in response.stages,
               "merged stages miss router_overhead_s")
        _check("kernel_s" in response.stages,
               "shard stages (kernel_s) did not propagate to the router")

        trace = router.trace_snapshot(response.trace_id)
        _check(trace is not None, "router kept no trace for the response")
        _assert_well_nested(trace)
        [tree] = trace["tree"]
        _check(
            _tree_path(tree, ["cluster.request", "shard.rpc",
                              "serve.request", "cohort.round",
                              "megabatch.kernel"]),
            "merged tree does not nest cluster.request -> shard.rpc -> "
            "serve.request -> cohort.round -> megabatch.kernel",
        )
        pids = {s["pid"] for s in trace["spans"]}
        _check(len(pids) == 2,
               f"expected router + shard pids in one tree, got {pids}")
        say(f"routed trace merged across {len(pids)} processes: "
            f"{len(trace['spans'])} spans nest "
            "cluster.request -> shard.rpc -> serve.request -> "
            "cohort.round -> megabatch.kernel")

        kinds = {e["kind"] for e in router.events_snapshot()}
        say(f"fleet event log reachable ({sorted(kinds) or 'empty'})")
    except BaseException:
        router.shutdown(timeout=10)
        raise
    _check(router.shutdown(timeout=60), "cluster drain timed out")


def selftest(verbose: bool = True) -> int:
    started = time.perf_counter()  # repro: ignore[RPR105] -- CLI progress timing, not traced state

    def say(message: str) -> None:
        if verbose:
            print(f"[obs-selftest] {message}")

    _selftest_server(say)
    _selftest_cluster(say)
    say(f"PASS in {time.perf_counter() - started:.1f}s")  # repro: ignore[RPR105] -- CLI progress timing, not traced state
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Tracing + telemetry selftest for the serving stack.",
    )
    parser.add_argument("--selftest", action="store_true",
                        help="run the end-to-end tracing smoke test (CI gate)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    args = parser.parse_args(argv)
    if not args.selftest:
        parser.print_help()
        return 2
    return selftest(verbose=not args.quiet)


if __name__ == "__main__":
    sys.exit(main())
