"""Observability entry point: ``python -m repro.obs --selftest`` is the
CI smoke gate for tracing + telemetry.

Part 1 drives one traced request through a real HTTP gateway and checks
the contract end to end: the response carries a ``trace_id``, ``GET
/v1/trace/<id>`` returns a complete well-nested span tree whose stage
breakdown sums (within slack) to the root span's wall time, ``GET
/v1/metrics?format=prom`` renders Prometheus text exposition, and
flooding a ``max_queue=1`` server surfaces ``overloaded`` events at
``GET /v1/events``.

Part 2 brings up a real 2-shard cluster (separate processes, socket
RPC) and checks cross-process propagation: a routed request's merged
tree nests ``cluster.request`` -> ``shard.rpc`` -> ``serve.request`` ->
``cohort.round`` -> ``megabatch.kernel``, with the shard's spans carrying
the shard process's pid.  It then skews all traffic onto one shard under
an unmeetable latency SLO and checks the fleet ``/v1/slo`` view (through
a real gateway) attributes the burn to exactly that shard, with the
shard annotated in ``health_snapshot()``.

Part 3 is the SLO/time-series/profiler gate on a single server behind a
real gateway: good traffic (response-cache hits) followed by a stream of
threshold-breaching requests must drive the burn-rate state machine
``ok -> warning -> page`` with matching ``slo_warning``/``slo_page``
events at ``/v1/events``; ``/v1/timeseries`` per-window counter deltas
must sum to the cumulative counters; ``/v1/profile`` collapsed stacks
must contain the megabatch kernel frame; and an unknown ``?kind=`` must
be a 400 carrying the ``KNOWN_KINDS`` catalog.

``python -m repro.obs --profile`` runs a seeded workload under the
sampling profiler and prints the top-k span hotspots plus collapsed
stacks (flamegraph-ready).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request

from repro.costmodel.accelerator import small_accelerator
from repro.engine.engine import EngineConfig, MappingEngine, MappingRequest
from repro.obs.events import KNOWN_KINDS
from repro.obs.slo import SLOSpec
from repro.serve.codec import request_to_dict
from repro.serve.http import start_gateway
from repro.serve.server import MappingServer, ServeConfig, ServerOverloaded
from repro.workloads.conv1d import make_conv1d


def _check(condition: bool, message: str) -> None:
    """Assertion that survives ``python -O`` (the selftest is a CI gate)."""
    if not condition:
        raise RuntimeError(f"selftest check failed: {message}")


def _post(url: str, payload: dict) -> dict:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=120) as reply:
        return json.loads(reply.read())


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as reply:
        return json.loads(reply.read())


def _get_text(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as reply:
        return reply.read().decode("utf-8")


def _assert_well_nested(snapshot: dict) -> None:
    """Every non-root span's parent exists; same-pid children sit inside
    their parent's interval (cross-pid clocks are not comparable)."""
    spans = {s["span_id"]: s for s in snapshot["spans"]}
    for s in snapshot["spans"]:
        parent_id = s["parent_id"]
        if parent_id is None:
            continue
        _check(parent_id in spans, f"orphan span {s['name']}")
        parent = spans[parent_id]
        if parent["pid"] != s["pid"]:
            continue
        _check(s["start"] >= parent["start"] - 1e-9,
               f"span {s['name']} starts before its parent")
        if s["end"] is not None and parent["end"] is not None:
            _check(s["end"] <= parent["end"] + 1e-9,
                   f"span {s['name']} outlives its parent")


def _tree_path(node: dict, names: list) -> bool:
    """True when some root-to-leaf walk visits ``names`` in order (gaps
    allowed: intermediate spans may sit between the named ones)."""
    if not names:
        return True
    remaining = names[1:] if node["span"]["name"] == names[0] else names
    if not remaining:
        return True
    return any(_tree_path(child, remaining) for child in node["children"])


def _selftest_server(say) -> None:
    engine = MappingEngine(small_accelerator(), EngineConfig())
    problem = make_conv1d("obs_selftest", w=32, r=5)
    server = MappingServer(
        engine, ServeConfig(max_batch=8, max_wait_s=0.02)
    )
    gateway = start_gateway(server)
    say(f"gateway listening at {gateway.address}")
    try:
        request = MappingRequest(
            problem, searcher="random", iterations=40, seed=1, tag="traced"
        )
        reply = _post(
            f"{gateway.address}/v1/map", {"request": request_to_dict(request)}
        )
        response = reply["response"]
        trace_id = response.get("trace_id", "")
        _check(bool(trace_id), "served response carries no trace_id")

        trace = _get(f"{gateway.address}/v1/trace/{trace_id}")
        names = [s["name"] for s in trace["spans"]]
        _check(names[0] == "serve.request", f"root span is {names[0]}")
        for expected in ("admission", "megabatch.kernel", "finalize"):
            _check(expected in names, f"no {expected} span in {names}")
        _assert_well_nested(trace)
        root = trace["spans"][0]
        wall = root["end"] - root["start"]
        total = sum(trace["stages"].values())
        slack = max(0.25 * wall, 0.05)
        _check(abs(total - wall) <= slack,
               f"stage sum {total:.4f}s vs root wall {wall:.4f}s "
               f"(slack {slack:.4f}s)")
        _check(trace["stages"] == response["stages"],
               "trace stages != response stages")
        say(f"traced request: {len(names)} spans, well nested; "
            f"stages sum {total * 1e3:.1f}ms vs wall {wall * 1e3:.1f}ms")

        prom_text = _get_text(f"{gateway.address}/v1/metrics?format=prom")
        _check("# TYPE repro_served_total counter" in prom_text,
               "prometheus exposition missing repro_served_total TYPE line")
        _check("repro_served_total 1" in prom_text,
               "repro_served_total sample not rendered")
        say("prometheus exposition renders "
            f"({len(prom_text.splitlines())} lines)")

        # Flood a max_queue=1 server (its runner parked on an event) until
        # admission rejects; the rejection must surface as an event.
        release = threading.Event()

        def parked_runner(engine_, requests):
            release.wait(timeout=30)
            from repro.serve.cohort import serve_batch
            return serve_batch(engine_, requests)

        tiny = MappingServer(
            engine,
            ServeConfig(max_batch=1, max_wait_s=0.0, max_queue=1, workers=1,
                        collapse_duplicates=False, response_cache_size=0),
            runner=parked_runner,
        )
        rejections = 0
        futures = []
        try:
            for seed in range(8):
                probe = MappingRequest(
                    problem, searcher="random", iterations=10, seed=seed,
                    tag=f"flood/{seed}",
                )
                try:
                    futures.append(tiny.submit(probe))
                except ServerOverloaded:
                    rejections += 1
        finally:
            release.set()
            tiny.shutdown(timeout=30.0)
        _check(rejections >= 1, "flood produced no ServerOverloaded")
        events = _get(f"{gateway.address}/v1/events?kind=overloaded")
        _check(len(events["events"]) >= rejections,
               f"{rejections} rejections but "
               f"{len(events['events'])} overloaded events")
        say(f"backpressure: {rejections} rejections surfaced at /v1/events")
    finally:
        gateway.shutdown()
        _check(server.shutdown(timeout=30.0), "drain timed out")


def _selftest_cluster(say) -> None:
    from repro.cluster.router import ClusterConfig, ClusterRouter

    # Every shard runs under an unmeetable latency objective (100ns) so
    # the shard that receives traffic burns its budget immediately; the
    # idle shard must stay ``ok`` — that asymmetry is the attribution
    # the fleet /v1/slo view has to get right.
    burn_spec = SLOSpec(
        name="shard_latency",
        kind="latency",
        objective=0.9,
        threshold_s=1e-7,
        window_s=60.0,
        fast_window_s=1.0,
        slow_window_s=10.0,
        warning_burn=1.5,
        page_burn=5.0,
        clear_evals=5,
    )
    config = ClusterConfig(
        num_shards=2,
        accelerator=small_accelerator(),
        engine=EngineConfig(),
        serve=ServeConfig(max_batch=8, max_wait_s=0.02,
                          slos=(burn_spec,), sample_interval_s=0.2),
        health_interval_s=0.2,
    )
    router = ClusterRouter(config)
    spawn_started = time.perf_counter()  # repro: ignore[RPR105] -- CLI progress timing, not traced state
    router.start()
    say(f"2 shards up in {time.perf_counter() - spawn_started:.1f}s")  # repro: ignore[RPR105] -- CLI progress timing, not traced state
    try:
        problem = make_conv1d("obs_selftest_cluster", w=24, r=3)
        request = MappingRequest(
            problem, searcher="random", iterations=40, seed=2, tag="routed"
        )
        response = router.submit(request).result(timeout=120)
        _check(bool(response.trace_id), "routed response carries no trace_id")
        _check("router_overhead_s" in response.stages,
               "merged stages miss router_overhead_s")
        _check("kernel_s" in response.stages,
               "shard stages (kernel_s) did not propagate to the router")

        trace = router.trace_snapshot(response.trace_id)
        _check(trace is not None, "router kept no trace for the response")
        _assert_well_nested(trace)
        [tree] = trace["tree"]
        _check(
            _tree_path(tree, ["cluster.request", "shard.rpc",
                              "serve.request", "cohort.round",
                              "megabatch.kernel"]),
            "merged tree does not nest cluster.request -> shard.rpc -> "
            "serve.request -> cohort.round -> megabatch.kernel",
        )
        pids = {s["pid"] for s in trace["spans"]}
        _check(len(pids) == 2,
               f"expected router + shard pids in one tree, got {pids}")
        say(f"routed trace merged across {len(pids)} processes: "
            f"{len(trace['spans'])} spans nest "
            "cluster.request -> shard.rpc -> serve.request -> "
            "cohort.round -> megabatch.kernel")

        kinds = {e["kind"] for e in router.events_snapshot()}
        say(f"fleet event log reachable ({sorted(kinds) or 'empty'})")

        # Fleet SLO attribution: drive more traffic at the same problem
        # (consistent hashing pins it to one shard) and read the fleet
        # /v1/slo view through a real gateway until the burn is pinned on
        # exactly that shard.
        target = str(router.shard_for(request))
        gateway = start_gateway(router)
        try:
            snap: dict = {}
            for attempt in range(30):
                probe = MappingRequest(
                    problem, searcher="random", iterations=20,
                    seed=50 + attempt, tag=f"burn/{attempt}",
                )
                router.submit(probe).result(timeout=120)
                snap = _get(f"{gateway.address}/v1/slo")
                if target in snap["fleet"]["burning_shards"]:
                    break
            _check(snap["fleet"]["burning_shards"] == [target],
                   f"burn attributed to {snap['fleet']['burning_shards']}, "
                   f"expected exactly [{target!r}]")
            per_shard = snap["fleet"]["by_slo"]["shard_latency"]["per_shard"]
            _check(per_shard.get(target) in ("warning", "page"),
                   f"offending shard {target} reads {per_shard.get(target)}")
            _check(all(state == "ok" for shard_id, state in per_shard.items()
                       if shard_id != target),
                   f"idle shard not ok: {per_shard}")
            _check(snap["worst_state"] != "ok",
                   "fleet worst_state ignores a burning shard")
            health = _get(f"{gateway.address}/v1/healthz")
            _check(target in health["slo"]["burning_shards"],
                   "health snapshot does not annotate the burning shard")
            fleet_kinds = {e["kind"] for e in router.events_snapshot()}
            _check({"slo_warning", "slo_page"} & fleet_kinds,
                   f"no SLO transition events in the fleet log ({fleet_kinds})")
            say(f"fleet /v1/slo pins the burn on shard {target} "
                f"(state {per_shard.get(target)}); idle shard stays ok; "
                "healthz carries the burning-shard annotation")
        finally:
            gateway.shutdown()
    except BaseException:
        router.shutdown(timeout=10)
        raise
    _check(router.shutdown(timeout=60), "cluster drain timed out")


def _selftest_slo(say) -> None:
    """Part 3: the SLO + time-series + profiler contract on one server."""
    engine = MappingEngine(small_accelerator(), EngineConfig())
    problem = make_conv1d("obs_selftest_slo", w=32, r=5)
    # An unmeetable 100ns objective: every real search is a bad event,
    # while response-cache hits observe 0.0s and count as good — that
    # asymmetry lets the test shape the bad fraction precisely.
    spec = SLOSpec(
        name="selftest_latency",
        kind="latency",
        objective=0.9,
        threshold_s=1e-7,
        window_s=60.0,
        fast_window_s=0.5,
        slow_window_s=30.0,
        warning_burn=1.5,
        page_burn=5.0,
        clear_evals=3,
    )
    server = MappingServer(
        engine,
        ServeConfig(
            max_batch=8,
            max_wait_s=0.01,
            slos=(spec,),
            timeseries_interval_s=0.25,
            timeseries_capacity=1024,
            # Quiet the background sampler: every evaluation below is
            # driven by a /v1/slo or /v1/timeseries read, so the state
            # path the test observes is the complete state path.
            sample_interval_s=60.0,
            profiling=True,
            profile_interval_s=0.002,
        ),
    )
    gateway = start_gateway(server)
    say(f"slo gateway listening at {gateway.address}")
    try:
        # Phase 1 — good traffic.  One real request (bad), then identical
        # re-submissions served from the response cache at 0.0s observed
        # latency (good): the slow window starts ~97% good.
        leader = MappingRequest(
            problem, searcher="random", iterations=10, seed=7, tag="slo/good"
        )
        payload = {"request": request_to_dict(leader)}
        for _ in range(31):
            _post(f"{gateway.address}/v1/map", payload)
        snap = _get(f"{gateway.address}/v1/slo")
        entry = snap["slos"][0]
        _check(entry["name"] == spec.name, f"unexpected SLO {entry['name']}")
        _check(entry["state"] == "ok",
               f"expected ok after good traffic, got {entry['state']}")

        # Phase 2 — sustained breach.  Distinct seeds defeat the cache,
        # so every request is a real (bad) search; evaluating after each
        # one walks the slow-window bad fraction up smoothly, and the
        # state machine must pass through warning on its way to page.
        states_seen = ["ok"]
        for seed in range(200):
            bad = MappingRequest(
                problem, searcher="random", iterations=10,
                seed=100 + seed, tag=f"slo/bad/{seed}",
            )
            _post(f"{gateway.address}/v1/map",
                  {"request": request_to_dict(bad)})
            snap = _get(f"{gateway.address}/v1/slo")
            state = snap["slos"][0]["state"]
            if state != states_seen[-1]:
                states_seen.append(state)
            if state == "page":
                break
        _check(states_seen == ["ok", "warning", "page"],
               f"alert state path {states_seen} != ['ok', 'warning', 'page']")
        _check(snap["slos"][0]["budget_remaining"] < 1.0,
               "page state with an unspent error budget")
        say(f"burn-rate state machine walked {' -> '.join(states_seen)} "
            f"(budget remaining {snap['slos'][0]['budget_remaining']:.3f})")

        # The transitions must be in the event ring, in order.
        events = _get(f"{gateway.address}/v1/events")["events"]
        seqs = {}
        for event in events:
            if event["kind"].startswith("slo_") \
                    and event["fields"].get("slo") == spec.name:
                seqs.setdefault(event["kind"], event["seq"])
        _check("slo_warning" in seqs and "slo_page" in seqs,
               f"missing SLO transition events (got {sorted(seqs)})")
        _check(seqs["slo_warning"] < seqs["slo_page"],
               f"slo_warning (seq {seqs['slo_warning']}) did not precede "
               f"slo_page (seq {seqs['slo_page']})")
        say("slo_warning and slo_page events landed in /v1/events in order")

        # Time-series consistency: the per-window "served" deltas are
        # non-cumulative, so they must sum back to the cumulative counter.
        series = _get(
            f"{gateway.address}/v1/timeseries?metric=counters.served"
        )["series"]
        _check(len(series) >= 2,
               f"expected multiple windows, got {len(series)}")
        summed = sum(point["value"] for point in series)
        metrics = _get(f"{gateway.address}/v1/metrics")
        served = metrics["counters"]["served"]
        _check(abs(summed - served) < 1e-9,
               f"window deltas sum to {summed}, cumulative served {served}")
        say(f"/v1/timeseries window deltas over {len(series)} windows "
            f"sum to the cumulative counter ({served})")

        # Contract checks: unknown event kinds and metric paths are 400s.
        try:
            _get(f"{gateway.address}/v1/events?kind=bogus")
        except urllib.error.HTTPError as error:
            _check(error.code == 400, f"unknown kind gave {error.code}")
            body = json.loads(error.read())
            _check(body["known_kinds"] == list(KNOWN_KINDS),
                   "400 body does not carry the KNOWN_KINDS catalog")
        else:
            _check(False, "unknown event kind was not rejected")
        try:
            _get(f"{gateway.address}/v1/timeseries?metric=bogus.path")
        except urllib.error.HTTPError as error:
            _check(error.code == 400, f"unknown metric gave {error.code}")
        else:
            _check(False, "unknown metric path was not rejected")
        say("unknown ?kind= and ?metric= reject as 400 with the catalog")

        # Profiler: the cross-problem megabatch kernel only runs when one
        # flushed batch spans distinct problems, so submit concurrent
        # heavy requests over two problems and retry until the sampler
        # catches ``evaluate_megabatch`` in a collapsed stack
        # (statistically guaranteed, not per-sample deterministic).
        problems = (problem, make_conv1d("obs_selftest_slo_b", w=48, r=7))
        found = False
        for attempt in range(20):
            futures = [
                server.submit(MappingRequest(
                    problems[i % 2], searcher="random", iterations=400,
                    seed=1000 + attempt * 8 + i,
                    tag=f"slo/heavy/{attempt}/{i}",
                ))
                for i in range(4)
            ]
            for future in futures:
                future.result(timeout=300)
            profile = _get(f"{gateway.address}/v1/profile?limit=200")
            _check(profile["enabled"], "profiling enabled but not reported")
            stacks = [row["stack"] for row in profile["profiler"]["collapsed"]]
            if any("evaluate_megabatch" in stack for stack in stacks):
                found = True
                break
        _check(found, "megabatch kernel frame never appeared in "
                      "collapsed stacks")
        hotspot_names = {row["name"] for row in profile["hotspots"]}
        _check("megabatch.kernel" in hotspot_names,
               f"span hotspots miss megabatch.kernel ({hotspot_names})")
        _check(profile["profiler"]["samples"] > 0, "profiler took no samples")
        say(f"profiler caught evaluate_megabatch after {attempt + 1} "
            f"round(s) ({profile['profiler']['samples']} samples, "
            f"{profile['profiler']['distinct_stacks']} distinct stacks)")
    finally:
        gateway.shutdown()
        _check(server.shutdown(timeout=30.0), "slo server drain timed out")


def selftest(verbose: bool = True) -> int:
    started = time.perf_counter()  # repro: ignore[RPR105] -- CLI progress timing, not traced state

    def say(message: str) -> None:
        if verbose:
            print(f"[obs-selftest] {message}")

    _selftest_server(say)
    _selftest_cluster(say)
    _selftest_slo(say)
    say(f"PASS in {time.perf_counter() - started:.1f}s")  # repro: ignore[RPR105] -- CLI progress timing, not traced state
    return 0


def run_profile(requests: int = 6, iterations: int = 300,
                top: int = 20) -> int:
    """``--profile``: run a seeded workload under the sampling profiler
    and print the span hotspot table + collapsed stacks."""
    engine = MappingEngine(small_accelerator(), EngineConfig())
    # Two problems so concurrent batches exercise the cross-problem
    # megabatch kernel, which is exactly the frame worth profiling.
    problems = (make_conv1d("profile_demo_a", w=32, r=5),
                make_conv1d("profile_demo_b", w=48, r=7))
    server = MappingServer(
        engine,
        ServeConfig(max_batch=8, max_wait_s=0.01,
                    profiling=True, profile_interval_s=0.002),
    )
    try:
        futures = [
            server.submit(MappingRequest(
                problems[seed % 2], searcher="random", iterations=iterations,
                seed=seed, tag=f"profile/{seed}",
            ))
            for seed in range(max(requests, 1))
        ]
        for future in futures:
            future.result(timeout=300)
        snapshot = server.profile_snapshot(limit=top)
    finally:
        server.shutdown(timeout=30.0)
    profiler = snapshot.get("profiler", {})
    print(f"# sampling profiler: {profiler.get('samples', 0)} samples, "
          f"{profiler.get('distinct_stacks', 0)} distinct stacks "
          f"(interval {profiler.get('interval_s', 0.0) * 1e3:.1f}ms)")
    print("#")
    print(f"# top {top} span hotspots by self time")
    print(f"# {'self_s':>10}  {'count':>6}  name (problem)")
    for row in snapshot.get("hotspots", []):
        suffix = f" ({row['problem']})" if row.get("problem") else ""
        print(f"  {row['self_s']:>10.4f}  {row['count']:>6}  "
              f"{row['name']}{suffix}")
    print("#")
    print("# collapsed stacks (flamegraph.pl-compatible)")
    for row in profiler.get("collapsed", []):
        print(f"{row['stack']} {row['count']}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Tracing + telemetry selftest for the serving stack.",
    )
    parser.add_argument("--selftest", action="store_true",
                        help="run the end-to-end tracing smoke test (CI gate)")
    parser.add_argument("--profile", action="store_true",
                        help="profile a seeded workload; print hotspot "
                             "tables + collapsed stacks")
    parser.add_argument("--requests", type=int, default=6,
                        help="--profile: number of requests to serve")
    parser.add_argument("--iterations", type=int, default=300,
                        help="--profile: search iterations per request")
    parser.add_argument("--top", type=int, default=20,
                        help="--profile: rows in the hotspot/stack tables")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    args = parser.parse_args(argv)
    if args.profile:
        return run_profile(requests=args.requests,
                           iterations=args.iterations, top=args.top)
    if not args.selftest:
        parser.print_help()
        return 2
    return selftest(verbose=not args.quiet)


if __name__ == "__main__":
    sys.exit(main())
