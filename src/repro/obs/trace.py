"""Lightweight request tracing: spans, stage accounting, ambient context.

The serving stack spans six layers (gateway -> server -> batcher -> cohort
-> oracle -> megabatch kernel, optionally behind the cluster router), and a
slow request can lose its time in any of them.  This module gives every
request a **trace**: a tree of timed spans plus a small per-stage duration
breakdown (``admission_wait_s``, ``batch_wait_s``, ``prewarm_s``,
``kernel_s``, ``search_rounds_s``, ``finalize_s``) that sums — within
scheduling slack — to the request's observed wall latency.

Design constraints, in order:

1. **Near-zero cost when idle.**  The ambient :func:`span` helper is a
   couple of attribute reads when no trace is active, so the oracle and
   cohort hot paths can be instrumented unconditionally.
2. **Deterministic and lint-clean.**  All timestamps come from an injected
   :class:`Clock` (tests run on :class:`FakeClock`); ids come from a
   process-scoped counter, not ``random``/wall-clock, so the module passes
   RPR101/RPR102 and the new RPR105 clock-injection rule.
3. **Cross-process composition.**  A span tree is just a list of dicts;
   :meth:`Tracer.ingest` merges spans exported by a shard process into the
   router's record of the same ``trace_id``, and span ids embed the origin
   pid so within-process interval nesting stays checkable after a merge.

Threading model: a :class:`TraceHandle` is driven by one thread at a time
(submit thread, then the batch worker — the batcher queue provides the
happens-before edge), so handle-local state (span stack, stages) is
unlocked.  The :class:`Tracer`'s trace store is shared with gateway reader
threads and guarded by a single leaf lock.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: A clock is any zero-argument callable returning seconds as a float.
Clock = Callable[[], float]


class MonotonicClock:
    """The one real clock: every production component injects this.

    Wrapping ``time.monotonic`` in a class (rather than passing the
    function around) gives the RPR105 lint a single audited call site and
    tests a drop-in seam (:class:`FakeClock`).
    """

    __slots__ = ()

    def __call__(self) -> float:
        # repro: ignore[RPR105] -- the one real clock read every injected Clock wraps
        return time.monotonic()


class FakeClock:
    """Deterministic manual clock for tests: starts at ``start``, moves
    only via :meth:`advance`."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot move a clock backwards ({seconds})")
        self._now += seconds
        return self._now


@dataclass
class Span:
    """One timed operation inside a trace.

    ``end`` is ``None`` while the span is open.  ``pid`` records the
    process that produced the span: timestamps are only comparable within
    one process (each uses its own monotonic base), so tree checks compare
    intervals parent-vs-child only when pids match.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: Optional[float] = None
    pid: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=(None if payload.get("parent_id") is None
                       else str(payload["parent_id"])),
            name=str(payload["name"]),
            start=float(payload["start"]),  # type: ignore[arg-type]
            end=(None if payload.get("end") is None
                 else float(payload["end"])),  # type: ignore[arg-type]
            pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
            attrs=dict(payload.get("attrs", {})),  # type: ignore[arg-type]
        )


class _TraceRecord:
    """Everything the tracer keeps per trace_id (guarded by Tracer._lock)."""

    __slots__ = ("spans", "order", "links", "stages")

    def __init__(self) -> None:
        self.spans: Dict[str, Span] = {}
        self.order: List[str] = []
        self.links: List[str] = []
        self.stages: Dict[str, float] = {}


class TraceHandle:
    """Mutable view of one in-flight trace, driven by the request's thread.

    The handle owns the request's *stage* accumulators and its open-span
    stack; all span storage goes through the tracer (which locks).  After
    :meth:`finish`, further spans/stages are dropped — this is what keeps
    duplicate-collapse followers from accruing the leader's later work.
    """

    __slots__ = ("tracer", "trace_id", "root_id", "stages", "_stack",
                 "_closed")

    def __init__(self, tracer: "Tracer", trace_id: str, root_id: str) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.root_id = root_id
        self.stages: Dict[str, float] = {}
        self._stack: List[str] = [root_id]
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def now(self) -> float:
        return self.tracer.clock()

    def open_span(self, name: str, parent_id: Optional[str] = None,
                  start: Optional[float] = None,
                  **attrs: object) -> Optional[str]:
        """Open a child span; returns its id (``None`` once finished).

        ``start`` lets batch layers open one span per member from a single
        shared clock read instead of re-reading per member.
        """
        if self._closed:
            return None
        if parent_id is None:
            parent_id = self._stack[-1] if self._stack else self.root_id
        span = self.tracer._new_span(self.trace_id, name, parent_id,
                                     self.now() if start is None else start,
                                     attrs)
        if span is None:
            return None
        self._stack.append(span.span_id)
        return span.span_id

    def close_span(self, span_id: Optional[str],
                   stage: Optional[str] = None, end: Optional[float] = None,
                   **attrs: object) -> None:
        if span_id is None or self._closed:
            return
        if end is None:
            end = self.now()
        duration = self.tracer._close_span(self.trace_id, span_id, end, attrs)
        if span_id in self._stack:
            self._stack.remove(span_id)
        if stage is not None and duration is not None:
            self.add_stage(stage, duration)

    def record(self, name: str, start: float, end: float,
               stage: Optional[str] = None, parent_id: Optional[str] = None,
               **attrs: object) -> Optional[str]:
        """Add an already-completed span retroactively (e.g. queue waits
        whose start happened before the trace's worker picked it up).
        Parents under the currently open span (the root when none)."""
        if self._closed:
            return None
        if parent_id is None:
            parent_id = self._stack[-1] if self._stack else self.root_id
        span = self.tracer._new_span(self.trace_id, name, parent_id,
                                     start, attrs, end=end)
        if span is None:
            return None
        if stage is not None:
            self.add_stage(stage, end - start)
        return span.span_id

    def add_stage(self, key: str, seconds: float) -> None:
        if self._closed:
            return
        self.stages[key] = self.stages.get(key, 0.0) + float(seconds)

    def annotate(self, **attrs: object) -> None:
        if self._closed:
            return
        self.tracer._annotate(self.trace_id, self.root_id, attrs)

    def link(self, trace_id: str) -> None:
        """Associate another trace (e.g. a follower linking its leader)."""
        if self._closed or not trace_id or trace_id == self.trace_id:
            return
        self.tracer._link(self.trace_id, trace_id)

    def finish(self, end: Optional[float] = None, **attrs: object) -> None:
        """Close every open span (root last) and seal the handle."""
        if self._closed:
            return
        if end is None:
            end = self.now()
        for span_id in reversed(self._stack):
            self.tracer._close_span(self.trace_id, span_id, end,
                                    attrs if span_id == self.root_id else {})
        self._stack = []
        self.tracer._seal(self.trace_id, dict(self.stages))
        self._closed = True


_TRACER_INSTANCES = itertools.count(1)


class Tracer:
    """Bounded store of traces; the factory for :class:`TraceHandle`.

    ``max_traces`` bounds memory: finished and in-flight traces alike live
    in an insertion-ordered dict evicted LRU-by-creation, so a busy server
    keeps the most recent N traces queryable at ``/v1/trace/<id>``.
    """

    def __init__(self, clock: Optional[Clock] = None, enabled: bool = True,
                 max_traces: int = 256) -> None:
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.enabled = bool(enabled)
        self.max_traces = int(max_traces)
        self._pid = os.getpid()
        self._instance = next(_TRACER_INSTANCES)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._traces: Dict[str, _TraceRecord] = {}

    # -- id generation (deterministic per process, no wall clock) ---------

    def _next_id(self, prefix: str) -> str:
        # pid + per-process tracer instance keep ids unique even when a
        # router and its shard servers share one process (tests, selftest)
        # and spans from several tracers merge into one tree.
        return (
            f"{prefix}{self._pid:x}.{self._instance:x}.{next(self._ids):x}"
        )

    # -- handle lifecycle -------------------------------------------------

    def start_trace(self, name: str,
                    parent: Optional[Tuple[str, str]] = None,
                    start: Optional[float] = None,
                    **attrs: object) -> Optional[TraceHandle]:
        """Begin a trace; returns ``None`` when tracing is disabled.

        ``parent`` is a ``(trace_id, parent_span_id)`` pair from a remote
        caller (the router): the new root span adopts that trace id and
        parents under the caller's span, so the merged tree is one trace.
        ``start`` backdates the root (e.g. to the admission timestamp
        captured just before the trace object existed) so retroactive
        child spans still nest inside it.
        """
        if not self.enabled:
            return None
        parent_span: Optional[str] = None
        if parent is not None and parent[0]:
            trace_id = str(parent[0])
            parent_span = str(parent[1]) if parent[1] else None
        else:
            trace_id = self._next_id("t")
        root = Span(trace_id=trace_id, span_id=self._next_id("s"),
                    parent_id=parent_span, name=name,
                    start=self.clock() if start is None else float(start),
                    pid=self._pid, attrs=dict(attrs))
        with self._lock:
            record = self._record_locked(trace_id)
            record.spans[root.span_id] = root
            record.order.append(root.span_id)
        return TraceHandle(self, trace_id, root.span_id)

    # -- span storage (called by handles) ---------------------------------

    def _new_span(self, trace_id: str, name: str, parent_id: Optional[str],
                  start: float, attrs: Dict[str, object],
                  end: Optional[float] = None) -> Optional[Span]:
        span = Span(trace_id=trace_id, span_id=self._next_id("s"),
                    parent_id=parent_id, name=name, start=start, end=end,
                    pid=self._pid, attrs=dict(attrs))
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                return None  # evicted under load; drop silently
            record.spans[span.span_id] = span
            record.order.append(span.span_id)
        return span

    def _close_span(self, trace_id: str, span_id: str, end: float,
                    attrs: Dict[str, object]) -> Optional[float]:
        with self._lock:
            record = self._traces.get(trace_id)
            span = record.spans.get(span_id) if record is not None else None
            if span is None:
                return None
            if span.end is None:
                span.end = end
            if attrs:
                span.attrs.update(attrs)
            return span.end - span.start

    def _annotate(self, trace_id: str, span_id: str,
                  attrs: Dict[str, object]) -> None:
        with self._lock:
            record = self._traces.get(trace_id)
            span = record.spans.get(span_id) if record is not None else None
            if span is not None:
                span.attrs.update(attrs)

    def _link(self, trace_id: str, other: str) -> None:
        with self._lock:
            record = self._traces.get(trace_id)
            if record is not None and other not in record.links:
                record.links.append(other)

    def _seal(self, trace_id: str, stages: Dict[str, float]) -> None:
        with self._lock:
            record = self._traces.get(trace_id)
            if record is not None:
                record.stages = stages

    def _record_locked(self, trace_id: str) -> _TraceRecord:
        record = self._traces.get(trace_id)
        if record is None:
            record = _TraceRecord()
            self._traces[trace_id] = record
            while len(self._traces) > self.max_traces:
                oldest = next(iter(self._traces))
                del self._traces[oldest]
        return record

    # -- merge + query ----------------------------------------------------

    def ingest(self, spans: Sequence[Dict[str, object]]) -> int:
        """Merge remote span dicts (a shard's export) into local records."""
        if not self.enabled or not spans:
            return 0
        merged = 0
        with self._lock:
            for payload in spans:
                try:
                    span = Span.from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    continue
                record = self._record_locked(span.trace_id)
                if span.span_id not in record.spans:
                    record.order.append(span.span_id)
                record.spans[span.span_id] = span
                merged += 1
        return merged

    def export_spans(self, trace_id: str) -> List[Dict[str, object]]:
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                return []
            return [record.spans[sid].to_dict() for sid in record.order]

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def snapshot(self, trace_id: str) -> Optional[Dict[str, object]]:
        """Queryable view of one trace: flat spans, nested tree, stages,
        links, plus linked traces' spans when still retained."""
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                return None
            spans = [record.spans[sid].to_dict() for sid in record.order]
            links = list(record.links)
            stages = dict(record.stages)
            linked: Dict[str, List[Dict[str, object]]] = {}
            for other in links:
                other_record = self._traces.get(other)
                if other_record is not None:
                    linked[other] = [other_record.spans[sid].to_dict()
                                     for sid in other_record.order]
        return {
            "trace_id": trace_id,
            "spans": spans,
            "tree": span_tree(spans),
            "stages": stages,
            "links": links,
            "linked_spans": linked,
        }


def span_tree(spans: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Nest flat span dicts into ``{"span": ..., "children": [...]}`` trees.

    Spans whose parent is absent (or ``None``) become roots.  Children are
    ordered by start time; cross-process ties break on span id, which is
    deterministic per origin process.
    """
    nodes = {str(s["span_id"]): {"span": s, "children": []} for s in spans}
    roots: List[Dict[str, object]] = []
    ordered = sorted(spans, key=lambda s: (s["start"], str(s["span_id"])))
    for payload in ordered:
        node = nodes[str(payload["span_id"])]
        parent = payload.get("parent_id")
        if parent is not None and str(parent) in nodes:
            nodes[str(parent)]["children"].append(node)  # type: ignore[union-attr]
        else:
            roots.append(node)
    return roots


# -- ambient trace context (thread-local) ---------------------------------

_AMBIENT = threading.local()


def _ambient_stack() -> List[Tuple[Optional[TraceHandle], ...]]:
    stack = getattr(_AMBIENT, "stack", None)
    if stack is None:
        stack = []
        _AMBIENT.stack = stack
    return stack


@contextmanager
def activate(handles: Sequence[Optional[TraceHandle]]) -> Iterator[None]:
    """Make ``handles`` the ambient trace context for this thread.

    The sequence is index-aligned with the work items being executed
    (entries may be ``None`` for untraced items) — :func:`current_handles`
    returns it verbatim so batch-aware layers (the cohort) can match
    member index -> handle, while :func:`span` simply fans out to every
    live handle.
    """
    stack = _ambient_stack()
    stack.append(tuple(handles))
    try:
        yield
    finally:
        stack.pop()


def current_handles() -> Tuple[Optional[TraceHandle], ...]:
    stack = getattr(_AMBIENT, "stack", None)
    if not stack:
        return ()
    return stack[-1]


@contextmanager
def span(name: str, stage: Optional[str] = None,
         attrs_fn: Optional[Callable[[], Dict[str, object]]] = None,
         **attrs: object) -> Iterator[bool]:
    """Time a block into every live ambient trace (no-op when none).

    ``stage`` additionally accrues the duration into each handle's stage
    breakdown.  ``attrs_fn`` defers attribute construction until a trace
    is actually listening, keeping instrumented hot paths free when idle.
    Yields ``True`` when at least one trace recorded the span.

    The span lands in each trace as one retroactive :meth:`record` at
    block exit (one store op per handle instead of an open/close pair),
    timed by the first live handle's clock — handles activated together
    come from one server and share its clock.  The span parents under
    each handle's currently open span, exactly as open/close would.
    """
    live = [h for h in current_handles() if h is not None and not h.closed]
    if not live:
        yield False
        return
    if attrs_fn is not None:
        attrs = dict(attrs)
        attrs.update(attrs_fn())
    start = live[0].now()
    try:
        yield True
    finally:
        end = live[0].now()
        for handle in live:
            handle.record(name, start, end, stage=stage, **attrs)


__all__ = [
    "Clock",
    "FakeClock",
    "MonotonicClock",
    "Span",
    "TraceHandle",
    "Tracer",
    "activate",
    "current_handles",
    "span",
    "span_tree",
]
