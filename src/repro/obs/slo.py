"""Declarative service-level objectives with burn-rate alerting.

An :class:`SLOSpec` declares *what good means* — "99% of requests under
250ms over the last hour", "error rate below 0.1%", "99.9% of
submissions admitted" — and an :class:`SLOTracker` turns the window ring
from :mod:`repro.obs.timeseries` into

* a **rolling error budget**: over ``window_s``, the objective allows
  ``total * (1 - objective)`` bad events; the budget remaining is the
  fraction of that allowance still unspent;
* **multi-window burn rates** (the SRE alerting pattern): burn is
  ``bad_fraction / (1 - objective)`` — 1.0 means spending the budget
  exactly at the rate that exhausts it at the end of the window.  A page
  requires the *fast* **and** *slow* windows to both burn hot, so a
  brief spike (fast hot, slow cool) warns at most, while a sustained
  burn escalates to page;
* an **ok → warning → page state machine** with hysteresis: escalation
  is immediate, de-escalation only after ``clear_evals`` consecutive
  calmer evaluations *in distinct ring windows*, so an alert flickering
  around its threshold does not flap — and because the streak advances
  at most once per window, a gateway scraper polling ``/v1/slo`` in a
  tight loop (every read evaluates) cannot clear an active page any
  faster than ``clear_evals`` windows of genuinely calm time.

Alert transitions are emitted into the event ring
(:mod:`repro.obs.events`) under the catalogued kinds ``slo_warning``,
``slo_page``, and ``slo_recovered``.  Specs are frozen dataclasses so
they pickle across the cluster's spawn boundary unchanged.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import events as obs_events
from repro.obs.timeseries import TimeseriesRing

#: Alert states, calm to critical; index is the severity rank.
STATES = ("ok", "warning", "page")

#: SLO kinds and the (total, bad) counter pairs they consume.
KINDS = ("latency", "error_rate", "availability")


@dataclasses.dataclass(frozen=True)
class SLOSpec:
    """One declarative objective.

    ``kind`` selects what counts as total/bad over a horizon:

    * ``"latency"`` — total = requests with an observed latency, bad =
      those above ``threshold_s`` (exact per-window counts via the
      ring's registered thresholds);
    * ``"error_rate"`` — total = served + errors, bad = errors;
    * ``"availability"`` — total = submitted, bad = rejected (429s).

    ``objective`` is the target good fraction (0.99 → 1% error budget).
    Burn thresholds follow the multiwindow convention: ``warning_burn``
    and ``page_burn`` apply to *both* the ``fast_window_s`` and
    ``slow_window_s`` burn rates (AND-gated).  ``clear_evals`` is the
    de-escalation hysteresis: that many consecutive calm evaluations,
    each landing in a distinct ring window, before stepping down —
    time-based in effect (at least ``clear_evals`` windows of calm), so
    evaluation *frequency* cannot shortcut it.
    """

    name: str
    kind: str = "latency"
    objective: float = 0.99
    threshold_s: Optional[float] = None
    window_s: float = 3600.0
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0
    warning_burn: float = 2.0
    page_burn: float = 10.0
    clear_evals: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLOSpec.name must be non-empty")
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; expected one of {KINDS}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.kind == "latency" and (self.threshold_s is None
                                       or self.threshold_s <= 0):
            raise ValueError(
                f"latency SLO {self.name!r} needs threshold_s > 0, "
                f"got {self.threshold_s}"
            )
        if not (0 < self.fast_window_s <= self.slow_window_s <= self.window_s):
            raise ValueError(
                f"windows must satisfy 0 < fast <= slow <= budget, got "
                f"fast={self.fast_window_s} slow={self.slow_window_s} "
                f"budget={self.window_s}"
            )
        if not (0 < self.warning_burn <= self.page_burn):
            raise ValueError(
                f"burn thresholds must satisfy 0 < warning <= page, got "
                f"warning={self.warning_burn} page={self.page_burn}"
            )
        if self.clear_evals < 1:
            raise ValueError(
                f"clear_evals must be >= 1, got {self.clear_evals}"
            )


#: Default objectives wired into a server unless overridden.  Loose on
#: purpose — they page only when something is genuinely wrong.
DEFAULT_SLOS: Tuple[SLOSpec, ...] = (
    SLOSpec(name="latency_p99", kind="latency", objective=0.99,
            threshold_s=2.0),
    SLOSpec(name="error_rate", kind="error_rate", objective=0.999),
    SLOSpec(name="availability", kind="availability", objective=0.999),
)


class _AlertState:
    """Mutable per-SLO alert state (guarded by the tracker lock)."""

    __slots__ = ("state", "calm_streak", "calm_window", "transitions")

    def __init__(self) -> None:
        self.state = "ok"
        self.calm_streak = 0
        #: Ring window index of the last calm-streak advance, or None.
        #: The streak moves at most once per window, so hysteresis is
        #: bounded by elapsed windows, not evaluation count.
        self.calm_window: Optional[int] = None
        self.transitions = 0


def _severity(burn_fast: float, burn_slow: float, spec: SLOSpec) -> str:
    """Instantaneous severity from the two burn rates (AND-gated)."""
    if burn_fast >= spec.page_burn and burn_slow >= spec.page_burn:
        return "page"
    if burn_fast >= spec.warning_burn and burn_slow >= spec.warning_burn:
        return "warning"
    return "ok"


def worst_state(states: Sequence[str]) -> str:
    """The most severe of a set of alert states (``ok`` when empty)."""
    worst = 0
    for state in states:
        if state in STATES:
            worst = max(worst, STATES.index(state))
    return STATES[worst]


class SLOTracker:
    """Evaluates a set of :class:`SLOSpec` against a window ring.

    The tracker registers every latency threshold on the ring at
    construction (so windows count exact over-threshold events from the
    first observation), then each :meth:`evaluate` reads the ring's
    fast/slow/budget horizons, updates burn rates and the per-SLO state
    machine, and emits transition events.  Deterministic: time comes
    from the ring's injected clock, and evaluation happens only when
    called (the sampler calls it as a listener).
    """

    def __init__(self, specs: Sequence[SLOSpec],
                 ring: TimeseriesRing) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.specs: Tuple[SLOSpec, ...] = tuple(specs)
        self.ring = ring
        self._lock = threading.Lock()
        self._alerts: Dict[str, _AlertState] = {
            spec.name: _AlertState() for spec in self.specs
        }
        self._last: Dict[str, Dict[str, object]] = {}
        for spec in self.specs:
            if spec.kind == "latency":
                ring.register_threshold(spec.name, float(spec.threshold_s))

    # ------------------------------------------------------------------

    @staticmethod
    def _bad_total(spec: SLOSpec,
                   totals: Mapping[str, object]) -> Tuple[float, float]:
        counters: Mapping[str, float] = totals["counters"]  # type: ignore[assignment]
        over: Mapping[str, int] = totals["over_threshold"]  # type: ignore[assignment]
        if spec.kind == "latency":
            return float(over.get(spec.name, 0)), float(totals["latency_count"])
        if spec.kind == "error_rate":
            bad = float(counters.get("errors", 0.0))
            return bad, bad + float(counters.get("served", 0.0))
        # availability: rejected out of submitted
        return (float(counters.get("rejected", 0.0)),
                float(counters.get("submitted", 0.0)))

    def _burn(self, spec: SLOSpec, horizon_s: float, now: float) -> float:
        bad, total = self._bad_total(spec, self.ring.totals(horizon_s, now=now))
        if total <= 0:
            return 0.0
        return (bad / total) / (1.0 - spec.objective)

    def evaluate(self) -> Dict[str, object]:
        """One evaluation pass: recompute burns, step state machines,
        emit transitions.  Returns the same payload as :meth:`snapshot`."""
        now = self.ring.clock()
        per_slo: List[Dict[str, object]] = []
        emitted: List[Tuple[str, Dict[str, object]]] = []
        with self._lock:
            for spec in self.specs:
                burn_fast = self._burn(spec, spec.fast_window_s, now)
                burn_slow = self._burn(spec, spec.slow_window_s, now)
                bad, total = self._bad_total(
                    spec, self.ring.totals(spec.window_s, now=now)
                )
                allowance = total * (1.0 - spec.objective)
                budget = (1.0 if allowance <= 0
                          else max(1.0 - bad / allowance, 0.0))
                alert = self._alerts[spec.name]
                target = _severity(burn_fast, burn_slow, spec)
                previous = alert.state
                window = self.ring.window_index(now)
                if STATES.index(target) > STATES.index(alert.state):
                    alert.state = target       # escalate immediately
                    alert.calm_streak = 0
                    alert.calm_window = None
                elif STATES.index(target) < STATES.index(alert.state):
                    # De-escalate with hysteresis.  The streak advances
                    # at most once per ring window: evaluate() runs on
                    # every gateway read, so calm must *persist across
                    # windows* — a tight scrape loop cannot clear a page.
                    if alert.calm_window is None or window > alert.calm_window:
                        alert.calm_streak += 1
                        alert.calm_window = window
                    if alert.calm_streak >= spec.clear_evals:
                        alert.state = target
                        alert.calm_streak = 0
                        alert.calm_window = None
                else:
                    alert.calm_streak = 0
                    alert.calm_window = None
                if alert.state != previous:
                    alert.transitions += 1
                    fields = {
                        "slo": spec.name,
                        "from_state": previous,
                        "to_state": alert.state,
                        "burn_fast": round(burn_fast, 4),
                        "burn_slow": round(burn_slow, 4),
                        "budget_remaining": round(budget, 4),
                    }
                    emitted.append((alert.state, fields))
                entry: Dict[str, object] = {
                    "name": spec.name,
                    "kind": spec.kind,
                    "objective": spec.objective,
                    "threshold_s": spec.threshold_s,
                    "state": alert.state,
                    "burn_fast": burn_fast,
                    "burn_slow": burn_slow,
                    "budget_remaining": budget,
                    "bad": bad,
                    "total": total,
                    "window_s": spec.window_s,
                    "transitions": alert.transitions,
                }
                per_slo.append(entry)
                self._last[spec.name] = entry
        # Emit outside the lock — the event log has its own.  Transitions
        # to the calmer state (including page → warning) land as
        # ``slo_recovered`` with the explicit from/to states in the fields.
        for state, fields in emitted:
            if state == "page":
                obs_events.emit("slo_page", **fields)
            elif state == "warning" and fields["from_state"] == "ok":
                obs_events.emit("slo_warning", **fields)
            else:
                obs_events.emit("slo_recovered", **fields)
        return {"slos": per_slo,
                "worst_state": worst_state([e["state"] for e in per_slo])}

    def snapshot(self) -> Dict[str, object]:
        """Last evaluated view (without advancing the state machine)."""
        with self._lock:
            per_slo = [dict(self._last[spec.name]) for spec in self.specs
                       if spec.name in self._last]
        if len(per_slo) < len(self.specs):
            return self.evaluate()
        return {"slos": per_slo,
                "worst_state": worst_state([e["state"] for e in per_slo])}

    def states(self) -> Dict[str, str]:
        with self._lock:
            return {name: self._alerts[name].state
                    for name in sorted(self._alerts)}


__all__ = [
    "DEFAULT_SLOS",
    "KINDS",
    "SLOSpec",
    "SLOTracker",
    "STATES",
    "worst_state",
]
