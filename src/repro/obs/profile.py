"""Continuous sampling profiler + span-derived hotspot tables.

Two complementary answers to "where is the time going?":

* :class:`SamplingProfiler` — a statistical wall-clock profiler: a
  background daemon thread periodically walks every live thread's stack
  (``sys._current_frames()``) and counts collapsed stacks
  (``root;caller;...;leaf``), the format flamegraph tooling consumes
  directly.  Overhead is one stack walk per interval regardless of
  request rate (the HPCCFA pattern: sample, don't instrument), it is
  opt-in (``ServeConfig(profiling=True)``), and the count table is
  bounded.  The frame source is injectable so tests profile synthetic
  frames deterministically.

* :func:`span_hotspots` — an exact accounting from the tracer's
  existing spans: per-span *self time* (duration minus same-process
  child durations) aggregated into a top-k table keyed by
  ``(span name, problem)``, so "megabatch.kernel on problem X dominates"
  falls out of data already collected on the request path.

Both surface at ``GET /v1/profile`` and ``python -m repro.obs
--profile``.
"""

from __future__ import annotations

import sys
import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.trace import Clock, MonotonicClock

#: Fallback bucket once the stack table reaches ``max_stacks``.
TRUNCATED_STACK = "(truncated)"

#: Code-object -> label cache.  A process has a fixed set of code
#: objects, so this converges fast and turns the per-frame cost into a
#: dict hit; the size guard only matters for synthetic frame objects.
_LABEL_CACHE: Dict[object, str] = {}
_LABEL_CACHE_MAX = 4096


def _frame_label(frame) -> str:
    code = frame.f_code
    label = _LABEL_CACHE.get(code)
    if label is not None:
        return label
    filename = code.co_filename
    # Module stem without path or extension: "/a/b/server.py" -> "server".
    slash = max(filename.rfind("/"), filename.rfind("\\"))
    stem = filename[slash + 1:]
    if stem.endswith(".py"):
        stem = stem[:-3]
    label = f"{stem}.{code.co_name}"
    if len(_LABEL_CACHE) >= _LABEL_CACHE_MAX:
        _LABEL_CACHE.clear()
    _LABEL_CACHE[code] = label
    return label


def collapse_frame(frame, max_depth: int = 64) -> str:
    """Render a leaf frame as a root-first ``;``-joined collapsed stack."""
    labels: List[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        labels.append(_frame_label(frame))
        frame = frame.f_back
        depth += 1
    labels.reverse()
    return ";".join(labels)


class SamplingProfiler:
    """Bounded-memory statistical profiler over ``sys._current_frames``.

    ``frames_fn`` returns a ``{thread_id: frame}`` mapping (injectable
    for deterministic tests).  :meth:`sample_once` is the unit of work;
    :meth:`start` runs it on a daemon thread every ``interval_s`` of
    real time.  The sampler skips its own thread and keeps at most
    ``max_stacks`` distinct stacks (overflow counts under
    ``"(truncated)"``), so a pathological workload cannot grow memory.
    """

    def __init__(self, interval_s: float = 0.005, max_stacks: int = 512,
                 max_depth: int = 64, clock: Optional[Clock] = None,
                 frames_fn: Optional[Callable[[], Mapping[int, object]]] = None,
                 ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if max_stacks < 2:
            raise ValueError(f"max_stacks must be >= 2, got {max_stacks}")
        self.interval_s = float(interval_s)
        self.max_stacks = int(max_stacks)
        self.max_depth = int(max_depth)
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self._frames_fn = (frames_fn if frames_fn is not None
                           else sys._current_frames)
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._samples = 0
        self._started_at: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def sample_once(self) -> int:
        """Walk every live thread's stack once; returns stacks recorded."""
        skip_ids = set()
        thread = self._thread
        if thread is not None and thread.ident is not None:
            skip_ids.add(thread.ident)
        skip_ids.add(threading.get_ident())
        frames = self._frames_fn()
        collapsed: List[str] = []
        for thread_id in sorted(frames):
            if thread_id in skip_ids:
                continue
            stack = collapse_frame(frames[thread_id], self.max_depth)
            if stack:
                collapsed.append(stack)
        with self._lock:
            self._samples += 1
            for stack in collapsed:
                if stack in self._counts or len(self._counts) < self.max_stacks:
                    self._counts[stack] = self._counts.get(stack, 0) + 1
                else:
                    self._counts[TRUNCATED_STACK] = (
                        self._counts.get(TRUNCATED_STACK, 0) + 1
                    )
        return len(collapsed)

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._started_at = self.clock()
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(timeout=self.interval_s):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 — profiling must never kill serving
                continue

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0

    def collapsed(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Top collapsed stacks by count (flamegraph-ready strings)."""
        with self._lock:
            items = sorted(self._counts.items(),
                           key=lambda kv: (-kv[1], kv[0]))
        if limit is not None and limit >= 0:
            items = items[:limit]
        return [{"stack": stack, "count": count} for stack, count in items]

    def collapsed_text(self, limit: Optional[int] = None) -> str:
        """``stack count`` lines — feed straight into ``flamegraph.pl``."""
        return "\n".join(f"{row['stack']} {row['count']}"
                         for row in self.collapsed(limit))

    def snapshot(self, limit: Optional[int] = 50) -> Dict[str, object]:
        with self._lock:
            samples = self._samples
            distinct = len(self._counts)
        return {
            "running": self.running,
            "interval_s": self.interval_s,
            "samples": samples,
            "distinct_stacks": distinct,
            "max_stacks": self.max_stacks,
            "collapsed": self.collapsed(limit),
        }


def span_hotspots(tracer, top_k: int = 20) -> List[Dict[str, object]]:
    """Aggregate per-span *self time* across every retained trace.

    Self time is a closed span's duration minus its same-pid closed
    children's durations (clamped at zero — cross-process children use a
    different clock base and are skipped).  Rows aggregate by
    ``(span name, problem)`` where ``problem`` comes from the span's own
    attrs or, failing that, the trace root's; the result is the top-k by
    total self time.
    """
    totals: Dict[Tuple[str, str], Dict[str, float]] = {}
    for trace_id in tracer.trace_ids():
        spans = tracer.export_spans(trace_id)
        by_id: Dict[str, Dict[str, object]] = {}
        child_time: Dict[str, float] = {}
        root_problem = ""
        for span in spans:
            by_id[str(span["span_id"])] = span
            if span.get("parent_id") is None and not root_problem:
                root_problem = str(span.get("attrs", {}).get("problem", ""))
        for span in spans:
            if span.get("end") is None:
                continue
            parent_id = span.get("parent_id")
            parent = by_id.get(str(parent_id)) if parent_id is not None else None
            if parent is not None and parent.get("pid") == span.get("pid"):
                duration = float(span["end"]) - float(span["start"])  # type: ignore[arg-type]
                key = str(parent["span_id"])
                child_time[key] = child_time.get(key, 0.0) + duration
        for span in spans:
            if span.get("end") is None:
                continue
            duration = float(span["end"]) - float(span["start"])  # type: ignore[arg-type]
            self_s = max(duration - child_time.get(str(span["span_id"]), 0.0),
                         0.0)
            problem = str(span.get("attrs", {}).get("problem", "")
                          or root_problem)
            key2 = (str(span["name"]), problem)
            row = totals.setdefault(key2, {"self_s": 0.0, "count": 0.0})
            row["self_s"] += self_s
            row["count"] += 1.0
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1]["self_s"], kv[0]))
    return [
        {"name": name, "problem": problem, "self_s": row["self_s"],
         "count": int(row["count"])}
        for (name, problem), row in ranked[:max(top_k, 0)]
    ]


__all__ = [
    "SamplingProfiler",
    "TRUNCATED_STACK",
    "collapse_frame",
    "span_hotspots",
]
