"""Text and JSON reporters for analysis results."""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from repro.analysis.base import all_rules
from repro.analysis.runner import AnalysisResult


def render_text(result: AnalysisResult, quiet: bool = False) -> str:
    """One line per finding plus a summary footer."""
    lines: List[str] = [f.render() for f in result.findings]
    if not quiet:
        counts = Counter(f.rule_id for f in result.findings)
        if counts:
            breakdown = ", ".join(
                f"{rule_id}×{n}" for rule_id, n in sorted(counts.items())
            )
            lines.append("")
            lines.append(
                f"{len(result.findings)} finding(s) "
                f"[{breakdown}] in {result.files_checked} file(s); "
                f"{result.suppressed} suppressed"
            )
        else:
            lines.append(
                f"clean: {result.files_checked} file(s), "
                f"{len(result.rule_ids)} rule(s), "
                f"{result.suppressed} suppressed"
            )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report; stable key order for diffing in CI."""
    payload = {
        "files_checked": result.files_checked,
        "rules": result.rule_ids,
        "suppressed": result.suppressed,
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` catalog."""
    lines = []
    for rule_id, rule_cls in sorted(all_rules().items()):
        rule = rule_cls()
        lines.append(f"{rule_id}  {rule.name:<28} {rule.summary}")
    return "\n".join(lines)


__all__ = ["render_json", "render_rule_list", "render_text"]
