"""Rule base class and the id-keyed rule registry.

Rules register by stable id via :func:`register_rule`; the runner, the
CLI's ``--select``/``--ignore``, the suppression validator, and the docs
catalog all read :func:`all_rules`.  A rule sees each module once
(:meth:`Rule.check_module`) and, after every module is parsed, the whole
project at once (:meth:`Rule.check_project`) — cross-module analyses like
the lock-order graph live in the latter.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Type

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding, RuleInfo


class Rule:
    """One lint rule; subclasses set the class attributes and override
    one (or both) of the check hooks."""

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, modules: List[ModuleContext]
    ) -> Iterator[Finding]:
        return iter(())

    @classmethod
    def info(cls) -> RuleInfo:
        return RuleInfo(
            rule_id=cls.rule_id,
            name=cls.name,
            summary=cls.summary,
            rationale=cls.rationale,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (ids are unique)."""
    if not cls.rule_id or not cls.rule_id.startswith("RPR"):
        raise ValueError(f"rule {cls.__name__} has no valid rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule id {cls.rule_id}: "
            f"{existing.__name__} vs {cls.__name__}"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Every registered rule, keyed by id (imports the rule modules)."""
    import repro.analysis.rules  # noqa: F401 — registration side effect

    return dict(sorted(_REGISTRY.items()))


def instantiate(rule_ids: Iterable[str]) -> List[Rule]:
    registry = all_rules()
    return [registry[rule_id]() for rule_id in rule_ids]


__all__ = ["Rule", "all_rules", "instantiate", "register_rule"]
