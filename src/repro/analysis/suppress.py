"""Per-line suppressions: ``# repro: ignore[RPR002] -- justification``.

A finding is suppressed when its line (or the standalone comment line
immediately above it) carries a ``# repro: ignore[...]`` pragma naming the
rule id.  Two hard requirements keep suppressions honest:

* **Named rules only** — ``ignore[RPR002]`` or ``ignore[RPR002,RPR004]``;
  there is deliberately no blanket ``ignore`` that silences everything.
* **Justification required** — the pragma must carry ``-- <why>`` text.
  A bare suppression does not suppress anything; instead it raises an
  :data:`RPR900` finding of its own, so "TODO: explain" can never rot
  into permanent silence.

Unknown rule ids in a pragma also raise :data:`RPR900` (a typo like
``ignore[RPR02]`` must not silently fail open *or* closed).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.findings import Finding

#: Pseudo-rule for malformed suppressions (emitted here, not registered as
#: a source-scanning rule; it still participates in --select/--ignore).
RPR900 = "RPR900"

_PRAGMA = re.compile(
    r"#\s*repro:\s*ignore\[(?P<ids>[^\]]*)\]\s*(?:--\s*(?P<why>.*\S))?\s*$"
)
_RULE_ID = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """One parsed pragma: the rules it silences and where it sits."""

    line: int
    rule_ids: Tuple[str, ...]
    justification: str
    #: The line the pragma applies to (itself, or the statement below a
    #: standalone comment line).
    target_line: int


def parse_suppressions(
    source: str, path: str, known_rule_ids: Set[str]
) -> Tuple[Dict[int, Suppression], List[Finding]]:
    """Scan ``source`` for pragmas.

    Returns ``(by_target_line, problems)`` where ``problems`` are RPR900
    findings for malformed pragmas (missing justification, empty or
    unknown rule list).  Malformed pragmas suppress nothing.
    """
    lines = source.splitlines()
    by_line: Dict[int, Suppression] = {}
    problems: List[Finding] = []
    for index, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        why = (match.group("why") or "").strip()
        bad = [rule_id for rule_id in ids if not _RULE_ID.match(rule_id)]
        unknown = [
            rule_id
            for rule_id in ids
            if _RULE_ID.match(rule_id) and rule_id not in known_rule_ids
        ]
        if not ids or bad or unknown or not why:
            reasons = []
            if not ids:
                reasons.append("no rule ids listed")
            if bad:
                reasons.append(f"malformed ids {bad}")
            if unknown:
                reasons.append(f"unknown ids {unknown}")
            if not why:
                reasons.append("missing '-- <justification>'")
            problems.append(
                Finding(
                    rule_id=RPR900,
                    path=path,
                    line=index,
                    message=(
                        "unusable suppression pragma ("
                        + "; ".join(reasons)
                        + "); it suppresses nothing"
                    ),
                )
            )
            continue
        stripped = text.strip()
        target = index
        if stripped.startswith("#"):
            # Standalone comment line: applies to the next source line.
            target = index + 1
        by_line[target] = Suppression(
            line=index, rule_ids=ids, justification=why, target_line=target
        )
    return by_line, problems


def apply_suppressions(
    findings: Sequence[Finding],
    suppressions: Dict[int, Suppression],
) -> Tuple[List[Finding], int]:
    """Drop findings covered by a pragma; returns (kept, suppressed_count)."""
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        pragma = suppressions.get(finding.line)
        if pragma is not None and finding.rule_id in pragma.rule_ids:
            suppressed += 1
            continue
        kept.append(finding)
    return kept, suppressed


__all__ = [
    "RPR900",
    "Suppression",
    "apply_suppressions",
    "parse_suppressions",
]
