"""Built-in fixture suite: every rule must fire on its bad snippet and
stay silent on the good twin.

``python -m repro.analysis --selftest`` runs this; CI uses it as a
canary that the linter itself still works before trusting a clean run
on ``src``.  The fixtures double as the corpus for
``tests/test_analysis_rules.py``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.runner import analyze
from repro.analysis.suppress import RPR900

#: rule id -> (bad source that must fire, good source that must not).
FIXTURES: Dict[str, Tuple[str, str]] = {
    "RPR001": (
        '''\
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0

    def snapshot(self):
        with self._lock:
            return self._total

    def bump(self):
        self._total += 1
''',
        '''\
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0

    def snapshot(self):
        with self._lock:
            return self._total

    def bump(self):
        with self._lock:
            self._total += 1
''',
    ),
    "RPR002": (
        '''\
import threading


class Sender:
    def __init__(self, sock):
        self._lock = threading.Lock()
        self._sock = sock
        self._pending = []

    def flush(self, payload):
        with self._lock:
            self._sock.sendall(payload)
''',
        '''\
import threading


class Sender:
    def __init__(self, sock):
        self._lock = threading.Lock()
        self._sock = sock
        self._pending = []

    def flush(self, payload):
        with self._lock:
            self._pending.append(payload)
        self._sock.sendall(payload)
''',
    ),
    "RPR003": (
        '''\
import threading


class Transfer:
    def __init__(self):
        self._accounts = threading.Lock()
        self._audit = threading.Lock()

    def debit(self):
        with self._accounts:
            with self._audit:
                pass

    def credit(self):
        with self._audit:
            with self._accounts:
                pass
''',
        '''\
import threading


class Transfer:
    def __init__(self):
        self._accounts = threading.Lock()
        self._audit = threading.Lock()

    def debit(self):
        with self._accounts:
            with self._audit:
                pass

    def credit(self):
        with self._accounts:
            with self._audit:
                pass
''',
    ),
    "RPR004": (
        '''\
import threading


class Poller:
    def start(self):
        self._thread = threading.Thread(target=self._run)
        self._thread.start()

    def _run(self):
        pass
''',
        '''\
import threading


class Poller:
    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def stop(self):
        self._thread.join()

    def _run(self):
        pass
''',
    ),
    "RPR005": (
        '''\
import threading

_REGISTRY_LOCK = threading.Lock()


def register(name):
    _REGISTRY_LOCK.acquire()
    try:
        return name
    finally:
        _REGISTRY_LOCK.release()
''',
        '''\
import threading

_REGISTRY_LOCK = threading.Lock()


def register(name):
    with _REGISTRY_LOCK:
        return name
''',
    ),
    "RPR101": (
        '''\
import numpy as np


def sample(n):
    rng = np.random.default_rng()
    return rng.random(n)
''',
        '''\
import numpy as np


def sample(n, seed):
    rng = np.random.default_rng(seed)
    return rng.random(n)
''',
    ),
    "RPR102": (
        '''\
import time


def deadline(budget_s):
    return time.time() + budget_s
''',
        '''\
import time


def deadline(budget_s):
    return time.monotonic() + budget_s
''',
    ),
    "RPR103": (
        '''\
def snapshot(names):
    return [name.upper() for name in set(names)]
''',
        '''\
def snapshot(names):
    return [name.upper() for name in sorted(set(names))]
''',
    ),
    "RPR104": (
        '''\
def scan(root):
    return [path.name for path in root.iterdir()]
''',
        '''\
def scan(root):
    return [path.name for path in sorted(root.iterdir())]
''',
    ),
    "RPR105": (
        '''\
import time


class LatencyTracker:
    def __init__(self):
        self._started = time.monotonic()

    def elapsed(self):
        return time.perf_counter() - self._started
''',
        '''\
class LatencyTracker:
    def __init__(self, clock):
        self._clock = clock
        self._started = clock()

    def elapsed(self):
        return self._clock() - self._started
''',
    ),
    "RPR106": (
        '''\
from repro.obs import events as obs_events


def on_shard_death(shard_id):
    obs_events.emit("shard_died", shard=shard_id)
''',
        '''\
from repro.obs import events as obs_events


def on_shard_death(shard_id):
    obs_events.emit("shard_down", shard=shard_id)


def emit(problem, bound):
    # A local callable named emit is not the event emitter.
    return (problem, bound)


def notify(problem):
    emit(problem, 1.0)
''',
    ),
    "RPR201": (
        '''\
__all__ = ["frobnicate"]


def helper():
    return 1
''',
        '''\
__all__ = ["helper"]


def helper():
    return 1
''',
    ),
    # The bad fixture needs a literal pragma with no justification; it is
    # assembled via replace() so this file's own source never contains a
    # malformed pragma for the scanner to trip over.
    RPR900: (
        '''\
import time


def deadline(budget_s):
    return time.monotonic() + budget_s  # PRAGMA
'''.replace("# PRAGMA", "# repro: " + "ignore[RPR102]"),
        '''\
import time


def deadline(budget_s):
    # wall-clock-free; nothing to suppress here
    return time.monotonic() + budget_s
''',
    ),
}


#: Path-scoped rules only fire under particular directories; their
#: fixtures must be written at an in-scope relative path.
FIXTURE_PATHS: Dict[str, str] = {
    "RPR105": "repro/obs/case.py",
}


def _run_case(rule_id: str, source: str, workdir: Path) -> List[str]:
    case = workdir / FIXTURE_PATHS.get(rule_id, "case.py")
    case.parent.mkdir(parents=True, exist_ok=True)
    case.write_text(source, encoding="utf-8")
    result = analyze([case], select=[rule_id], root=workdir)
    return [f.rule_id for f in result.findings]


def run_selftest(stream=None) -> int:
    """Exercise every fixture pair; returns a process exit code."""
    stream = stream if stream is not None else sys.stdout
    failures = 0
    with tempfile.TemporaryDirectory(prefix="repro-analysis-selftest-") as tmp:
        workdir = Path(tmp)
        for rule_id, (bad, good) in sorted(FIXTURES.items()):
            fired = _run_case(rule_id, bad, workdir)
            silent = _run_case(rule_id, good, workdir)
            problems = []
            if rule_id not in fired:
                problems.append(f"did not fire on bad fixture (got {fired})")
            if rule_id in silent:
                problems.append("fired on good fixture")
            if problems:
                failures += 1
                print(f"FAIL {rule_id}: {'; '.join(problems)}", file=stream)
            else:
                print(f"ok   {rule_id}", file=stream)
    if failures:
        print(f"selftest: {failures} rule(s) broken", file=stream)
        return 1
    print(f"selftest: {len(FIXTURES)} rule(s) verified", file=stream)
    return 0


__all__ = ["FIXTURES", "FIXTURE_PATHS", "run_selftest"]
