"""File discovery and rule orchestration.

``analyze(paths)`` is the one entry point: collect ``.py`` files, parse
each into a :class:`~repro.analysis.context.ModuleContext`, run every
selected rule's module pass, then the project passes, apply per-line
suppressions, and return a sorted, deduplicated report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import all_rules
from repro.analysis.context import ModuleContext, load_module
from repro.analysis.findings import Finding
from repro.analysis.suppress import (
    RPR900,
    apply_suppressions,
    parse_suppressions,
)

_SKIP_DIRS = {".git", "__pycache__", ".hypothesis", ".pytest_cache", "build"}


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, sorted for stable reports."""
    files: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_file() and path.suffix == ".py":
            files.add(path.resolve())
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.add(candidate.resolve())
    return sorted(files)


def collect_modules(
    paths: Sequence[Path], root: Optional[Path] = None
) -> Tuple[List[ModuleContext], List[Finding]]:
    """Parse every file; unparseable files become findings, not crashes."""
    root = Path(root) if root is not None else Path.cwd()
    modules: List[ModuleContext] = []
    problems: List[Finding] = []
    for path in collect_files(paths):
        try:
            modules.append(load_module(path, root.resolve()))
        except SyntaxError as error:
            problems.append(
                Finding(
                    rule_id="RPR999",
                    path=str(path),
                    line=error.lineno or 1,
                    message=f"file does not parse: {error.msg}",
                )
            )
    return modules, problems


def select_rule_ids(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[str]:
    """Resolve ``--select``/``--ignore`` prefixes against the registry.

    Entries are id prefixes: ``RPR0`` selects the whole concurrency
    family, ``RPR003`` one rule.  Unknown prefixes raise ``ValueError``
    so a typo fails loudly instead of silently disabling a gate.

    ``RPR900`` (bad suppression pragma) is selectable even though it is
    emitted by the pragma parser rather than a registered rule class.
    """
    known = list(all_rules()) + [RPR900]
    chosen = list(known)
    if select:
        prefixes = list(select)
        for prefix in prefixes:
            if not any(rule_id.startswith(prefix) for rule_id in known):
                raise ValueError(f"--select {prefix!r} matches no known rule")
        chosen = [r for r in known if any(r.startswith(p) for p in prefixes)]
    if ignore:
        for prefix in ignore:
            if not any(rule_id.startswith(prefix) for rule_id in known):
                raise ValueError(f"--ignore {prefix!r} matches no known rule")
        chosen = [
            r for r in chosen if not any(r.startswith(p) for p in ignore)
        ]
    return chosen


@dataclass
class AnalysisResult:
    """Everything one run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    rule_ids: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def analyze(
    paths: Sequence[Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    root: Optional[Path] = None,
) -> AnalysisResult:
    """Run the selected rules over ``paths`` and apply suppressions."""
    rule_ids = select_rule_ids(select, ignore)
    registry = all_rules()
    rules = [registry[rule_id]() for rule_id in rule_ids if rule_id in registry]
    known_ids = set(registry) | {RPR900}
    modules, problems = collect_modules(paths, root=root)

    result = AnalysisResult(rule_ids=rule_ids, files_checked=len(modules))
    result.findings.extend(problems)
    selected = set(rule_ids)
    for ctx in modules:
        raw: List[Finding] = []
        for rule in rules:
            raw.extend(rule.check_module(ctx))
        suppressions, pragma_problems = parse_suppressions(
            ctx.source, ctx.relpath, known_ids
        )
        kept, suppressed = apply_suppressions(raw, suppressions)
        result.findings.extend(kept)
        result.suppressed += suppressed
        if RPR900 in selected or not (select or ignore):
            result.findings.extend(pragma_problems)
    # Project passes see every module; suppression is by the finding's
    # own file/line, so re-read each flagged module's pragma table.
    project_findings: List[Finding] = []
    for rule in rules:
        project_findings.extend(rule.check_project(modules))
    by_path = {ctx.relpath: ctx for ctx in modules}
    for finding in project_findings:
        ctx = by_path.get(finding.path)
        if ctx is not None:
            suppressions, _ = parse_suppressions(
                ctx.source, ctx.relpath, known_ids
            )
            kept, suppressed = apply_suppressions([finding], suppressions)
            result.suppressed += suppressed
            result.findings.extend(kept)
        else:
            result.findings.append(finding)
    result.findings = sorted(set(result.findings), key=Finding.sort_key)
    return result


__all__ = [
    "AnalysisResult",
    "analyze",
    "collect_files",
    "collect_modules",
    "select_rule_ids",
]
