"""Shared AST model: per-module lock/attribute/call event streams.

Every concurrency rule needs the same facts about a module — which
attributes are locks, which ``with`` blocks hold which lock, which
``self`` attributes are touched while a lock is held, which calls happen
inside a critical section.  :class:`ModuleContext` computes them once per
file; rules consume the event streams instead of re-walking the tree.

Lock identity is a *label*:

* ``ClassName.attr`` — ``self.attr`` where ``attr`` was assigned a
  ``threading.Lock``/``RLock`` (a ``threading.Condition(self.attr)``
  aliases back to the underlying lock's label);
* ``ClassName.method()`` — ``with self.method(...):`` for methods whose
  name mentions "lock" (per-key lock factories);
* ``module.NAME`` — module-global locks;
* ``*.attr`` — a lock attribute reached through a foreign object
  (``with handle.lock:``), matched by attribute name only.

Scopes ending in ``_locked`` are the codebase's "caller holds the lock"
convention; their whole body is modeled as a critical section under the
pseudo-label ``ClassName.<locked>`` (it guards attributes and forbids
blocking calls, but contributes no lock-order edges — the concrete outer
lock is the caller's).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

_LOCK_FACTORIES = {"Lock", "RLock"}


def _is_threading_call(node: ast.expr, names: Set[str]) -> bool:
    """``threading.X(...)`` or bare ``X(...)`` for X in ``names``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in names
    if isinstance(func, ast.Name):
        return func.id in names
    return False


@dataclass(frozen=True)
class AttrEvent:
    """One ``self.attr`` access inside a class body."""

    attr: str
    line: int
    col: int
    write: bool
    held: Tuple[str, ...]
    method: str


@dataclass(frozen=True)
class CallEvent:
    """One call expression, with the locks held at the call site."""

    node: ast.Call
    line: int
    col: int
    held: Tuple[str, ...]
    method: str


@dataclass(frozen=True)
class AcquireEvent:
    """One lock acquisition (a resolved ``with`` item)."""

    label: str
    line: int
    col: int
    held_before: Tuple[str, ...]
    method: str


@dataclass
class ScopeModel:
    """Event streams for one class (or the module's free functions)."""

    name: str  # class name, or "<module>"
    node: Optional[ast.ClassDef]
    lock_attrs: Dict[str, int] = field(default_factory=dict)
    condition_attrs: Dict[str, str] = field(default_factory=dict)
    event_attrs: Set[str] = field(default_factory=set)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    attr_events: List[AttrEvent] = field(default_factory=list)
    call_events: List[CallEvent] = field(default_factory=list)
    acquire_events: List[AcquireEvent] = field(default_factory=list)
    #: method name -> labels of locks acquired anywhere inside it.
    method_acquires: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def is_class(self) -> bool:
        return self.node is not None

    def own_prefix(self) -> str:
        return f"{self.name}."

    def guarded_attrs(self) -> Set[str]:
        """Attributes observed (read or written) under one of this
        class's own locks — the inferred lock-guarded set."""
        prefix = self.own_prefix()
        guarded: Set[str] = set()
        for event in self.attr_events:
            if any(label.startswith(prefix) for label in event.held):
                guarded.add(event.attr)
        guarded -= set(self.lock_attrs)
        guarded -= set(self.condition_attrs)
        guarded -= self.event_attrs
        return guarded


class ModuleContext:
    """Parsed module plus the scope models every rule shares."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self.lines = source.splitlines()
        self.module_name = Path(relpath).stem
        self.module_locks: Dict[str, int] = {}
        self.scopes: List[ScopeModel] = []
        self._collect()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Assign) and _is_threading_call(
                node.value, _LOCK_FACTORIES
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_locks[target.id] = node.lineno
        module_scope = ScopeModel(name="<module>", node=None)
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self.scopes.append(self._build_class(node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_scope.methods[node.name] = node
        for name, func in module_scope.methods.items():
            _ScopeWalker(self, module_scope, name).walk(func)
        self.scopes.append(module_scope)

    def _build_class(self, node: ast.ClassDef) -> ScopeModel:
        scope = ScopeModel(name=node.name, node=node)
        for item in ast.walk(node):
            if not isinstance(item, ast.Assign):
                continue
            for target in item.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = item.value
                if _is_threading_call(value, _LOCK_FACTORIES):
                    scope.lock_attrs[target.attr] = item.lineno
                elif _is_threading_call(value, {"Condition"}):
                    underlying = target.attr
                    assert isinstance(value, ast.Call)
                    if value.args:
                        arg = value.args[0]
                        if (
                            isinstance(arg, ast.Attribute)
                            and isinstance(arg.value, ast.Name)
                            and arg.value.id == "self"
                        ):
                            underlying = arg.attr
                    scope.condition_attrs[target.attr] = underlying
                elif _is_threading_call(value, {"Event"}):
                    scope.event_attrs.add(target.attr)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.methods[item.name] = item
        for name, func in scope.methods.items():
            _ScopeWalker(self, scope, name).walk(func)
        return scope

    # ------------------------------------------------------------------
    # Lock-expression resolution
    # ------------------------------------------------------------------

    def resolve_lock_expr(
        self, expr: ast.expr, scope: ScopeModel
    ) -> Optional[str]:
        """Label for a ``with`` item that acquires a lock, else ``None``."""
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            owner, attr = expr.value.id, expr.attr
            if owner == "self" and scope.is_class:
                resolved = scope.condition_attrs.get(attr, attr)
                if resolved in scope.lock_attrs or attr in scope.condition_attrs:
                    return f"{scope.name}.{resolved}"
                # A plain `with self.X:` on an attribute we did not see
                # constructed is still, in this codebase, a lock.
                return f"{scope.name}.{attr}"
            if "lock" in attr.lower():
                return f"*.{attr}"
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.module_locks or "lock" in expr.id.lower():
                return f"{self.module_name}.{expr.id}"
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and "lock" in func.attr.lower()
            ):
                return f"{scope.name}.{func.attr}()"
            if isinstance(func, ast.Name) and "lock" in func.id.lower():
                return f"{self.module_name}.{func.id}()"
        return None


class _ScopeWalker:
    """Walks one method, tracking the stack of held lock labels."""

    def __init__(
        self, ctx: ModuleContext, scope: ScopeModel, method: str
    ) -> None:
        self.ctx = ctx
        self.scope = scope
        self.method = method
        self.held: List[str] = []
        if method.endswith("_locked") or method.endswith("_locked_"):
            self.held.append(f"{scope.name}.<locked>")
        self.scope.method_acquires.setdefault(method, set())

    def walk(self, func: ast.FunctionDef) -> None:
        for stmt in func.body:
            self._visit(stmt)

    # ------------------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: runs later, on whoever calls it — a fresh
            # stack, and a scope name that keeps events attributable.
            inner = _ScopeWalker(
                self.ctx, self.scope, f"{self.method}.<{node.name}>"
            )
            inner.walk(node)
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.With):
            self._visit_with(node)
            return
        if isinstance(node, ast.Call):
            self._record_call(node)
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            return
        if isinstance(node, ast.Attribute):
            self._record_attr(node)
            self._visit(node.value)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_with(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            # The context expression runs before the lock is held.
            self._visit(item.context_expr)
            label = self.ctx.resolve_lock_expr(item.context_expr, self.scope)
            if label is not None:
                self.scope.acquire_events.append(
                    AcquireEvent(
                        label=label,
                        line=item.context_expr.lineno,
                        col=item.context_expr.col_offset,
                        held_before=tuple(self.held),
                        method=self.method,
                    )
                )
                self.scope.method_acquires[self.method].add(label)
                self.held.append(label)
                pushed += 1
            if item.optional_vars is not None:
                self._visit(item.optional_vars)
        for stmt in node.body:
            self._visit(stmt)
        for _ in range(pushed):
            self.held.pop()

    def _record_call(self, node: ast.Call) -> None:
        self.scope.call_events.append(
            CallEvent(
                node=node,
                line=node.lineno,
                col=node.col_offset,
                held=tuple(self.held),
                method=self.method,
            )
        )

    def _record_attr(self, node: ast.Attribute) -> None:
        if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
            return
        self.scope.attr_events.append(
            AttrEvent(
                attr=node.attr,
                line=node.lineno,
                col=node.col_offset,
                write=isinstance(node.ctx, (ast.Store, ast.Del)),
                held=tuple(self.held),
                method=self.method,
            )
        )


def load_module(path: Path, root: Path) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext`."""
    try:
        relpath = str(path.relative_to(root))
    except ValueError:
        relpath = str(path)
    return ModuleContext(path, relpath, path.read_text(encoding="utf-8"))


__all__ = [
    "AcquireEvent",
    "AttrEvent",
    "CallEvent",
    "ModuleContext",
    "ScopeModel",
    "load_module",
]
