"""RPR201: ``__all__`` must match the module's actual public surface.

Three drift modes, all under one id:

* an ``__all__`` entry that no top-level binding (def, class, assignment,
  import) provides — unless the module defines a PEP 562 ``__getattr__``,
  which makes lazy exports legitimate and statically unverifiable;
* a public top-level ``def``/``class``/constant missing from ``__all__``
  — the export list silently stopped describing the module;
* a module that defines public names but has no ``__all__`` at all
  (``__main__.py`` and ``conftest.py`` are exempt — they are entry
  points, not APIs).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.base import Rule, register_rule
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

_EXEMPT_FILENAMES = {"__main__.py", "conftest.py", "setup.py"}


def _module_surface(
    tree: ast.Module,
) -> Tuple[Set[str], Set[str], Optional[List[str]], int, bool]:
    """(bound, public_defined, all_names, all_lineno, has_getattr)."""
    bound: Set[str] = set()
    public: Set[str] = set()
    all_names: Optional[List[str]] = None
    all_lineno = 0
    has_getattr = False
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
            if node.name == "__getattr__":
                has_getattr = True
            if not node.name.startswith("_"):
                public.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                bound.add(target.id)
                if target.id == "__all__":
                    all_lineno = node.lineno
                    try:
                        value = ast.literal_eval(node.value)
                    except (ValueError, SyntaxError):
                        value = None
                    if isinstance(value, (list, tuple)) and all(
                        isinstance(item, str) for item in value
                    ):
                        all_names = list(value)
                elif not target.id.startswith("_"):
                    public.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            bound.add(node.target.id)
            if node.target.id != "__all__" and not node.target.id.startswith("_"):
                if node.value is not None:
                    public.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            # One level into conditional imports / TYPE_CHECKING blocks.
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        if alias.name != "*":
                            bound.add((alias.asname or alias.name).split(".")[0])
    return bound, public, all_names, all_lineno, has_getattr


@register_rule
class ExportDrift(Rule):
    rule_id = "RPR201"
    name = "export-drift"
    summary = "__all__ disagrees with the module's actually-defined public names"
    rationale = (
        "__all__ is the API contract other packages import against; an "
        "entry with no binding breaks `from pkg import *` and tooling, "
        "and a public definition missing from it ships an accidental "
        "private API that drifts without review."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.path.name in _EXEMPT_FILENAMES:
            return
        bound, public, all_names, all_lineno, has_getattr = _module_surface(
            ctx.tree
        )
        if all_names is None:
            if public:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.relpath,
                    line=1,
                    message=(
                        f"module defines public names ({', '.join(sorted(public)[:6])}"
                        f"{', ...' if len(public) > 6 else ''}) but no __all__"
                    ),
                )
            return
        if not has_getattr:
            for name in all_names:
                if name not in bound:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=ctx.relpath,
                        line=all_lineno,
                        message=(
                            f"__all__ exports {name!r} but no top-level "
                            "binding defines it"
                        ),
                    )
        exported = set(all_names)
        for name in sorted(public - exported):
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=all_lineno or 1,
                message=(
                    f"public name {name!r} is defined here but missing "
                    "from __all__ (export it or make it private)"
                ),
            )


__all__ = ["ExportDrift"]
