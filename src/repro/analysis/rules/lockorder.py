"""RPR003: lock-acquisition-order cycles across the whole project.

Builds one static :class:`~repro.analysis.graph.LockGraph` from every
module's acquire events: an edge ``A -> B`` whenever a ``with`` block for
``B`` is nested (syntactically, or one call level deep through a ``self``
method) inside a ``with`` block for ``A``.  Any cycle means two code
paths acquire the same pair of locks in opposite orders — the deadlock
precondition no test can reliably reproduce.

The same graph is exported (:func:`build_lock_graph`) for the runtime
cross-check: ``DebugLock`` traces from the hammer suite are unioned with
this graph, and the union must stay acyclic too.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.base import Rule, register_rule
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.graph import LockGraph

#: The caller-holds-the-lock pseudo label never names a concrete lock, so
#: it cannot participate in ordering edges.
_PSEUDO = ".<locked>"


def lock_graph_for(modules: List[ModuleContext]) -> LockGraph:
    """The static acquisition-order graph over ``modules``."""
    graph = LockGraph()
    for ctx in modules:
        for scope in ctx.scopes:
            for event in scope.acquire_events:
                if event.label.endswith(_PSEUDO):
                    continue
                where = f"{ctx.relpath}:{event.line}"
                for held in event.held_before:
                    if held.endswith(_PSEUDO):
                        continue
                    graph.add(held, event.label, where)
            # One call level deep: holding L and calling self.m() where
            # m itself acquires locks orders L before each of them.
            for event in scope.call_events:
                if not event.held:
                    continue
                func = event.node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in scope.method_acquires
                ):
                    continue
                inner = scope.method_acquires[func.attr]
                where = f"{ctx.relpath}:{event.line}"
                for held in event.held:
                    if held.endswith(_PSEUDO):
                        continue
                    for label in inner:
                        if label.endswith(_PSEUDO):
                            continue
                        graph.add(held, label, where)
    return graph


def build_lock_graph(paths, root=None) -> LockGraph:
    """Convenience for the runtime cross-check: parse ``paths`` and build
    the static graph (no findings, no suppressions)."""
    from repro.analysis.runner import collect_modules

    modules, _errors = collect_modules(paths, root=root)
    return lock_graph_for(modules)


@register_rule
class LockOrderCycle(Rule):
    rule_id = "RPR003"
    name = "lock-order-cycle"
    summary = "two code paths acquire the same locks in opposite orders"
    rationale = (
        "A cycle in the acquisition graph means thread 1 can hold A "
        "waiting for B while thread 2 holds B waiting for A.  The hang "
        "needs a precise interleaving, so tests rarely catch it; the "
        "static graph catches it on every run."
    )

    def check_project(
        self, modules: List[ModuleContext]
    ) -> Iterator[Finding]:
        graph = lock_graph_for(modules)
        for cycle in graph.find_cycles():
            edges = graph.edges_in_cycle(cycle)
            anchor = min(
                (e for e in edges if e.where),
                key=lambda e: e.where,
                default=None,
            )
            path, line = "<project>", 0
            if anchor is not None and ":" in anchor.where:
                path, _, lineno = anchor.where.rpartition(":")
                line = int(lineno)
            order = " -> ".join(cycle + [cycle[0]])
            sites = ", ".join(
                f"{e.src} -> {e.dst} at {e.where or '?'}" for e in edges
            )
            yield Finding(
                rule_id=self.rule_id,
                path=path,
                line=line,
                message=(
                    f"lock-order cycle {order}; conflicting acquisitions: "
                    f"{sites}"
                ),
                data={"cycle": list(cycle)},
            )


__all__ = ["LockOrderCycle", "build_lock_graph", "lock_graph_for"]
