"""Determinism rules: the contracts behind bit-identical seeded replies.

The serving stack promises that a seeded request returns the same bytes
no matter which worker, shard, or retry serves it.  Four rule ids police
the ways that promise quietly breaks:

* **RPR101** — unseeded randomness: ``np.random.default_rng()`` with no
  seed, or the module-level ``random``/legacy ``np.random`` globals.
  Every stochastic component takes a seed or Generator
  (``repro.utils.rng.ensure_rng``); a hidden global stream makes replies
  depend on process history.
* **RPR102** — wall-clock reads (``time.time``, ``datetime.now``, …).
  Intervals must use ``time.monotonic`` (or the injected ``clock``);
  wall-clock values leaking into cache keys or wire payloads make
  identical requests hash differently across replicas.
* **RPR103** — iterating a set (or ``set()``/``frozenset()`` result)
  directly: string hashes are salted per process, so the order — and any
  snapshot/payload built from it — differs between shards.  Wrap in
  ``sorted(...)``.
* **RPR104** — directory listings (``iterdir``/``listdir``/``glob``/
  ``scandir``) consumed unsorted: filesystem order is arbitrary, so
  registry scans and artifact discovery become machine-dependent.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.base import Rule, register_rule
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

_GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "betavariate",
    "seed",
    "rand",
    "randn",
    "random_sample",
    "permutation",
}
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}
_LISTING_ATTRS = {"iterdir", "listdir", "scandir", "glob", "rglob"}


def _receiver(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dotted(node: ast.expr) -> str:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class _CallScanner(ast.NodeVisitor):
    """Collects all Call nodes with their parent-call context."""

    def __init__(self) -> None:
        self.calls = []

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


def _all_calls(tree: ast.AST):
    scanner = _CallScanner()
    scanner.visit(tree)
    return scanner.calls


@register_rule
class UnseededRandomness(Rule):
    rule_id = "RPR101"
    name = "unseeded-randomness"
    summary = "random source created or used without an explicit seed"
    rationale = (
        "default_rng() with no seed, or the global random module, draws "
        "from process-lifetime state: the same request served after "
        "different traffic returns different bytes, breaking seeded "
        "replay, failover retries, and response caching."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in _all_calls(ctx.tree):
            dotted = _dotted(call.func)
            if dotted.endswith("default_rng") and not call.args and not call.keywords:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        "default_rng() without a seed; thread a seed or "
                        "Generator through (repro.utils.rng.ensure_rng)"
                    ),
                )
            elif dotted.startswith(("random.", "np.random.", "numpy.random.")):
                fn = dotted.rpartition(".")[2]
                if fn in _GLOBAL_RANDOM_FNS:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=ctx.relpath,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"global random stream {dotted}(); use an "
                            "explicit numpy Generator instead"
                        ),
                    )


@register_rule
class WallClockRead(Rule):
    rule_id = "RPR102"
    name = "wall-clock-read"
    summary = "wall-clock API used where monotonic or injected time belongs"
    rationale = (
        "time.time()/datetime.now() values differ across replicas and "
        "jump under NTP; when they leak into cache keys, request "
        "fingerprints, or wire payloads, identical requests stop being "
        "identical.  Use time.monotonic for intervals and pass explicit "
        "timestamps for data."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for call in _all_calls(ctx.tree):
            if not isinstance(call.func, ast.Attribute):
                continue
            owner = _receiver(call.func.value)
            pair = (owner, call.func.attr)
            if pair in _WALL_CLOCK:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"wall-clock read {owner}.{call.func.attr}(); use "
                        "time.monotonic (intervals) or an injected clock"
                    ),
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


@register_rule
class SetIterationOrder(Rule):
    rule_id = "RPR103"
    name = "set-iteration-order"
    summary = "iterating a set whose order is hash-salted per process"
    rationale = (
        "String hashing is salted per interpreter, so set order differs "
        "between shards and runs; any snapshot, payload, or schedule "
        "built by iterating a set is nondeterministic.  Wrap the set in "
        "sorted(...) before iterating."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield Finding(
                        rule_id=self.rule_id,
                        path=ctx.relpath,
                        line=it.lineno,
                        col=it.col_offset,
                        message=(
                            "iteration over a set: order is hash-salted "
                            "and differs per process; use sorted(...)"
                        ),
                    )


@register_rule
class UnsortedDirectoryListing(Rule):
    rule_id = "RPR104"
    name = "unsorted-directory-listing"
    summary = "directory listing consumed without sorted(...)"
    rationale = (
        "iterdir/listdir/glob order is whatever the filesystem returns; "
        "artifact scans and fixture discovery must not depend on it.  "
        "sorted(...) costs nothing and makes every scan reproducible."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        sorted_calls = set()
        for call in _all_calls(ctx.tree):
            if isinstance(call.func, ast.Name) and call.func.id == "sorted":
                for arg in call.args:
                    sorted_calls.add(id(arg))
        for call in _all_calls(ctx.tree):
            if id(call) in sorted_calls:
                continue
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _LISTING_ATTRS:
                continue
            if func.attr in {"glob", "rglob"}:
                # re.glob does not exist; only flag path-like receivers.
                owner = _receiver(func.value).lower()
                if owner in {"re", "fnmatch"}:
                    continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"unsorted directory listing .{func.attr}(); wrap in "
                    "sorted(...) so scan order is machine-independent"
                ),
            )


__all__ = [
    "SetIterationOrder",
    "UnseededRandomness",
    "UnsortedDirectoryListing",
    "WallClockRead",
]
