"""RPR004: daemon-thread and start/stop lifecycle discipline.

Two checks under one id (they are the same contract):

* every ``threading.Thread(...)`` construction must pass
  ``daemon=True`` — this codebase's hard rule, so a forgotten background
  loop can never wedge interpreter shutdown;
* a scope that *starts* threads must also *join* them somewhere (a
  ``stop``/``shutdown``/``drain`` path) — classes get the whole class
  body as their join budget, free functions just their own body.  A
  started-but-unjoinable thread has no clean teardown; if the design is
  genuinely fire-and-forget, say so with a suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.base import Rule, register_rule
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding


def _is_thread_ctor(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr == "Thread"
    if isinstance(func, ast.Name):
        return func.id == "Thread"
    return False


def _scan_body(
    body: List[ast.stmt],
) -> Tuple[List[ast.Call], bool, bool]:
    """(thread ctors, starts_threads, joins_threads) for one scope body,
    not descending into nested class definitions."""
    ctors: List[ast.Call] = []
    starts = False
    joins = False
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ClassDef):
            continue
        if isinstance(node, ast.Call):
            if _is_thread_ctor(node):
                ctors.append(node)
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr == "start":
                    starts = True
                elif func.attr == "join":
                    joins = True
        stack.extend(ast.iter_child_nodes(node))
    return ctors, starts, joins


@register_rule
class ThreadLifecycle(Rule):
    rule_id = "RPR004"
    name = "thread-lifecycle"
    summary = (
        "thread constructed without daemon=True, or started without any "
        "join/teardown path"
    )
    rationale = (
        "Non-daemon background threads block interpreter exit when a "
        "stop signal is missed; threads started without a join anywhere "
        "in the owning scope have no graceful teardown, so drain/restart "
        "sequences leak work into the next lifecycle phase."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Per-class budget: ctor flags per construction, join anywhere in
        # the class satisfies every start in it.
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_scope(ctx, node.body, f"class {node.name}", node.lineno)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(
                    ctx, node.body, f"function {node.name}", node.lineno
                )

    def _check_scope(
        self, ctx: ModuleContext, body: List[ast.stmt], label: str, lineno: int
    ) -> Iterator[Finding]:
        ctors, starts, joins = _scan_body(body)
        for ctor in ctors:
            daemon = next(
                (kw for kw in ctor.keywords if kw.arg == "daemon"), None
            )
            is_true = (
                daemon is not None
                and isinstance(daemon.value, ast.Constant)
                and daemon.value.value is True
            )
            if not is_true:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.relpath,
                    line=ctor.lineno,
                    col=ctor.col_offset,
                    message=(
                        f"threading.Thread in {label} without daemon=True; "
                        "background threads must not block interpreter exit"
                    ),
                )
        if ctors and starts and not joins:
            first = min(ctors, key=lambda c: c.lineno)
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=first.lineno,
                col=first.col_offset,
                message=(
                    f"{label} starts threads but never joins any; add a "
                    "stop/shutdown path (or suppress with the reason the "
                    "thread is safe to abandon)"
                ),
            )


__all__ = ["ThreadLifecycle"]
