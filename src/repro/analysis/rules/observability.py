"""Observability rules: the contracts of the tracing + events stack.

* **RPR105** — a direct ``time.*`` clock read inside the observability
  modules (``repro/obs/`` and ``serve/metrics.py``).  Those modules must
  take an injected :class:`repro.obs.trace.Clock` so tests drive them on
  a :class:`~repro.obs.trace.FakeClock` and every timestamp in a trace
  comes from one auditable source; the single real read lives in
  ``MonotonicClock.__call__`` under an explained pragma.  RPR102 already
  bans *wall-clock* reads everywhere — this rule additionally bans the
  monotonic family, but only where the Clock seam exists.
* **RPR106** — an ``events.emit(...)`` call site whose ``kind`` is not a
  string literal present in :data:`repro.obs.events.KNOWN_KINDS`.
  ``emit`` raises on unknown kinds at runtime, but only when the code
  path runs; this rule moves the catalog/call-site drift check to lint
  time so an uncatalogued kind can never ship.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.base import Rule, register_rule
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.determinism import _all_calls, _dotted, _receiver
from repro.obs.events import KNOWN_KINDS

#: Every ``time`` module function that reads a clock.
_CLOCK_READS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "thread_time",
    "thread_time_ns",
}


def _in_scope(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return (
        "repro/obs/" in normalized
        or normalized.endswith("serve/metrics.py")
    )


@register_rule
class UninjectedClockRead(Rule):
    rule_id = "RPR105"
    name = "clock-injection"
    summary = "direct time.* read in an observability module"
    rationale = (
        "Trace spans and metrics timestamps must come from the injected "
        "Clock (repro.obs.trace.Clock): tests then run the whole tracing "
        "stack on a FakeClock, and every duration in a span tree is "
        "attributable to one audited clock source.  A stray "
        "time.monotonic()/perf_counter() call bypasses the seam and makes "
        "stage breakdowns untestable."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(ctx.relpath):
            return
        for call in _all_calls(ctx.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if _receiver(func.value) != "time":
                continue
            if func.attr not in _CLOCK_READS:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"direct clock read time.{func.attr}() in an "
                    "observability module; take an injected Clock "
                    "(repro.obs.trace.Clock) instead"
                ),
            )


#: Module paths whose ``emit`` is the catalogued event emitter.
_EVENTS_MODULES = ("repro.obs.events", "repro.obs")


def _emit_bindings(tree: ast.Module) -> "tuple[Set[str], Set[str]]":
    """Names bound to the events module / to its ``emit`` by imports.

    Returns ``(module_names, function_names)``: dotted receiver names
    that denote :mod:`repro.obs.events` (``events``, ``obs_events``,
    ``repro.obs.events``, ...) and bare names that denote its ``emit``
    (``emit``, or an ``import ... as`` alias).  Only import statements
    bind — a local ``def emit`` or an unrelated ``log.emit`` attribute
    never matches, so e.g. a dataset callback named ``emit`` stays out
    of scope.
    """
    modules: Set[str] = set()
    functions: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _EVENTS_MODULES:
                    modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                full = f"{node.module}.{alias.name}"
                if full in _EVENTS_MODULES:
                    modules.add(alias.asname or alias.name)
                elif (node.module in _EVENTS_MODULES
                      and alias.name == "emit"):
                    functions.add(alias.asname or alias.name)
    return modules, functions


def _kind_argument(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        first = call.args[0]
        return None if isinstance(first, ast.Starred) else first
    for keyword in call.keywords:
        if keyword.arg == "kind":
            return keyword.value
    return None


@register_rule
class UncataloguedEventKind(Rule):
    rule_id = "RPR106"
    name = "event-kind-catalog"
    summary = "events.emit() with a kind not in KNOWN_KINDS"
    rationale = (
        "repro.obs.events.KNOWN_KINDS is the event catalog operators and "
        "docs rely on; emit() raises on unlisted kinds at runtime, but a "
        "rarely-exercised emitter (a failover path, an alert transition) "
        "would only blow up in production.  Every emit call site must "
        "pass a string literal from KNOWN_KINDS so the catalog and the "
        "emitters provably cannot drift apart."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        modules, functions = _emit_bindings(ctx.tree)
        if not modules and not functions:
            return
        for call in _all_calls(ctx.tree):
            func = call.func
            if isinstance(func, ast.Attribute):
                if func.attr != "emit" or _dotted(func.value) not in modules:
                    continue
            elif isinstance(func, ast.Name):
                if func.id not in functions:
                    continue
            else:
                continue
            kind_node = _kind_argument(call)
            if kind_node is None:
                message = (
                    "events.emit() without an inspectable kind argument; "
                    "pass the kind as a string literal from KNOWN_KINDS"
                )
            elif not (isinstance(kind_node, ast.Constant)
                      and isinstance(kind_node.value, str)):
                message = (
                    "events.emit() kind must be a string literal from "
                    "KNOWN_KINDS (a computed kind defeats the lint-time "
                    "catalog check)"
                )
            elif kind_node.value not in KNOWN_KINDS:
                message = (
                    f"events.emit() kind {kind_node.value!r} is not in "
                    f"KNOWN_KINDS {tuple(KNOWN_KINDS)}; add it to the "
                    "catalog (and docs/OBSERVABILITY.md) or fix the typo"
                )
            else:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=call.lineno,
                col=call.col_offset,
                message=message,
            )


__all__ = ["UncataloguedEventKind", "UninjectedClockRead"]
