"""Observability rules: the clock-injection contract of the tracing stack.

* **RPR105** — a direct ``time.*`` clock read inside the observability
  modules (``repro/obs/`` and ``serve/metrics.py``).  Those modules must
  take an injected :class:`repro.obs.trace.Clock` so tests drive them on
  a :class:`~repro.obs.trace.FakeClock` and every timestamp in a trace
  comes from one auditable source; the single real read lives in
  ``MonotonicClock.__call__`` under an explained pragma.  RPR102 already
  bans *wall-clock* reads everywhere — this rule additionally bans the
  monotonic family, but only where the Clock seam exists.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Rule, register_rule
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.determinism import _all_calls, _receiver

#: Every ``time`` module function that reads a clock.
_CLOCK_READS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "thread_time",
    "thread_time_ns",
}


def _in_scope(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    return (
        "repro/obs/" in normalized
        or normalized.endswith("serve/metrics.py")
    )


@register_rule
class UninjectedClockRead(Rule):
    rule_id = "RPR105"
    name = "clock-injection"
    summary = "direct time.* read in an observability module"
    rationale = (
        "Trace spans and metrics timestamps must come from the injected "
        "Clock (repro.obs.trace.Clock): tests then run the whole tracing "
        "stack on a FakeClock, and every duration in a span tree is "
        "attributable to one audited clock source.  A stray "
        "time.monotonic()/perf_counter() call bypasses the seam and makes "
        "stage breakdowns untestable."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(ctx.relpath):
            return
        for call in _all_calls(ctx.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if _receiver(func.value) != "time":
                continue
            if func.attr not in _CLOCK_READS:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=ctx.relpath,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"direct clock read time.{func.attr}() in an "
                    "observability module; take an injected Clock "
                    "(repro.obs.trace.Clock) instead"
                ),
            )


__all__ = ["UninjectedClockRead"]
