"""Rule modules; importing this package registers every rule.

Rule families and their id ranges:

* ``RPR0xx`` — concurrency (:mod:`~repro.analysis.rules.concurrency`,
  :mod:`~repro.analysis.rules.lockorder`,
  :mod:`~repro.analysis.rules.lifecycle`),
* ``RPR1xx`` — determinism (:mod:`~repro.analysis.rules.determinism`)
  and observability clock injection
  (:mod:`~repro.analysis.rules.observability`),
* ``RPR2xx`` — API surface (:mod:`~repro.analysis.rules.exports`),
* ``RPR9xx`` — meta (reserved; RPR900 is emitted by the suppression
  parser itself, see :mod:`repro.analysis.suppress`).
"""

from repro.analysis.rules import (  # noqa: F401 — registration side effects
    concurrency,
    determinism,
    exports,
    lifecycle,
    lockorder,
    observability,
)

__all__ = [
    "concurrency",
    "determinism",
    "exports",
    "lifecycle",
    "lockorder",
    "observability",
]
