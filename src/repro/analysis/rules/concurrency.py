"""Concurrency rules: guarded attributes, blocking under locks, raw acquire.

* **RPR001** — a class's lock-guarded attribute set is *inferred*: any
  ``self`` attribute read or written inside a ``with self._lock:`` block
  (or a ``*_locked`` method, the "caller holds it" convention) is treated
  as guarded.  Rebinding such an attribute (``=``, ``+=``) anywhere else
  outside ``__init__`` is a lost-update race waiting for load.
* **RPR002** — blocking operations (socket sends/receives/accepts,
  ``Future.result``, thread/process ``join``, ``sleep``, event waits,
  frame-level RPC helpers) executed while a lock is held serialize the
  whole system behind one slow peer.  ``Condition.wait`` on a condition
  built over the held lock is exempt — it releases the lock.
* **RPR005** — bare ``lock.acquire()`` outside a ``with`` statement has
  no exception-safe release path; one raise between acquire and release
  deadlocks every other thread.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.base import Rule, register_rule
from repro.analysis.context import ModuleContext, ScopeModel
from repro.analysis.findings import Finding

#: Attribute call names that block on I/O or another thread.
_BLOCKING_ATTRS = {
    "sleep",
    "sendall",
    "send",
    "recv",
    "recv_into",
    "accept",
    "connect",
    "makefile",
    "result",
    "getoutput",
}
#: Bare-name calls that block (module-level RPC/socket helpers).
_BLOCKING_NAMES = {"sleep", "create_connection", "send_message", "recv_message"}
#: ``.join`` receivers that look like threads/processes (not ``str.join``).
_JOINABLE_HINTS = ("thread", "proc", "worker", "monitor", "dispatcher")


def _terminal_name(node: ast.expr) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


@register_rule
class UnguardedAttributeWrite(Rule):
    rule_id = "RPR001"
    name = "unguarded-attribute-write"
    summary = (
        "attribute is lock-guarded elsewhere in this class but rebound "
        "without the lock"
    )
    rationale = (
        "If any access to self.X happens under the class lock, every "
        "rebinding of self.X is part of the same protocol; an unguarded "
        "`self.X += 1` is a read-modify-write that loses updates under "
        "concurrency even when each step looks atomic."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope in ctx.scopes:
            if not scope.is_class or not (
                scope.lock_attrs or scope.condition_attrs
            ):
                continue
            guarded = scope.guarded_attrs()
            if not guarded:
                continue
            prefix = scope.own_prefix()
            for event in scope.attr_events:
                if not event.write or event.attr not in guarded:
                    continue
                if event.method == "__init__" or event.method.startswith(
                    "__init__."
                ):
                    continue
                if any(label.startswith(prefix) for label in event.held):
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.relpath,
                    line=event.line,
                    col=event.col,
                    message=(
                        f"{scope.name}.{event.attr} is accessed under "
                        f"{scope.name}'s lock elsewhere but rebound here in "
                        f"{event.method}() without holding it"
                    ),
                )


@register_rule
class BlockingCallUnderLock(Rule):
    rule_id = "RPR002"
    name = "blocking-call-under-lock"
    summary = "blocking operation executed while a lock is held"
    rationale = (
        "A socket send, Future.result, thread join, or sleep inside a "
        "critical section stalls every thread contending for that lock "
        "for as long as the slowest peer takes; under load this is a "
        "convoy, and combined with a second lock it is a deadlock."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope in ctx.scopes:
            condition_names = set(scope.condition_attrs)
            for event in scope.call_events:
                if not event.held:
                    continue
                reason = self._blocking_reason(event.node, scope, condition_names)
                if reason is None:
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.relpath,
                    line=event.line,
                    col=event.col,
                    message=(
                        f"{reason} while holding "
                        f"{' -> '.join(event.held)} (in {event.method}())"
                    ),
                )

    @staticmethod
    def _blocking_reason(
        call: ast.Call, scope: ScopeModel, condition_names: Set[str]
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_NAMES:
                return f"blocking call {func.id}()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver = _terminal_name(func.value)
        if attr == "wait":
            # Condition.wait over the held lock *releases* it — that is
            # the one legitimate blocking call inside a critical section.
            if (
                isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
                and func.value.attr in condition_names
            ):
                return None
            return f"blocking {receiver}.wait()"
        if attr == "join":
            timeout_kw = any(kw.arg == "timeout" for kw in call.keywords)
            hinted = any(h in receiver.lower() for h in _JOINABLE_HINTS)
            if timeout_kw or hinted:
                return f"blocking {receiver}.join()"
            return None  # almost certainly str.join
        if attr in _BLOCKING_ATTRS:
            if attr == "sleep" or receiver in {"time"}:
                return "blocking time.sleep()"
            return f"blocking {receiver}.{attr}()"
        return None


@register_rule
class RawAcquire(Rule):
    rule_id = "RPR005"
    name = "raw-lock-acquire"
    summary = "lock.acquire() outside a with-statement"
    rationale = (
        "A bare acquire has no exception-safe release: any raise between "
        "acquire() and release() leaves the lock held forever.  Use "
        "`with lock:` (or try/finally when conditional acquisition is "
        "genuinely needed, with a suppression explaining why)."
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope in ctx.scopes:
            for event in scope.call_events:
                func = event.node.func
                if not (
                    isinstance(func, ast.Attribute) and func.attr == "acquire"
                ):
                    continue
                receiver = _terminal_name(func.value)
                lockish = (
                    "lock" in receiver.lower()
                    or receiver in scope.lock_attrs
                    or receiver in scope.condition_attrs
                )
                if not lockish:
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.relpath,
                    line=event.line,
                    col=event.col,
                    message=(
                        f"raw {receiver}.acquire() in {event.method}(); "
                        "use a with-statement for exception-safe release"
                    ),
                )


__all__ = ["BlockingCallUnderLock", "RawAcquire", "UnguardedAttributeWrite"]
