"""Command-line front end: ``python -m repro.analysis [paths]``.

Exit codes: 0 clean, 1 findings, 2 usage/internal error — so CI can
gate on the return value directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.report import render_json, render_rule_list, render_text
from repro.analysis.runner import analyze


def _split_ids(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids or None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST concurrency/determinism linter for the repro codebase "
            "(rule ids RPR0xx concurrency, RPR1xx determinism, RPR2xx "
            "API surface)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (e.g. src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="IDS",
        help="comma-separated rule-id prefixes to enable (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="IDS",
        help="comma-separated rule-id prefixes to disable",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="findings only, no summary footer (text format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run every rule against its built-in bad/good fixtures",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0
    if args.selftest:
        from repro.analysis.selftest import run_selftest

        return run_selftest()
    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: no paths given (try `python -m repro.analysis src`)",
            file=sys.stderr,
        )
        return 2

    for path in args.paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    try:
        result = analyze(
            args.paths,
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result))
    else:
        output = render_text(result, quiet=args.quiet)
        if output:
            print(output)
    return 0 if result.clean else 1


__all__ = ["build_parser", "main"]
