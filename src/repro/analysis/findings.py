"""Findings: what a rule reports, and how reports sort and serialize.

A :class:`Finding` is one diagnostic anchored to a file and line.  Rule
ids are stable ``RPR0xx``/``RPR1xx``/``RPR2xx`` strings (see
``docs/ANALYSIS.md`` for the catalog); everything downstream — the
suppression syntax, ``--select``/``--ignore``, CI grep-ability — keys on
them, so an id is never reused or renumbered once released.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule id, location, message."""

    rule_id: str
    path: str
    line: int
    message: str
    #: Column offset (0-based, as ``ast`` reports it); cosmetic only.
    col: int = 0
    #: Optional machine-readable extras (e.g. the cycle for RPR003).
    data: Dict[str, object] = field(default_factory=dict, compare=False)

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.data:
            payload["data"] = dict(self.data)
        return payload

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry for one rule (surfaced by ``--list-rules`` and docs)."""

    rule_id: str
    name: str
    summary: str
    rationale: Optional[str] = None

    def to_dict(self) -> Dict[str, str]:
        payload = {
            "rule": self.rule_id,
            "name": self.name,
            "summary": self.summary,
        }
        if self.rationale:
            payload["rationale"] = self.rationale
        return payload


__all__ = ["Finding", "RuleInfo"]
