"""Lock-acquisition-order graph shared by the static and runtime passes.

Nodes are lock labels, edges mean "acquired while holding": an edge
``A -> B`` records that somewhere (a nested ``with`` statically, or a real
thread at runtime) lock ``B`` was taken while ``A`` was held.  A cycle in
this graph is the classic deadlock precondition — two orders exist in the
program, so two threads can each hold one lock and wait on the other.

The static pass (:mod:`repro.analysis.rules.lockorder`) and the runtime
:class:`~repro.analysis.debuglock.DebugLock` recorder both emit this
structure, which is what makes them cross-checkable: their union must be
acyclic too, otherwise the *combination* of a statically-known order and
an observed runtime order deadlocks even if each pass alone looks clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


@dataclass(frozen=True)
class Edge:
    """One ordered acquisition, with provenance for the report."""

    src: str
    dst: str
    #: Human-readable origin, e.g. ``serve/server.py:471`` or ``runtime``.
    where: str = ""


@dataclass
class LockGraph:
    """Directed graph of lock acquisition orders."""

    edges: Set[Edge] = field(default_factory=set)

    def add(self, src: str, dst: str, where: str = "") -> None:
        if src != dst:
            self.edges.add(Edge(src, dst, where))

    @property
    def nodes(self) -> Set[str]:
        nodes: Set[str] = set()
        for edge in self.edges:
            nodes.add(edge.src)
            nodes.add(edge.dst)
        return nodes

    def adjacency(self) -> Dict[str, Set[str]]:
        adj: Dict[str, Set[str]] = {node: set() for node in self.nodes}
        for edge in self.edges:
            adj[edge.src].add(edge.dst)
        return adj

    def union(self, other: "LockGraph") -> "LockGraph":
        merged = LockGraph()
        merged.edges = set(self.edges) | set(other.edges)
        return merged

    # ------------------------------------------------------------------

    def find_cycles(self) -> List[List[str]]:
        """Cycles as node lists, one per strongly connected component.

        Tarjan SCC; any component with more than one node (self-loops are
        filtered at insertion) contains at least one cycle.  Node order
        within a component follows one concrete cycle through it, so the
        report reads as "A -> B -> A".
        """
        adj = self.adjacency()
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        components: List[List[str]] = []

        def strongconnect(root: str) -> None:
            work: List[Tuple[str, any]] = [(root, iter(sorted(adj[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(adj[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(self._order_cycle(component, adj))

        for node in sorted(adj):
            if node not in index:
                strongconnect(node)
        return components

    @staticmethod
    def _order_cycle(component: List[str], adj: Dict[str, Set[str]]) -> List[str]:
        """Walk one concrete cycle through an SCC for readable output."""
        members = set(component)
        start = sorted(component)[0]
        path = [start]
        seen = {start}
        node = start
        while True:
            nxt = None
            for succ in sorted(adj[node]):
                if succ in members:
                    nxt = succ
                    break
            if nxt is None or nxt == start or nxt in seen:
                break
            path.append(nxt)
            seen.add(nxt)
            node = nxt
        return path

    def edges_in_cycle(self, cycle: List[str]) -> List[Edge]:
        members = set(cycle)
        return sorted(
            (e for e in self.edges if e.src in members and e.dst in members),
            key=lambda e: (e.src, e.dst),
        )


__all__ = ["Edge", "LockGraph"]
