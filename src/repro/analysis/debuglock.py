"""Runtime lock-order recorder: the dynamic half of the RPR003 story.

:func:`trace_locks` patches ``threading.Lock`` so every lock created
while the patch is active is a :class:`DebugLock` — a faithful drop-in
that additionally reports each successful acquisition to a
:class:`LockTracer`, together with the labels of the locks the acquiring
thread already holds.  The tracer accumulates "acquired while holding"
edges in the same :class:`~repro.analysis.graph.LockGraph` shape the
static pass emits, which is what makes the two passes cross-checkable:

* the static graph says which orders the *source* admits;
* the runtime graph says which orders real threads *exercised* under the
  hammer tests;
* :func:`crosscheck` unions them (over statically-labeled locks) and
  demands the union stay acyclic — a runtime order contradicting a
  static order is a deadlock neither pass can see alone.

Locks are labeled by creation site.  Sites that match a lock assignment
the static pass knows about (``self._lock = threading.Lock()`` in class
``X`` → ``X._lock``) get the static label; anything else — stdlib locks,
dynamically-created per-key locks — falls back to ``file:line`` and is
excluded from the cross-check (static labels never contain a colon).

Enable for a whole pytest session with ``REPRO_DEBUG_LOCKS=1`` (see
``tests/conftest.py``); the nightly CI lane runs the hammer suites that
way.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.graph import LockGraph

#: Captured before any patching so DebugLock's own internals — and the
#: tracer's — always use real OS locks.
_REAL_LOCK = threading.Lock

#: (relpath, lineno) of a lock construction -> static label.
SiteLabelMap = Dict[Tuple[str, int], str]


def static_label_map(
    paths: Sequence[Path], root: Optional[Path] = None
) -> SiteLabelMap:
    """Map lock-creation sites in ``paths`` to their static labels."""
    from repro.analysis.runner import collect_modules

    modules, _problems = collect_modules(paths, root=root)
    mapping: SiteLabelMap = {}
    for ctx in modules:
        for name, lineno in ctx.module_locks.items():
            mapping[(ctx.relpath, lineno)] = f"{ctx.module_name}.{name}"
        for scope in ctx.scopes:
            if not scope.is_class:
                continue
            for attr, lineno in scope.lock_attrs.items():
                mapping[(ctx.relpath, lineno)] = f"{scope.name}.{attr}"
    return mapping


class LockTracer:
    """Accumulates runtime acquisition-order edges across all threads."""

    def __init__(
        self,
        label_map: Optional[SiteLabelMap] = None,
        root: Optional[Path] = None,
    ) -> None:
        self.label_map = dict(label_map or {})
        self.root = Path(root).resolve() if root is not None else None
        self._edges: Set[Tuple[str, str]] = set()
        self._edge_lock = _REAL_LOCK()
        self._local = threading.local()

    # -- labeling -------------------------------------------------------

    def label_for_site(self, filename: str, lineno: int) -> str:
        rel = filename
        if self.root is not None:
            try:
                rel = str(Path(filename).resolve().relative_to(self.root))
            except (ValueError, OSError):
                pass
        return self.label_map.get((rel, lineno), f"{rel}:{lineno}")

    # -- recording ------------------------------------------------------

    def _held(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def record_acquire(self, label: str) -> None:
        stack = self._held()
        if stack:
            with self._edge_lock:
                for held in stack:
                    if held != label:
                        self._edges.add((held, label))
        stack.append(label)

    def record_release(self, label: str) -> None:
        stack = self._held()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == label:
                del stack[i]
                break

    # -- reporting ------------------------------------------------------

    def edges(self) -> Set[Tuple[str, str]]:
        with self._edge_lock:
            return set(self._edges)

    def graph(self) -> LockGraph:
        graph = LockGraph()
        for src, dst in self.edges():
            graph.add(src, dst, "runtime")
        return graph


class DebugLock:
    """``threading.Lock`` drop-in that reports to a :class:`LockTracer`.

    Implements the full lock protocol plus the private hooks
    ``threading.Condition`` relies on, so ``Condition(DebugLock(...))``
    behaves exactly like a condition over a real lock (``wait`` releases
    and re-records the reacquisition).
    """

    def __init__(self, tracer: LockTracer, label: str) -> None:
        self._raw = _REAL_LOCK()
        self._tracer = tracer
        self.label = label

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._raw.acquire(blocking, timeout)
        if got:
            self._tracer.record_acquire(self.label)
        return got

    def release(self) -> None:
        self._raw.release()
        self._tracer.record_release(self.label)

    def locked(self) -> bool:
        return self._raw.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._raw.locked() else "unlocked"
        return f"<DebugLock {self.label!r} {state}>"

    # Condition probes ownership with a try-acquire when the lock has no
    # _is_owned; do it on the raw lock so the probe never records edges.
    def _is_owned(self) -> bool:
        if self._raw.acquire(False):
            self._raw.release()
            return False
        return True

    def _at_fork_reinit(self) -> None:
        self._raw._at_fork_reinit()


@contextmanager
def trace_locks(
    tracer: Optional[LockTracer] = None,
) -> Iterator[LockTracer]:
    """Patch ``threading.Lock`` so new locks report to ``tracer``.

    Only locks *created* inside the context are traced; module-level
    locks constructed at import time keep their real type.  The patch is
    process-local — child processes (cluster shards) import a fresh
    ``threading`` and are unaffected.
    """
    tracer = tracer if tracer is not None else LockTracer()

    def _factory() -> DebugLock:
        frame = sys._getframe(1)
        label = tracer.label_for_site(frame.f_code.co_filename, frame.f_lineno)
        return DebugLock(tracer, label)

    original = threading.Lock
    threading.Lock = _factory  # type: ignore[misc, assignment]
    try:
        yield tracer
    finally:
        threading.Lock = original  # type: ignore[misc]


def crosscheck(static_graph: LockGraph, tracer: LockTracer) -> List[str]:
    """Union the static graph with the runtime edges over statically
    labeled locks; returns human-readable cycle descriptions (empty list
    means the two passes agree)."""
    runtime = LockGraph()
    for src, dst in tracer.edges():
        if ":" in src or ":" in dst:
            continue  # creation site unknown to the static pass
        runtime.add(src, dst, "runtime")
    union = static_graph.union(runtime)
    descriptions = []
    for cycle in union.find_cycles():
        sites = ", ".join(
            f"{e.src} -> {e.dst} ({e.where or 'static'})"
            for e in union.edges_in_cycle(cycle)
        )
        descriptions.append(
            f"static/runtime lock-order conflict {' -> '.join(cycle + [cycle[0]])}: {sites}"
        )
    return descriptions


__all__ = [
    "DebugLock",
    "LockTracer",
    "SiteLabelMap",
    "crosscheck",
    "static_label_map",
    "trace_locks",
]
