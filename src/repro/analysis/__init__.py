"""repro.analysis: AST concurrency/determinism linter for this codebase.

Run ``python -m repro.analysis src`` (exit 0 clean, 1 findings, 2
error), ``--selftest`` for the built-in fixture suite, ``--list-rules``
for the catalog.  Suppress a single line with
``# repro: ignore[RPR002] -- <why this is safe>`` — the justification is
mandatory.  See ``docs/ANALYSIS.md`` for the full rule catalog.
"""

from repro.analysis.base import Rule, all_rules, register_rule
from repro.analysis.findings import Finding, RuleInfo
from repro.analysis.graph import Edge, LockGraph
from repro.analysis.runner import AnalysisResult, analyze, collect_modules
from repro.analysis.rules.lockorder import build_lock_graph, lock_graph_for

__all__ = [
    "AnalysisResult",
    "Edge",
    "Finding",
    "LockGraph",
    "Rule",
    "RuleInfo",
    "all_rules",
    "analyze",
    "build_lock_graph",
    "collect_modules",
    "lock_graph_for",
    "register_rule",
]
