"""Representative-problem samplers used to build surrogate training sets.

Paper section 5.5 ("Dataset"): the surrogate is trained on mappings sampled
from *representative problems* — problem shapes drawn uniformly from typical
parameter ranges (e.g. CNN ``K`` from ``[32, 512]``) — so that at search time
it can interpolate to unseen shapes.  A :class:`ProblemSampler` encapsulates
one such range per algorithm.

Sampled dimension values are drawn from composite-friendly candidates
(powers of two times small odd factors) so the resulting map spaces have
non-trivial tilings, mirroring real layer shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.utils import ensure_rng
from repro.utils.rng import SeedLike
from repro.workloads.conv1d import make_conv1d
from repro.workloads.conv2d import make_cnn_layer
from repro.workloads.gemm import make_gemm
from repro.workloads.mttkrp import make_mttkrp
from repro.workloads.problem import Problem


def _choice(rng: np.random.Generator, values: Sequence[int]) -> int:
    return int(values[int(rng.integers(0, len(values)))])


@dataclass(frozen=True)
class ProblemSampler:
    """Draws random problems of one algorithm from representative ranges."""

    algorithm: str
    _draw: Callable[[np.random.Generator, int], Problem]

    def sample(self, seed: SeedLike = None, index: int = 0) -> Problem:
        """Sample one problem; ``index`` is woven into the generated name."""
        rng = ensure_rng(seed)
        return self._draw(rng, index)

    def sample_many(self, count: int, seed: SeedLike = None) -> Tuple[Problem, ...]:
        """Sample ``count`` problems from one stream (deterministic per seed)."""
        rng = ensure_rng(seed)
        return tuple(self._draw(rng, i) for i in range(count))


# Candidate values: small-batch sizes, channel counts, spatial sizes, and
# filter sizes seen across ResNet/VGG/AlexNet/Inception-style layers.
_CNN_N = (1, 2, 4, 8, 16, 32)
_CNN_KC = (32, 48, 64, 96, 128, 192, 256, 384, 512)
_CNN_HW = (8, 14, 16, 28, 32, 56, 64, 112)
_CNN_RS = (1, 3, 5, 7)

_MTT_IJ = (64, 128, 256, 512, 1024, 2048, 4096)
_GEMM_MNK = (32, 64, 128, 256, 512, 1024, 2048)
_CONV1D_W = (64, 128, 256, 512, 1024)
_CONV1D_R = (3, 5, 7, 9)


def _draw_cnn(rng: np.random.Generator, index: int) -> Problem:
    r = _choice(rng, _CNN_RS)
    # Input spatial size must exceed the filter; resample H/W accordingly.
    hw_candidates = [v for v in _CNN_HW if v > r]
    hw = _choice(rng, hw_candidates)
    return make_cnn_layer(
        f"cnn_sampled_{index}",
        n=_choice(rng, _CNN_N),
        k=_choice(rng, _CNN_KC),
        c=_choice(rng, _CNN_KC),
        h=hw,
        w=hw,
        r=r,
        s=r,
    )


def _draw_mttkrp(rng: np.random.Generator, index: int) -> Problem:
    return make_mttkrp(
        f"mttkrp_sampled_{index}",
        i=_choice(rng, _MTT_IJ),
        j=_choice(rng, _MTT_IJ),
        k=_choice(rng, _MTT_IJ),
        l=_choice(rng, _MTT_IJ),
    )


def _draw_gemm(rng: np.random.Generator, index: int) -> Problem:
    return make_gemm(
        f"gemm_sampled_{index}",
        m=_choice(rng, _GEMM_MNK),
        n=_choice(rng, _GEMM_MNK),
        k=_choice(rng, _GEMM_MNK),
    )


def _draw_conv1d(rng: np.random.Generator, index: int) -> Problem:
    return make_conv1d(
        f"conv1d_sampled_{index}",
        w=_choice(rng, _CONV1D_W),
        r=_choice(rng, _CONV1D_R),
    )


_SAMPLERS: Dict[str, ProblemSampler] = {
    "cnn-layer": ProblemSampler("cnn-layer", _draw_cnn),
    "mttkrp": ProblemSampler("mttkrp", _draw_mttkrp),
    "gemm": ProblemSampler("gemm", _draw_gemm),
    "conv1d": ProblemSampler("conv1d", _draw_conv1d),
}


def sampler_for_algorithm(algorithm: str) -> ProblemSampler:
    """The representative-problem sampler for ``algorithm``.

    Raises ``KeyError`` with the list of known algorithms otherwise.
    """
    try:
        return _SAMPLERS[algorithm]
    except KeyError:
        raise KeyError(
            f"no sampler for algorithm {algorithm!r}; known: {sorted(_SAMPLERS)}"
        ) from None


__all__ = ["ProblemSampler", "sampler_for_algorithm"]
