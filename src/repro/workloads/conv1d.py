"""1D-Convolution workload — the paper's running example (section 3).

For filter ``F`` of size ``R`` and input ``I`` of width ``W``::

    O[x] = sum_r I[x + r] * F[r],    0 <= x < W - R + 1

The loop nest iterates ``(X, R)`` with ``X = W - R + 1``.  Small enough that
its map space can be enumerated exhaustively, which makes it the workhorse of
the test suite: search results can be checked against ground-truth optima.
"""

from __future__ import annotations

from repro.workloads.problem import Dimension, Problem, TensorSpec

#: Canonical dimension order for 1D convolution.
CONV1D_DIMS = ("X", "R")


def make_conv1d(name: str, *, w: int, r: int) -> Problem:
    """Build a 1D-Conv :class:`Problem` for input width ``w``, filter ``r``."""
    if w < 1 or r < 1:
        raise ValueError("w and r must be >= 1")
    if r > w:
        raise ValueError(f"filter ({r}) larger than input ({w})")
    x = w - r + 1
    dims = (Dimension("X", x), Dimension("R", r))
    tensors = (
        TensorSpec("Input", axes=(("X", "R"),)),
        TensorSpec("Filter", axes=(("R",),)),
        TensorSpec("Output", axes=(("X",),), is_output=True),
    )
    return Problem(
        name=name,
        algorithm="conv1d",
        dims=dims,
        tensors=tensors,
        ops_per_point=1,
        extra={"W": w},
    )


__all__ = ["CONV1D_DIMS", "make_conv1d"]
