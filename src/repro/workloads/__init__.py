"""Workload definitions: problems as affine loop nests over named dimensions.

A *problem* (paper section 2.1) is a parameterized instance of an algorithm:
e.g. one CNN layer shape, or one MTTKRP tensor shape.  Each problem carries

* named iteration dimensions with integer bounds,
* tensors described by affine projections of those dimensions (including
  sliding-window axes such as ``X + R`` for convolution inputs), and
* an operand/result classification used by the cost model.

The package ships the paper's two target algorithms (CNN-Layer and MTTKRP),
the 1D-Conv running example from section 3, a GEMM extension, and the
Table 1 problem zoo.
"""

from repro.workloads.problem import Dimension, Problem, TensorSpec
from repro.workloads.conv1d import make_conv1d
from repro.workloads.conv2d import make_cnn_layer
from repro.workloads.gemm import make_gemm
from repro.workloads.mttkrp import make_mttkrp
from repro.workloads.sampler import ProblemSampler, sampler_for_algorithm
from repro.workloads.zoo import (
    TABLE1_PROBLEMS,
    TRANSFORMER_PROBLEMS,
    cnn_problems,
    mttkrp_problems,
    problem_by_name,
    transformer_problems,
)

__all__ = [
    "Dimension",
    "Problem",
    "ProblemSampler",
    "TABLE1_PROBLEMS",
    "TRANSFORMER_PROBLEMS",
    "TensorSpec",
    "cnn_problems",
    "make_cnn_layer",
    "make_conv1d",
    "make_gemm",
    "make_mttkrp",
    "mttkrp_problems",
    "problem_by_name",
    "sampler_for_algorithm",
    "transformer_problems",
]
