"""Table 1 problem zoo: the paper's evaluated target problems.

The paper evaluates six CNN layers drawn from ResNet, Inception-V3, VGG, and
AlexNet, plus two MTTKRP shapes (one "tall", one "skinny").  Column mapping
from the paper's Table 1 (``CNN/MTTKRP: N/I, K/J, H,W/K, R,S, C/L``):

========== ===== ===== ====== ===== =====
Problem    N/I   K/J   H,W/K  R,S   C/L
========== ===== ===== ====== ===== =====
ResNet_3    16    128    28     3    128
ResNet_4    16    256    14     3    256
Inception_2 32    192    56     3    192
VGG_2       16    128   112     3     64
AlexNet_2    8    256    27     5     96
AlexNet_4    8    384    13     3    384
MTTKRP_0   128   1024  4096     -   2048
MTTKRP_1  2048   4096  1024     -    128
========== ===== ===== ====== ===== =====
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.conv2d import make_cnn_layer
from repro.workloads.mttkrp import make_mttkrp
from repro.workloads.problem import Problem


def _build_table1() -> Tuple[Problem, ...]:
    cnn_rows = (
        ("ResNet_Conv3", 16, 128, 28, 3, 128),
        ("ResNet_Conv4", 16, 256, 14, 3, 256),
        ("Inception_Conv2", 32, 192, 56, 3, 192),
        ("VGG_Conv2", 16, 128, 112, 3, 64),
        ("AlexNet_Conv2", 8, 256, 27, 5, 96),
        ("AlexNet_Conv4", 8, 384, 13, 3, 384),
    )
    problems = [
        make_cnn_layer(name, n=n, k=k, c=c, h=hw, w=hw, r=rs, s=rs)
        for name, n, k, hw, rs, c in cnn_rows
    ]
    problems.append(make_mttkrp("MTTKRP_0", i=128, j=1024, k=4096, l=2048))
    problems.append(make_mttkrp("MTTKRP_1", i=2048, j=4096, k=1024, l=128))
    return tuple(problems)


#: All eight Table 1 problems, in the paper's row order.
TABLE1_PROBLEMS: Tuple[Problem, ...] = _build_table1()

_BY_NAME: Dict[str, Problem] = {p.name: p for p in TABLE1_PROBLEMS}


def problem_by_name(name: str) -> Problem:
    """Look up a Table 1 problem by its row name (e.g. ``"ResNet_Conv4"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown Table 1 problem {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def cnn_problems() -> Tuple[Problem, ...]:
    """The six CNN-layer rows of Table 1."""
    return tuple(p for p in TABLE1_PROBLEMS if p.algorithm == "cnn-layer")


def mttkrp_problems() -> Tuple[Problem, ...]:
    """The two MTTKRP rows of Table 1."""
    return tuple(p for p in TABLE1_PROBLEMS if p.algorithm == "mttkrp")


__all__ = ["TABLE1_PROBLEMS", "cnn_problems", "mttkrp_problems", "problem_by_name"]
