"""Problem zoo: the paper's Table 1 targets plus serving-mix extensions.

The paper evaluates six CNN layers drawn from ResNet, Inception-V3, VGG, and
AlexNet, plus two MTTKRP shapes (one "tall", one "skinny").  Column mapping
from the paper's Table 1 (``CNN/MTTKRP: N/I, K/J, H,W/K, R,S, C/L``):

========== ===== ===== ====== ===== =====
Problem    N/I   K/J   H,W/K  R,S   C/L
========== ===== ===== ====== ===== =====
ResNet_3    16    128    28     3    128
ResNet_4    16    256    14     3    256
Inception_2 32    192    56     3    192
VGG_2       16    128   112     3     64
AlexNet_2    8    256    27     5     96
AlexNet_4    8    384    13     3    384
MTTKRP_0   128   1024  4096     -   2048
MTTKRP_1  2048   4096  1024     -    128
========== ===== ===== ====== ===== =====
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.conv2d import make_cnn_layer
from repro.workloads.gemm import make_gemm
from repro.workloads.mttkrp import make_mttkrp
from repro.workloads.problem import Problem


def _build_table1() -> Tuple[Problem, ...]:
    cnn_rows = (
        ("ResNet_Conv3", 16, 128, 28, 3, 128),
        ("ResNet_Conv4", 16, 256, 14, 3, 256),
        ("Inception_Conv2", 32, 192, 56, 3, 192),
        ("VGG_Conv2", 16, 128, 112, 3, 64),
        ("AlexNet_Conv2", 8, 256, 27, 5, 96),
        ("AlexNet_Conv4", 8, 384, 13, 3, 384),
    )
    problems = [
        make_cnn_layer(name, n=n, k=k, c=c, h=hw, w=hw, r=rs, s=rs)
        for name, n, k, hw, rs, c in cnn_rows
    ]
    problems.append(make_mttkrp("MTTKRP_0", i=128, j=1024, k=4096, l=2048))
    problems.append(make_mttkrp("MTTKRP_1", i=2048, j=4096, k=1024, l=128))
    return tuple(problems)


#: All eight Table 1 problems, in the paper's row order.
TABLE1_PROBLEMS: Tuple[Problem, ...] = _build_table1()


def _build_transformers() -> Tuple[Problem, ...]:
    """BERT-base encoder GEMMs (hidden 768, FFN 3072, sequence 512).

    Beyond the paper: the serving load mix wants transformer-shaped
    traffic, and every encoder layer is four dense GEMMs over the token
    matrix — the fused QKV projection, the attention output projection,
    and the two FFN matmuls.  Shapes follow BERT-base with the canonical
    512-token sequence; framework-wise they are plain ``gemm`` problems,
    so the map space, cost model, and every searcher serve them unchanged.
    """
    rows = (
        ("BERT_QKV", 512, 2304, 768),    # x @ W_qkv (fused Q,K,V heads)
        ("BERT_AttnOut", 512, 768, 768),  # attn @ W_o
        ("BERT_FFN1", 512, 3072, 768),   # x @ W_1 (expand)
        ("BERT_FFN2", 512, 768, 3072),   # h @ W_2 (contract)
    )
    return tuple(make_gemm(name, m=m, n=n, k=k) for name, m, n, k in rows)


#: BERT-base encoder-layer GEMMs — the transformer slice of the zoo.
TRANSFORMER_PROBLEMS: Tuple[Problem, ...] = _build_transformers()

_BY_NAME: Dict[str, Problem] = {
    p.name: p for p in TABLE1_PROBLEMS + TRANSFORMER_PROBLEMS
}


def problem_by_name(name: str) -> Problem:
    """Look up a zoo problem by name (e.g. ``"ResNet_Conv4"``, ``"BERT_FFN1"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown zoo problem {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def cnn_problems() -> Tuple[Problem, ...]:
    """The six CNN-layer rows of Table 1."""
    return tuple(p for p in TABLE1_PROBLEMS if p.algorithm == "cnn-layer")


def mttkrp_problems() -> Tuple[Problem, ...]:
    """The two MTTKRP rows of Table 1."""
    return tuple(p for p in TABLE1_PROBLEMS if p.algorithm == "mttkrp")


def transformer_problems() -> Tuple[Problem, ...]:
    """The BERT-base GEMM entries (serving-mix extension, not Table 1)."""
    return TRANSFORMER_PROBLEMS


__all__ = [
    "TABLE1_PROBLEMS",
    "TRANSFORMER_PROBLEMS",
    "cnn_problems",
    "mttkrp_problems",
    "problem_by_name",
    "transformer_problems",
]
