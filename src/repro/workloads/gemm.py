"""GEMM workload — an extension beyond the paper's two target algorithms.

Dense matrix multiplication ``O[m, n] = sum_k A[m, k] * B[k, n]`` is the
simplest three-dimensional tensor kernel and demonstrates that the framework
is algorithm-agnostic: no code outside this module knows about GEMM, yet the
map space, cost model, surrogate, and every searcher work on it unchanged.
"""

from __future__ import annotations

from repro.workloads.problem import Dimension, Problem, TensorSpec

#: Canonical dimension order for GEMM.
GEMM_DIMS = ("M", "N", "K")


def make_gemm(name: str, *, m: int, n: int, k: int) -> Problem:
    """Build a GEMM :class:`Problem` for ``(M, N, K)``."""
    if min(m, n, k) < 1:
        raise ValueError("all GEMM dimensions must be >= 1")
    dims = (Dimension("M", m), Dimension("N", n), Dimension("K", k))
    tensors = (
        TensorSpec("A", axes=(("M",), ("K",))),
        TensorSpec("B", axes=(("K",), ("N",))),
        TensorSpec("Output", axes=(("M",), ("N",)), is_output=True),
    )
    return Problem(
        name=name,
        algorithm="gemm",
        dims=dims,
        tensors=tensors,
        ops_per_point=1,
    )


__all__ = ["GEMM_DIMS", "make_gemm"]
