"""Core problem abstraction: dimensions, tensors, and affine projections.

The cost model and map space only need three things from a workload:

1. the iteration-space dimensions and their bounds (the loop nest),
2. for each tensor, which dimensions index it (its *projection*), including
   compound sliding-window axes like ``X + R`` in convolutions, and
3. which tensor is the output (read-modify-write traffic differs).

Everything else (search, surrogate, harness) is algorithm-agnostic, which is
what lets Mind Mappings be "target domain-independent" (paper contribution 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

from repro.utils import prod


@dataclass(frozen=True)
class Dimension:
    """A single loop-nest dimension with an inclusive iteration bound."""

    name: str
    bound: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dimension name must be non-empty")
        if self.bound < 1:
            raise ValueError(f"dimension {self.name!r} bound must be >= 1, got {self.bound}")


@dataclass(frozen=True)
class TensorSpec:
    """A tensor accessed by the loop nest.

    ``axes`` is a tuple of tensor axes; each axis is itself a tuple of
    dimension names whose tile extents *add* along that axis.  A plain axis
    indexed by one dimension is ``("K",)``; a convolution sliding-window axis
    ``x + r`` is ``("X", "R")`` and has extent ``X + R - 1``.
    """

    name: str
    axes: Tuple[Tuple[str, ...], ...]
    is_output: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if not self.axes:
            raise ValueError(f"tensor {self.name!r} must have at least one axis")
        for axis in self.axes:
            if not axis:
                raise ValueError(f"tensor {self.name!r} has an empty axis")

    @property
    def dims(self) -> Tuple[str, ...]:
        """All dimension names that index this tensor, deduplicated, ordered."""
        seen: Dict[str, None] = {}
        for axis in self.axes:
            for dim in axis:
                seen.setdefault(dim, None)
        return tuple(seen)

    def is_relevant(self, dim: str) -> bool:
        """True when iterating ``dim`` touches new elements of this tensor."""
        return dim in self.dims

    def footprint(self, extents: Mapping[str, int]) -> int:
        """Number of distinct elements touched given per-dimension extents.

        For a sliding-window axis ``(X, R)`` with extents ``x`` and ``r`` the
        axis covers ``x + r - 1`` positions; plain axes cover their extent.
        Dimensions missing from ``extents`` default to 1 (not iterated).
        """
        total = 1
        for axis in self.axes:
            extent = sum(int(extents.get(dim, 1)) for dim in axis) - (len(axis) - 1)
            total *= max(extent, 1)
        return total


@dataclass(frozen=True)
class Problem:
    """A parameterized instance of an algorithm (paper definition 2.1).

    ``dims`` is ordered: the order defines the canonical dimension indexing
    used by mapping vectors and the surrogate encoding.
    """

    name: str
    algorithm: str
    dims: Tuple[Dimension, ...]
    tensors: Tuple[TensorSpec, ...]
    ops_per_point: int = 1
    extra: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [d.name for d in self.dims]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names in {names}")
        outputs = [t for t in self.tensors if t.is_output]
        if len(outputs) != 1:
            raise ValueError(f"problem {self.name!r} must have exactly one output tensor")
        known = set(names)
        for tensor in self.tensors:
            missing = set(tensor.dims) - known
            if missing:
                raise ValueError(
                    f"tensor {tensor.name!r} references unknown dimensions {sorted(missing)}"
                )

    @property
    def dim_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.dims)

    @property
    def bounds(self) -> Dict[str, int]:
        """Dimension name -> iteration bound."""
        return {d.name: d.bound for d in self.dims}

    @property
    def output(self) -> TensorSpec:
        for tensor in self.tensors:
            if tensor.is_output:
                return tensor
        raise AssertionError("unreachable: validated in __post_init__")

    @property
    def inputs(self) -> Tuple[TensorSpec, ...]:
        return tuple(t for t in self.tensors if not t.is_output)

    @property
    def total_points(self) -> int:
        """Size of the iteration space (number of innermost-loop visits)."""
        return prod(d.bound for d in self.dims)

    @property
    def total_ops(self) -> int:
        """Total compute operations (MAC-equivalents)."""
        return self.total_points * self.ops_per_point

    def tensor(self, name: str) -> TensorSpec:
        """Look up a tensor by name."""
        for tensor in self.tensors:
            if tensor.name == name:
                return tensor
        raise KeyError(f"no tensor named {name!r} in problem {self.name!r}")

    def tensor_size(self, tensor: TensorSpec) -> int:
        """Total element count of ``tensor`` for this problem's bounds."""
        return tensor.footprint(self.bounds)

    def pid(self) -> Tuple[int, ...]:
        """Problem identifier: the tuple of dimension bounds (paper 4.1.1 Q3).

        Two problems of the same algorithm with the same shape share a pid,
        which is exactly the property the surrogate's problem-conditioning
        input needs.
        """
        return tuple(d.bound for d in self.dims)

    def describe(self) -> str:
        """One-line human-readable summary."""
        dims = ", ".join(f"{d.name}={d.bound}" for d in self.dims)
        return f"{self.name} [{self.algorithm}] ({dims})"


def validate_extents(problem: Problem, extents: Mapping[str, int]) -> None:
    """Raise ``ValueError`` unless ``extents`` covers every problem dimension
    with a value in ``[1, bound]``."""
    for dim in problem.dims:
        extent = extents.get(dim.name)
        if extent is None:
            raise ValueError(f"missing extent for dimension {dim.name!r}")
        if not 1 <= extent <= dim.bound:
            raise ValueError(
                f"extent {extent} for dimension {dim.name!r} outside [1, {dim.bound}]"
            )


__all__ = ["Dimension", "Problem", "TensorSpec", "validate_extents"]
