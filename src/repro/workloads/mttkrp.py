"""MTTKRP workload (paper section 5.1.1, equation 4).

Matricized Tensor Times Khatri-Rao Product contracts a 3D tensor ``A`` with
two factor matrices ``B`` and ``C``::

    O[i, j] = sum_k sum_l A[i, k, l] * B[k, j] * C[l, j]

The loop nest iterates ``(I, J, K, L)``.  Each innermost point performs two
multiplies and one accumulate; the paper's MTTKRP PEs consume 3 operands to
produce 1 output per cycle, so we count one compute op per point and three
operand tensors.
"""

from __future__ import annotations

from repro.workloads.problem import Dimension, Problem, TensorSpec

#: Canonical dimension order for MTTKRP; mapping vectors rely on it.
MTTKRP_DIMS = ("I", "J", "K", "L")


def make_mttkrp(name: str, *, i: int, j: int, k: int, l: int) -> Problem:
    """Build an MTTKRP :class:`Problem` for shape ``(I, J, K, L)``."""
    if min(i, j, k, l) < 1:
        raise ValueError("all MTTKRP dimensions must be >= 1")
    dims = (
        Dimension("I", i),
        Dimension("J", j),
        Dimension("K", k),
        Dimension("L", l),
    )
    tensors = (
        TensorSpec("A", axes=(("I",), ("K",), ("L",))),
        TensorSpec("B", axes=(("K",), ("J",))),
        TensorSpec("C", axes=(("L",), ("J",))),
        TensorSpec("Output", axes=(("I",), ("J",)), is_output=True),
    )
    return Problem(
        name=name,
        algorithm="mttkrp",
        dims=dims,
        tensors=tensors,
        ops_per_point=1,
    )


__all__ = ["MTTKRP_DIMS", "make_mttkrp"]
