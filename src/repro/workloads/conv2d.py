"""CNN-Layer workload (paper section 5.1.1, equation 3).

A CNN layer convolves ``N`` input images of ``C`` channels with ``K`` filters
of spatial size ``R x S``, producing ``N`` outputs of ``K`` channels and
spatial size ``X x Y`` where (stride 1, no padding)::

    X = W - R + 1
    Y = H - S + 1

The loop nest iterates dimensions ``(N, K, C, X, Y, R, S)``; tensors are

* ``Input``   I[n, c, x + r, y + s]   -- sliding-window axes,
* ``Weights`` F[k, c, r, s],
* ``Output``  O[n, k, x, y]           (the single output tensor).
"""

from __future__ import annotations

from repro.workloads.problem import Dimension, Problem, TensorSpec

#: Canonical dimension order for CNN layers; mapping vectors rely on it.
CNN_DIMS = ("N", "K", "C", "X", "Y", "R", "S")


def make_cnn_layer(
    name: str,
    *,
    n: int,
    k: int,
    c: int,
    h: int,
    w: int,
    r: int,
    s: int,
    stride: int = 1,
) -> Problem:
    """Build a CNN-layer :class:`Problem` from the paper's Table 1 columns.

    ``h``/``w`` are the *input* spatial sizes; the output sizes are derived
    as in the paper (``(W - R + 1) / stride``).  ``stride`` must divide the
    valid output range exactly for the loop nest to stay affine.
    """
    if min(n, k, c, h, w, r, s, stride) < 1:
        raise ValueError("all CNN layer parameters must be >= 1")
    if r > w or s > h:
        raise ValueError(f"filter ({r}x{s}) larger than input ({w}x{h})")
    x = (w - r) // stride + 1
    y = (h - s) // stride + 1
    dims = (
        Dimension("N", n),
        Dimension("K", k),
        Dimension("C", c),
        Dimension("X", x),
        Dimension("Y", y),
        Dimension("R", r),
        Dimension("S", s),
    )
    tensors = (
        TensorSpec("Input", axes=(("N",), ("C",), ("X", "R"), ("Y", "S"))),
        TensorSpec("Weights", axes=(("K",), ("C",), ("R",), ("S",))),
        TensorSpec("Output", axes=(("N",), ("K",), ("X",), ("Y",)), is_output=True),
    )
    return Problem(
        name=name,
        algorithm="cnn-layer",
        dims=dims,
        tensors=tensors,
        ops_per_point=1,
        extra={"H": h, "W": w, "stride": stride},
    )


__all__ = ["CNN_DIMS", "make_cnn_layer"]
