"""The :class:`Mapping` value type — one point in a map space.

A mapping is stored as aligned tuples (hashable, frozen) rather than dicts so
mappings can be deduplicated in sets and used as cache keys by searchers.
Factor order per dimension is ``(DRAM, L2, spatial, L1)``: the product over
the four entries must equal the dimension bound, making tile extents exact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import Dict, Mapping as MappingType, Sequence, Tuple

import numpy as np

from repro.utils import prod

#: Temporal levels carrying a loop order, outermost first.
ORDER_LEVELS: Tuple[str, ...] = ("DRAM", "L2", "L1")

#: Levels with allocatable banked buffers.
ALLOC_LEVELS: Tuple[str, ...] = ("L2", "L1")

#: Index of each factor within a tiling tuple.
FACTOR_SLOTS: Tuple[str, ...] = ("DRAM", "L2", "spatial", "L1")


@dataclass(frozen=True)
class Mapping:
    """A complete assignment to the accelerator's programmable attributes.

    Attributes
    ----------
    dims:
        Problem dimension names, fixing the alignment of ``tile_factors``.
    tile_factors:
        Per dimension, ``(dram, l2, spatial, l1)`` factors whose product is
        the dimension bound.
    loop_orders:
        One permutation of ``dims`` per temporal level in ``ORDER_LEVELS``
        order (outermost level first, outermost loop first within a level).
    tensors:
        Tensor names, fixing the alignment of ``allocation``.
    allocation:
        Per allocatable level (``ALLOC_LEVELS`` order), banks per tensor.
    """

    dims: Tuple[str, ...]
    tile_factors: Tuple[Tuple[int, int, int, int], ...]
    loop_orders: Tuple[Tuple[str, ...], ...]
    tensors: Tuple[str, ...]
    allocation: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.tile_factors) != len(self.dims):
            raise ValueError("tile_factors must align with dims")
        for dim, factors in zip(self.dims, self.tile_factors):
            if len(factors) != len(FACTOR_SLOTS):
                raise ValueError(f"dimension {dim!r} needs {len(FACTOR_SLOTS)} factors")
            if any(f < 1 for f in factors):
                raise ValueError(f"dimension {dim!r} has non-positive factor {factors}")
        if len(self.loop_orders) != len(ORDER_LEVELS):
            raise ValueError(f"need {len(ORDER_LEVELS)} loop orders")
        expected = frozenset(self.dims)
        for level, order in zip(ORDER_LEVELS, self.loop_orders):
            if frozenset(order) != expected or len(order) != len(self.dims):
                raise ValueError(f"loop order at {level} is not a permutation of dims")
        if len(self.allocation) != len(ALLOC_LEVELS):
            raise ValueError(f"need allocations for {ALLOC_LEVELS}")
        for level, banks in zip(ALLOC_LEVELS, self.allocation):
            if len(banks) != len(self.tensors):
                raise ValueError(f"allocation at {level} must align with tensors")
            if any(b < 1 for b in banks):
                raise ValueError(f"allocation at {level} must give every tensor a bank")

    # ---- tiling accessors -------------------------------------------------

    @cached_property
    def factor_array(self) -> np.ndarray:
        """``(len(dims), 4)`` int64 array of ``tile_factors``, cached.

        The vectorized cost kernels lower every batch lane's nested factor
        tuples into one small array; caching that array on the value object
        makes re-pricing a mapping (replay, cohort prewarm rounds) pay the
        conversion once per mapping instead of once per batch compile.  The
        array is frozen read-only so sharing it across batches is safe.
        """
        factors = np.asarray(self.tile_factors, dtype=np.int64)
        factors.setflags(write=False)
        return factors

    def dim_index(self, dim: str) -> int:
        try:
            return self.dims.index(dim)
        except ValueError:
            raise KeyError(f"unknown dimension {dim!r}") from None

    def factors(self, dim: str) -> Tuple[int, int, int, int]:
        """``(dram, l2, spatial, l1)`` factors for ``dim``."""
        return self.tile_factors[self.dim_index(dim)]

    def factor(self, dim: str, slot: str) -> int:
        """One factor of ``dim`` by slot name (see ``FACTOR_SLOTS``)."""
        return self.factors(dim)[FACTOR_SLOTS.index(slot)]

    @property
    def spatial_factors(self) -> Dict[str, int]:
        """Per-dimension degree of spatial parallelism."""
        return {dim: f[2] for dim, f in zip(self.dims, self.tile_factors)}

    @property
    def spatial_size(self) -> int:
        """Total number of PEs used (product of spatial factors)."""
        return prod(f[2] for f in self.tile_factors)

    def dim_bound(self, dim: str) -> int:
        """Total iteration bound implied by the factors of ``dim``."""
        return prod(self.factors(dim))

    def tile_extents(self, level: str) -> Dict[str, int]:
        """Per-dimension extent of the data tile resident at ``level``.

        The L1 tile covers the L1 factors only (per PE); the L2 tile covers
        everything below the DRAM-level loops (L2 temporal x spatial x L1);
        DRAM "tiles" are the full problem.
        """
        extents: Dict[str, int] = {}
        for dim, (dram, l2, spatial, l1) in zip(self.dims, self.tile_factors):
            if level == "L1":
                extents[dim] = l1
            elif level == "L2":
                extents[dim] = l1 * spatial * l2
            elif level == "DRAM":
                extents[dim] = l1 * spatial * l2 * dram
            else:
                raise KeyError(f"unknown level {level!r}")
        return extents

    def level_factors(self, level: str) -> Dict[str, int]:
        """Per-dimension temporal loop bound at ``level`` (no spatial)."""
        slot = {"DRAM": 0, "L2": 1, "L1": 3}.get(level)
        if slot is None:
            raise KeyError(f"level {level!r} has no temporal loops")
        return {dim: f[slot] for dim, f in zip(self.dims, self.tile_factors)}

    # ---- loop order and allocation accessors ------------------------------

    def loop_order(self, level: str) -> Tuple[str, ...]:
        """Loop permutation at a temporal level, outermost loop first."""
        try:
            return self.loop_orders[ORDER_LEVELS.index(level)]
        except ValueError:
            raise KeyError(f"unknown temporal level {level!r}") from None

    def alloc_banks(self, level: str) -> Dict[str, int]:
        """Banks assigned to each tensor at an allocatable level."""
        try:
            banks = self.allocation[ALLOC_LEVELS.index(level)]
        except ValueError:
            raise KeyError(f"level {level!r} has no allocation") from None
        return dict(zip(self.tensors, banks))

    def alloc_fraction(self, level: str, tensor: str) -> float:
        """Fraction of the level's banks assigned to ``tensor``."""
        banks = self.alloc_banks(level)
        total = sum(banks.values())
        return banks[tensor] / total if total else 0.0

    # ---- functional updates ------------------------------------------------

    def with_tile_factors(self, dim: str, factors: Sequence[int]) -> "Mapping":
        """Copy of this mapping with ``dim``'s factor tuple replaced."""
        index = self.dim_index(dim)
        updated = list(self.tile_factors)
        updated[index] = tuple(int(f) for f in factors)  # type: ignore[assignment]
        return replace(self, tile_factors=tuple(updated))

    def with_loop_order(self, level: str, order: Sequence[str]) -> "Mapping":
        """Copy of this mapping with the loop order at ``level`` replaced."""
        index = ORDER_LEVELS.index(level)
        updated = list(self.loop_orders)
        updated[index] = tuple(order)
        return replace(self, loop_orders=tuple(updated))

    def with_allocation(self, level: str, banks: Sequence[int]) -> "Mapping":
        """Copy of this mapping with the bank split at ``level`` replaced."""
        index = ALLOC_LEVELS.index(level)
        updated = list(self.allocation)
        updated[index] = tuple(int(b) for b in banks)
        return replace(self, allocation=tuple(updated))

    # ---- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible dict (inverse of :meth:`from_dict`)."""
        return {
            "dims": list(self.dims),
            "tile_factors": [list(factors) for factors in self.tile_factors],
            "loop_orders": [list(order) for order in self.loop_orders],
            "tensors": list(self.tensors),
            "allocation": [list(banks) for banks in self.allocation],
        }

    @classmethod
    def from_dict(cls, payload: MappingType[str, object]) -> "Mapping":
        """Rebuild a mapping from :meth:`to_dict` output (validates shape)."""
        return cls(
            dims=tuple(str(d) for d in payload["dims"]),
            tile_factors=tuple(
                tuple(int(f) for f in factors) for factors in payload["tile_factors"]
            ),
            loop_orders=tuple(
                tuple(str(d) for d in order) for order in payload["loop_orders"]
            ),
            tensors=tuple(str(t) for t in payload["tensors"]),
            allocation=tuple(
                tuple(int(b) for b in banks) for banks in payload["allocation"]
            ),
        )

    # ---- presentation -------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable rendering (for examples and logs)."""
        lines = ["Mapping:"]
        lines.append("  tiling (DRAM, L2, spatial, L1):")
        for dim, factors in zip(self.dims, self.tile_factors):
            lines.append(f"    {dim}: {factors}")
        for level, order in zip(ORDER_LEVELS, self.loop_orders):
            lines.append(f"  loop order @{level}: {' -> '.join(order)}")
        for level, banks in zip(ALLOC_LEVELS, self.allocation):
            pairs = ", ".join(f"{t}={b}" for t, b in zip(self.tensors, banks))
            lines.append(f"  banks @{level}: {pairs}")
        return "\n".join(lines)


__all__ = ["ALLOC_LEVELS", "FACTOR_SLOTS", "Mapping", "ORDER_LEVELS"]
