"""Factorization and composition utilities for tilings and bank allocations.

Tile sizes must exactly factorize each problem dimension across the memory
levels, so uniform map-space sampling reduces to uniform choice among ordered
factorizations, and gradient projection reduces to nearest-factorization
search in log space (paper section 4.2, "Projected Gradient Descent").
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils import factorizations
from repro.utils.rng import SeedLike, ensure_rng


def sample_factorization(n: int, parts: int, rng: SeedLike = None) -> Tuple[int, ...]:
    """Uniformly sample one ordered factorization of ``n`` into ``parts``.

    Uniform over *factorizations* (not over factor values), matching the
    paper's uniform map-space sampling.
    """
    options = factorizations(n, parts)
    generator = ensure_rng(rng)
    return options[int(generator.integers(0, len(options)))]


def nearest_factorization(
    n: int, parts: int, target: Sequence[float]
) -> Tuple[int, ...]:
    """The ordered factorization of ``n`` closest to ``target`` in log space.

    ``target`` holds desired (possibly fractional, possibly non-dividing)
    factors, e.g. produced by a gradient step.  Distance is the L2 norm of
    per-part ``log2`` ratios, so halving and doubling a factor are equally
    wrong — matching the log2 encoding the surrogate sees.
    """
    if len(target) != parts:
        raise ValueError(f"target has {len(target)} parts, expected {parts}")
    logs = [math.log2(max(float(t), 1e-9)) for t in target]
    best: Tuple[int, ...] = ()
    best_distance = math.inf
    for option in factorizations(n, parts):
        distance = 0.0
        for value, want in zip(option, logs):
            delta = math.log2(value) - want
            distance += delta * delta
            if distance >= best_distance:
                break
        if distance < best_distance:
            best_distance = distance
            best = option
    return best


def compositions(total: int, parts: int, min_each: int = 1) -> Tuple[Tuple[int, ...], ...]:
    """All ordered compositions of ``total`` into ``parts`` with lower bound.

    Used to enumerate bank allocations in tiny map spaces.  The count is
    ``C(total - parts * min_each + parts - 1, parts - 1)``; callers should
    only enumerate when that is small.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    spare = total - parts * min_each
    if spare < 0:
        raise ValueError(
            f"cannot split {total} into {parts} parts of at least {min_each}"
        )
    if parts == 1:
        return ((total,),)
    result: List[Tuple[int, ...]] = []
    for head in range(min_each, total - (parts - 1) * min_each + 1):
        for tail in compositions(total - head, parts - 1, min_each):
            result.append((head,) + tail)
    return tuple(result)


def sample_composition(
    total: int, parts: int, rng: SeedLike = None, min_each: int = 1
) -> Tuple[int, ...]:
    """Uniformly sample a composition of ``total`` into ``parts`` >= min_each.

    Stars-and-bars: place ``parts - 1`` cuts uniformly among the spare units,
    which yields the uniform distribution over compositions.
    """
    spare = total - parts * min_each
    if spare < 0:
        raise ValueError(
            f"cannot split {total} into {parts} parts of at least {min_each}"
        )
    generator = ensure_rng(rng)
    if parts == 1:
        return (total,)
    # Choose cut positions among spare + parts - 1 slots.
    slots = spare + parts - 1
    cuts = np.sort(generator.choice(slots, size=parts - 1, replace=False))
    previous = -1
    sizes: List[int] = []
    for cut in cuts:
        sizes.append(int(cut) - previous - 1)
        previous = int(cut)
    sizes.append(slots - 1 - previous)
    return tuple(size + min_each for size in sizes)


def smallest_prime_factor(n: int) -> int:
    """Smallest prime factor of ``n`` (``n`` itself when prime; 1 for 1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return 1
    limit = int(math.isqrt(n))
    for candidate in range(2, limit + 1):
        if n % candidate == 0:
            return candidate
    return n


def nearest_composition(
    total: int, parts: int, target: Sequence[float], min_each: int = 1
) -> Tuple[int, ...]:
    """Round real-valued ``target`` to a composition of ``total``.

    Greedy largest-remainder rounding: floor each entry at ``min_each``,
    then distribute the remaining units to the entries with the largest
    fractional shortfall.  Used to project gradient-updated bank-allocation
    fractions back onto valid integer allocations.
    """
    if len(target) != parts:
        raise ValueError(f"target has {len(target)} parts, expected {parts}")
    spare_total = total - parts * min_each
    if spare_total < 0:
        raise ValueError(
            f"cannot split {total} into {parts} parts of at least {min_each}"
        )
    desired = np.maximum(np.asarray(target, dtype=float), 0.0)
    if desired.sum() <= 0:
        desired = np.ones(parts)
    desired = desired / desired.sum() * total
    spare = np.maximum(desired - min_each, 0.0)
    if spare.sum() <= 0:
        base = [min_each] * parts
        remainder = spare_total
        floors = np.zeros(parts)
    else:
        spare = spare / spare.sum() * spare_total
        floors = np.floor(spare)
        base = [min_each + int(f) for f in floors]
        remainder = spare_total - int(floors.sum())
    fractional = spare - floors
    order = np.argsort(-fractional)
    result = list(base)
    for index in order[:remainder]:
        result[int(index)] += 1
    return tuple(result)


__all__ = [
    "compositions",
    "nearest_composition",
    "nearest_factorization",
    "sample_composition",
    "sample_factorization",
    "smallest_prime_factor",
]
