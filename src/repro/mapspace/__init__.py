"""Mapping and map-space abstractions (paper sections 2.1-2.2, Appendix B).

A :class:`Mapping` fixes every programmable attribute of the accelerator for
one problem:

* **Tiling** — per dimension, an exact factorization into (DRAM, L2-temporal,
  spatial, L1) factors,
* **Loop orders** — a permutation of the dimensions at each temporal level,
* **Parallelism** — the spatial factors (distribution across PEs), and
* **Buffer allocation** — banks assigned to each tensor at L2 and L1.

A :class:`MapSpace` binds a problem to an accelerator and provides the three
routines the paper's API requires (Appendix B): ``sample`` (getMapping),
``is_member`` (isMember), and ``project`` (getProjection), plus neighbourhood
moves for black-box searchers and exhaustive enumeration for tiny spaces.
"""

from repro.mapspace.mapping import Mapping
from repro.mapspace.factors import (
    compositions,
    nearest_factorization,
    sample_composition,
    sample_factorization,
    smallest_prime_factor,
)
from repro.mapspace.space import MapSpace

__all__ = [
    "MapSpace",
    "Mapping",
    "compositions",
    "nearest_factorization",
    "sample_composition",
    "sample_factorization",
    "smallest_prime_factor",
]
