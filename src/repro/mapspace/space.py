"""The :class:`MapSpace`: validity, sampling, projection, and neighbourhoods.

Implements the three routines the paper's API requires (Appendix B):

* ``sample``    -> *getMapping*: a random valid mapping,
* ``is_member`` -> *isMember*: validity of a candidate mapping,
* ``project``   -> *getProjection*: nearest valid mapping to a candidate,

plus the neighbourhood/crossover moves that the black-box baselines (SA, GA,
RL) operate with, and exhaustive enumeration for tiny spaces (tests and the
1D-Conv running example).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.accelerator import Accelerator
from repro.mapspace.factors import (
    compositions,
    nearest_composition,
    nearest_factorization,
    sample_composition,
    sample_factorization,
    smallest_prime_factor,
)
from repro.mapspace.mapping import ALLOC_LEVELS, FACTOR_SLOTS, Mapping, ORDER_LEVELS
from repro.utils import factorizations, prod
from repro.utils.rng import SeedLike, ensure_rng
from repro.workloads.problem import Problem

#: Tile-factor slot indices (see ``FACTOR_SLOTS``).
_DRAM, _L2, _SPATIAL, _L1 = 0, 1, 2, 3


class MapSpace:
    """All valid mappings of one problem onto one accelerator.

    Construction is cheap; all expensive enumeration is lazy.  Instances are
    immutable and safe to share between searchers.
    """

    def __init__(self, problem: Problem, accelerator: Accelerator) -> None:
        self.problem = problem
        self.accelerator = accelerator
        self.dims: Tuple[str, ...] = problem.dim_names
        self.tensor_names: Tuple[str, ...] = tuple(t.name for t in problem.tensors)
        self._tensors = problem.tensors
        self._bounds = problem.bounds

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------

    def validity_errors(self, mapping: Mapping) -> List[str]:
        """All reasons ``mapping`` is invalid (empty list when valid)."""
        errors: List[str] = []
        if mapping.dims != self.dims:
            errors.append(f"dims {mapping.dims} != problem dims {self.dims}")
            return errors
        if mapping.tensors != self.tensor_names:
            errors.append(f"tensors {mapping.tensors} != {self.tensor_names}")
            return errors
        for dim in self.dims:
            implied = mapping.dim_bound(dim)
            if implied != self._bounds[dim]:
                errors.append(
                    f"factors of {dim} multiply to {implied}, bound is {self._bounds[dim]}"
                )
        if mapping.spatial_size > self.accelerator.num_pes:
            errors.append(
                f"spatial parallelism {mapping.spatial_size} exceeds "
                f"{self.accelerator.num_pes} PEs"
            )
        for level in ALLOC_LEVELS:
            banks = mapping.alloc_banks(level)
            total = sum(banks.values())
            if total > self.accelerator.banks(level):
                errors.append(
                    f"{level} allocation uses {total} banks, only "
                    f"{self.accelerator.banks(level)} available"
                )
            extents = mapping.tile_extents(level)
            bank_words = self.accelerator.bank_words(level)
            for tensor in self._tensors:
                footprint = tensor.footprint(extents)
                capacity = banks[tensor.name] * bank_words
                if footprint > capacity:
                    errors.append(
                        f"{tensor.name} tile ({footprint} words) exceeds its "
                        f"{level} allocation ({capacity} words)"
                    )
        return errors

    def is_member(self, mapping: Mapping) -> bool:
        """True when ``mapping`` is valid for this problem and accelerator.

        The paper's ``isMember(m, p)`` routine.
        """
        return not self.validity_errors(mapping)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(self, seed: SeedLike = None, max_tries: int = 64) -> Mapping:
        """A random valid mapping (the paper's ``getMapping`` routine).

        Rejection-samples uniform candidates; if ``max_tries`` candidates are
        all invalid (tight buffers), deterministically repairs the last one
        via :meth:`project` so sampling always terminates.
        """
        rng = ensure_rng(seed)
        candidate: Optional[Mapping] = None
        for attempt in range(max_tries):
            candidate = self._sample_candidate(rng, proportional_alloc=attempt % 2 == 1)
            if self.is_member(candidate):
                return candidate
        assert candidate is not None
        return self.project(candidate)

    def sample_many(self, count: int, seed: SeedLike = None) -> List[Mapping]:
        """``count`` independent valid samples from one deterministic stream."""
        rng = ensure_rng(seed)
        return [self.sample(rng) for _ in range(count)]

    def _sample_candidate(
        self, rng: np.random.Generator, proportional_alloc: bool = False
    ) -> Mapping:
        """One structurally-valid candidate (may violate capacity limits)."""
        tile_factors = []
        for dim in self.dims:
            factors = list(sample_factorization(self._bounds[dim], 4, rng))
            tile_factors.append(factors)
        self._cap_spatial(tile_factors)
        orders = tuple(
            tuple(rng.permutation(list(self.dims))) for _ in ORDER_LEVELS
        )
        mapping = Mapping(
            dims=self.dims,
            tile_factors=tuple(tuple(f) for f in tile_factors),
            loop_orders=orders,
            tensors=self.tensor_names,
            allocation=self._sample_allocation(rng, tile_factors, proportional_alloc),
        )
        return mapping

    def _cap_spatial(self, tile_factors: List[List[int]]) -> None:
        """Demote spatial factors to L2-temporal until they fit the PE array."""
        while prod(f[_SPATIAL] for f in tile_factors) > self.accelerator.num_pes:
            index = max(
                range(len(tile_factors)), key=lambda i: tile_factors[i][_SPATIAL]
            )
            factors = tile_factors[index]
            prime = smallest_prime_factor(factors[_SPATIAL])
            factors[_SPATIAL] //= prime
            factors[_L2] *= prime

    def _sample_allocation(
        self,
        rng: np.random.Generator,
        tile_factors: Sequence[Sequence[int]],
        proportional: bool,
    ) -> Tuple[Tuple[int, ...], ...]:
        """Bank split per level: uniform, or footprint-proportional."""
        n_tensors = len(self._tensors)
        allocation = []
        for level in ALLOC_LEVELS:
            total = self.accelerator.banks(level)
            if not proportional:
                allocation.append(sample_composition(total, n_tensors, rng))
                continue
            extents = self._extents_for(level, tile_factors)
            footprints = np.array(
                [max(t.footprint(extents), 1) for t in self._tensors], dtype=float
            )
            allocation.append(nearest_composition(total, n_tensors, footprints))
        return tuple(allocation)

    def _extents_for(
        self, level: str, tile_factors: Sequence[Sequence[int]]
    ) -> Dict[str, int]:
        extents = {}
        for dim, factors in zip(self.dims, tile_factors):
            if level == "L1":
                extents[dim] = factors[_L1]
            else:  # L2 tile spans L1 x spatial x L2 factors
                extents[dim] = factors[_L1] * factors[_SPATIAL] * factors[_L2]
        return extents

    # ------------------------------------------------------------------
    # Projection (the paper's getProjection, used by PGD)
    # ------------------------------------------------------------------

    def project(self, mapping: Mapping) -> Mapping:
        """Nearest valid mapping to ``mapping`` (paper section 4.2).

        Repairs, in order: factor products that do not match the dimension
        bounds (nearest factorization in log space), spatial overflow
        (demote to L2-temporal), over-committed bank allocations (largest
        remainder rounding), and buffer-capacity violations (hoist tile
        factors toward DRAM until each tensor's tile fits its banks).
        """
        tile_factors = [list(f) for f in mapping.tile_factors]
        for index, dim in enumerate(self.dims):
            bound = self._bounds[dim]
            if prod(tile_factors[index]) != bound:
                tile_factors[index] = list(
                    nearest_factorization(bound, 4, tile_factors[index])
                )
        self._cap_spatial(tile_factors)
        allocation = self._repair_allocation(mapping)
        tile_factors = self._repair_capacity(tile_factors, allocation)
        repaired = Mapping(
            dims=self.dims,
            tile_factors=tuple(tuple(f) for f in tile_factors),
            loop_orders=mapping.loop_orders,
            tensors=self.tensor_names,
            allocation=allocation,
        )
        return repaired

    def _repair_allocation(self, mapping: Mapping) -> Tuple[Tuple[int, ...], ...]:
        allocation = []
        for level, banks in zip(ALLOC_LEVELS, mapping.allocation):
            total = self.accelerator.banks(level)
            if sum(banks) > total or any(b < 1 for b in banks):
                banks = nearest_composition(total, len(banks), banks)
            allocation.append(tuple(banks))
        return tuple(allocation)

    def _repair_capacity(
        self,
        tile_factors: List[List[int]],
        allocation: Tuple[Tuple[int, ...], ...],
    ) -> List[List[int]]:
        """Hoist factors toward DRAM until every tile fits its banks.

        L1 violations move a prime factor L1 -> L2 (shrinks the L1 tile,
        keeps the L2 tile unchanged); L2 violations move L2 -> DRAM, then
        spatial -> DRAM, then L1 -> DRAM as a last resort.  Terminates
        because each step strictly shrinks the product of non-DRAM factors.
        """
        alloc_by_level = {
            level: dict(zip(self.tensor_names, banks))
            for level, banks in zip(ALLOC_LEVELS, allocation)
        }

        def violating_tensor(level: str) -> Optional[int]:
            extents = self._extents_for(level, tile_factors)
            bank_words = self.accelerator.bank_words(level)
            for t_index, tensor in enumerate(self._tensors):
                capacity = alloc_by_level[level][tensor.name] * bank_words
                if tensor.footprint(extents) > capacity:
                    return t_index
            return None

        def hoist(t_index: int, source_slots: Sequence[int], dest_slot: int) -> bool:
            """Move one prime factor of a relevant dim up; False if stuck."""
            relevant = self._tensors[t_index].dims
            for slot in source_slots:
                candidates = [
                    i
                    for i, dim in enumerate(self.dims)
                    if dim in relevant and tile_factors[i][slot] > 1
                ]
                if candidates:
                    index = max(candidates, key=lambda i: tile_factors[i][slot])
                    prime = smallest_prime_factor(tile_factors[index][slot])
                    tile_factors[index][slot] //= prime
                    tile_factors[index][dest_slot] *= prime
                    return True
            return False

        # L1 first: shrinking L1 tiles never worsens L2 residency.
        while True:
            t_index = violating_tensor("L1")
            if t_index is None:
                break
            if not hoist(t_index, (_L1,), _L2):
                break  # tile already minimal; nothing more to shrink
        while True:
            t_index = violating_tensor("L2")
            if t_index is None:
                break
            if not hoist(t_index, (_L2, _SPATIAL, _L1), _DRAM):
                break
        return tile_factors

    # ------------------------------------------------------------------
    # Neighbourhood moves (SA / GA substrate)
    # ------------------------------------------------------------------

    #: Move kinds understood by :meth:`random_neighbor`.
    MOVE_KINDS: Tuple[str, ...] = ("tile", "spatial", "order", "alloc")

    def random_neighbor(
        self, mapping: Mapping, seed: SeedLike = None, kind: Optional[str] = None
    ) -> Mapping:
        """A valid mapping one local move away from ``mapping``.

        Moves: ``tile`` shifts one prime factor of one dimension between two
        memory levels; ``spatial`` trades parallelism against L2-temporal
        iteration; ``order`` swaps two loops at one level; ``alloc`` moves
        one bank between tensors.  The result is re-projected, so it is
        always valid.
        """
        rng = ensure_rng(seed)
        move = kind or self.MOVE_KINDS[int(rng.integers(0, len(self.MOVE_KINDS)))]
        if move == "tile":
            neighbor = self._move_tile(mapping, rng)
        elif move == "spatial":
            neighbor = self._move_spatial(mapping, rng)
        elif move == "order":
            neighbor = self._move_order(mapping, rng)
        elif move == "alloc":
            neighbor = self._move_alloc(mapping, rng)
        else:
            raise ValueError(f"unknown move kind {move!r}")
        return self.project(neighbor)

    def _move_tile(self, mapping: Mapping, rng: np.random.Generator) -> Mapping:
        movable = [
            dim for dim in self.dims if self._bounds[dim] > 1
        ]
        if not movable:
            return mapping
        dim = movable[int(rng.integers(0, len(movable)))]
        factors = list(mapping.factors(dim))
        sources = [slot for slot in range(4) if factors[slot] > 1]
        if not sources:
            return mapping
        source = sources[int(rng.integers(0, len(sources)))]
        dest_options = [slot for slot in range(4) if slot != source]
        dest = dest_options[int(rng.integers(0, len(dest_options)))]
        prime = smallest_prime_factor(factors[source])
        factors[source] //= prime
        factors[dest] *= prime
        return mapping.with_tile_factors(dim, factors)

    def _move_spatial(self, mapping: Mapping, rng: np.random.Generator) -> Mapping:
        dim = self.dims[int(rng.integers(0, len(self.dims)))]
        factors = list(mapping.factors(dim))
        if factors[_SPATIAL] > 1 and rng.random() < 0.5:
            prime = smallest_prime_factor(factors[_SPATIAL])
            factors[_SPATIAL] //= prime
            factors[_L2] *= prime
        elif factors[_L2] > 1:
            prime = smallest_prime_factor(factors[_L2])
            factors[_L2] //= prime
            factors[_SPATIAL] *= prime
        elif factors[_L1] > 1:
            prime = smallest_prime_factor(factors[_L1])
            factors[_L1] //= prime
            factors[_SPATIAL] *= prime
        return mapping.with_tile_factors(dim, factors)

    def _move_order(self, mapping: Mapping, rng: np.random.Generator) -> Mapping:
        if len(self.dims) < 2:
            return mapping
        level = ORDER_LEVELS[int(rng.integers(0, len(ORDER_LEVELS)))]
        order = list(mapping.loop_order(level))
        i, j = rng.choice(len(order), size=2, replace=False)
        order[int(i)], order[int(j)] = order[int(j)], order[int(i)]
        return mapping.with_loop_order(level, order)

    def _move_alloc(self, mapping: Mapping, rng: np.random.Generator) -> Mapping:
        if len(self.tensor_names) < 2:
            return mapping
        level = ALLOC_LEVELS[int(rng.integers(0, len(ALLOC_LEVELS)))]
        banks = list(mapping.allocation[ALLOC_LEVELS.index(level)])
        donors = [i for i, b in enumerate(banks) if b > 1]
        if not donors:
            return mapping
        donor = donors[int(rng.integers(0, len(donors)))]
        receivers = [i for i in range(len(banks)) if i != donor]
        receiver = receivers[int(rng.integers(0, len(receivers)))]
        banks[donor] -= 1
        banks[receiver] += 1
        return mapping.with_allocation(level, banks)

    # ------------------------------------------------------------------
    # Crossover attribute groups (GA substrate)
    # ------------------------------------------------------------------

    def attribute_groups(self) -> Tuple[str, ...]:
        """Named attribute groups a GA can cross over between individuals."""
        groups = [f"tile:{dim}" for dim in self.dims]
        groups += [f"order:{level}" for level in ORDER_LEVELS]
        groups += [f"alloc:{level}" for level in ALLOC_LEVELS]
        return tuple(groups)

    def get_group(self, mapping: Mapping, group: str):
        """The value of one attribute group (opaque to callers)."""
        kind, _, key = group.partition(":")
        if kind == "tile":
            return mapping.factors(key)
        if kind == "order":
            return mapping.loop_order(key)
        if kind == "alloc":
            return mapping.allocation[ALLOC_LEVELS.index(key)]
        raise KeyError(f"unknown attribute group {group!r}")

    def set_group(self, mapping: Mapping, group: str, value) -> Mapping:
        """Copy of ``mapping`` with one attribute group replaced + projected."""
        kind, _, key = group.partition(":")
        if kind == "tile":
            updated = mapping.with_tile_factors(key, value)
        elif kind == "order":
            updated = mapping.with_loop_order(key, value)
        elif kind == "alloc":
            updated = mapping.with_allocation(key, value)
        else:
            raise KeyError(f"unknown attribute group {group!r}")
        return self.project(updated)

    # ------------------------------------------------------------------
    # Size accounting and exhaustive enumeration
    # ------------------------------------------------------------------

    def size(self) -> float:
        """Upper bound on the number of mappings (paper section 2.1 Big-Oh).

        Product of per-dimension factorization counts, loop-order
        permutations per level, and bank compositions per level.  Returned
        as a float because realistic spaces overflow 64-bit integers
        (e.g. ~1e25 for ResNet Conv_4 in the paper).
        """
        total = 1.0
        for dim in self.dims:
            total *= len(factorizations(self._bounds[dim], 4))
        total *= math.factorial(len(self.dims)) ** len(ORDER_LEVELS)
        for level in ALLOC_LEVELS:
            spare = self.accelerator.banks(level) - len(self.tensor_names)
            total *= math.comb(spare + len(self.tensor_names) - 1, len(self.tensor_names) - 1)
        return total

    def enumerate_mappings(
        self,
        *,
        include_orders: bool = True,
        balanced_allocation: bool = True,
        limit: int = 1_000_000,
    ) -> Iterator[Mapping]:
        """Yield every valid mapping of a *tiny* space.

        ``balanced_allocation`` pins the bank split to a near-even
        composition (otherwise allocations are enumerated too, which
        multiplies the space by hundreds).  Raises ``ValueError`` when the
        enumeration would exceed ``limit``.
        """
        factor_options = [factorizations(self._bounds[dim], 4) for dim in self.dims]
        # Count candidates arithmetically BEFORE materializing anything: a
        # 7-dim space has (7!)^3 ~ 1.3e11 order combinations, so eager
        # construction must never happen.
        if include_orders:
            n_orders = math.factorial(len(self.dims)) ** len(ORDER_LEVELS)
        else:
            n_orders = 1
        if balanced_allocation:
            n_allocs = 1
        else:
            n_allocs = 1
            for level in ALLOC_LEVELS:
                spare = self.accelerator.banks(level) - len(self.tensor_names)
                n_allocs *= math.comb(
                    spare + len(self.tensor_names) - 1, len(self.tensor_names) - 1
                )
        count = prod(len(o) for o in factor_options) * n_orders * n_allocs
        if count > limit:
            raise ValueError(
                f"map space enumeration would visit {count} candidates "
                f"(limit {limit}); restrict orders/allocations or raise limit"
            )

        if balanced_allocation:
            alloc_options: Tuple[Tuple[Tuple[int, ...], ...], ...] = (
                tuple(
                    nearest_composition(
                        self.accelerator.banks(level),
                        len(self.tensor_names),
                        [1.0] * len(self.tensor_names),
                    )
                    for level in ALLOC_LEVELS
                ),
            )
        else:
            per_level = [
                compositions(self.accelerator.banks(level), len(self.tensor_names))
                for level in ALLOC_LEVELS
            ]
            alloc_options = tuple(itertools.product(*per_level))

        perms = tuple(itertools.permutations(self.dims)) if include_orders else None
        for tiles in itertools.product(*factor_options):
            if perms is not None:
                order_iter = itertools.product(perms, repeat=len(ORDER_LEVELS))
            else:
                identity = tuple(self.dims)
                order_iter = iter([(identity,) * len(ORDER_LEVELS)])
            for orders in order_iter:
                for allocation in alloc_options:
                    mapping = Mapping(
                        dims=self.dims,
                        tile_factors=tiles,
                        loop_orders=orders,
                        tensors=self.tensor_names,
                        allocation=allocation,
                    )
                    if self.is_member(mapping):
                        yield mapping


__all__ = ["MapSpace"]
