"""Genetic-algorithm baseline (paper section 5.2, Appendix A).

Follows the paper's DEAP configuration: population 100 (scalable down for
short budgets), crossover probability 0.75, per-attribute mutation
probability 0.05, fitness = EDP, selection per generation by fitness.
Crossover swaps whole attribute groups (a dimension's tiling, a level's
loop order, a level's bank allocation) between parents — the operation the
paper critiques as assuming attribute strength is composable.

Ask/tell shape: a GA is the textbook population method — every ``ask`` is a
whole generation (the initial population, then each offspring cohort), so
fitness for an entire generation comes back from one batched oracle query.
Elites carry forward between generations without re-evaluation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.model import CostModel
from repro.engine.registry import register_searcher
from repro.mapspace.factors import sample_composition, sample_factorization
from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.search.base import OracleSearcher
from repro.utils.rng import SeedLike, ensure_rng


@register_searcher("genetic", aliases=("ga",))
class GeneticSearcher(OracleSearcher):
    """Tournament-selection GA over mapping attribute groups."""

    name = "GA"

    def __init__(
        self,
        space: MapSpace,
        cost_model: CostModel,
        *,
        population_size: int = 100,
        crossover_probability: float = 0.75,
        mutation_probability: float = 0.05,
        tournament_size: int = 3,
        elite_count: int = 2,
    ) -> None:
        super().__init__(space, cost_model)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 <= crossover_probability <= 1.0:
            raise ValueError("crossover_probability must be in [0, 1]")
        if not 0.0 <= mutation_probability <= 1.0:
            raise ValueError("mutation_probability must be in [0, 1]")
        self.population_size = population_size
        self.crossover_probability = crossover_probability
        self.mutation_probability = mutation_probability
        self.tournament_size = max(2, tournament_size)
        self.elite_count = max(0, elite_count)

    # ---- genetic operators -------------------------------------------------

    def _tournament(
        self, fitness: List[float], rng: np.random.Generator
    ) -> int:
        """Index of the fittest of ``tournament_size`` random entrants."""
        entrants = rng.integers(0, len(fitness), size=self.tournament_size)
        return int(min(entrants, key=lambda i: fitness[int(i)]))

    def _crossover(
        self, parent_a: Mapping, parent_b: Mapping, rng: np.random.Generator
    ) -> Mapping:
        """Child of A taking a random subset of B's attribute groups."""
        child = parent_a
        for group in self.space.attribute_groups():
            if rng.random() < 0.5:
                child = self.space.set_group(child, group, self.space.get_group(parent_b, group))
        return child

    def _mutate(self, individual: Mapping, rng: np.random.Generator) -> Mapping:
        """Independently resample each attribute group with probability p."""
        mutated = individual
        bounds = self.problem.bounds
        for group in self.space.attribute_groups():
            if rng.random() >= self.mutation_probability:
                continue
            kind, _, key = group.partition(":")
            if kind == "tile":
                value = sample_factorization(bounds[key], 4, rng)
            elif kind == "order":
                value = tuple(rng.permutation(list(self.space.dims)))
            else:  # alloc
                value = sample_composition(
                    self.space.accelerator.banks(key), len(self.space.tensor_names), rng
                )
            mutated = self.space.set_group(mutated, group, value)
        return mutated

    # ---- ask/tell ----------------------------------------------------------

    def reset(self, seed: SeedLike = None, iterations: Optional[int] = None) -> None:
        self._rng = ensure_rng(seed)
        # Scale the population down for short budgets (paper's population of
        # 100 needs at least a couple of generations to mean anything).
        if iterations is not None:
            self._population_size = min(
                self.population_size, max(iterations // 2, 2)
            )
        else:
            self._population_size = self.population_size
        self._population: List[Mapping] = []
        self._fitness: List[float] = []
        self._elites: List[Tuple[Mapping, float]] = []
        self._initialized = False

    def ask(self) -> List[Mapping]:
        if not self._initialized:
            return [self.space.sample(self._rng) for _ in range(self._population_size)]
        # Elitism: carry the best few forward unchanged (no re-eval); breed
        # the rest of the next generation from the current one.
        elite_order = sorted(range(len(self._population)), key=self._fitness.__getitem__)
        self._elites = [
            (self._population[i], self._fitness[i])
            for i in elite_order[: self.elite_count]
        ]
        offspring: List[Mapping] = []
        needed = max(self._population_size - len(self._elites), 1)
        for _ in range(needed):
            parent_a = self._population[self._tournament(self._fitness, self._rng)]
            parent_b = self._population[self._tournament(self._fitness, self._rng)]
            if self._rng.random() < self.crossover_probability:
                child = self._crossover(parent_a, parent_b, self._rng)
            else:
                child = parent_a
            offspring.append(self._mutate(child, self._rng))
        return offspring

    def tell(self, mappings: Sequence[Mapping], values: Sequence[float]) -> None:
        if not self._initialized:
            self._population = list(mappings)
            self._fitness = [float(v) for v in values]
            self._initialized = True
            return
        self._population = [m for m, _ in self._elites] + list(mappings)
        self._fitness = [f for _, f in self._elites] + [float(v) for v in values]


__all__ = ["GeneticSearcher"]
