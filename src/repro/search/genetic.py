"""Genetic-algorithm baseline (paper section 5.2, Appendix A).

Follows the paper's DEAP configuration: population 100 (scalable down for
short budgets), crossover probability 0.75, per-attribute mutation
probability 0.05, fitness = EDP, selection per generation by fitness.
Crossover swaps whole attribute groups (a dimension's tiling, a level's
loop order, a level's bank allocation) between parents — the operation the
paper critiques as assuming attribute strength is composable.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.costmodel.model import CostModel
from repro.engine.registry import register_searcher
from repro.mapspace.factors import sample_composition, sample_factorization
from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.search.base import BudgetedObjective, SearchResult, Searcher
from repro.utils.rng import SeedLike, ensure_rng


@register_searcher("genetic", aliases=("ga",))
class GeneticSearcher(Searcher):
    """Tournament-selection GA over mapping attribute groups."""

    name = "GA"

    def __init__(
        self,
        space: MapSpace,
        cost_model: CostModel,
        *,
        population_size: int = 100,
        crossover_probability: float = 0.75,
        mutation_probability: float = 0.05,
        tournament_size: int = 3,
        elite_count: int = 2,
    ) -> None:
        super().__init__(space)
        self.cost_model = cost_model
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 <= crossover_probability <= 1.0:
            raise ValueError("crossover_probability must be in [0, 1]")
        if not 0.0 <= mutation_probability <= 1.0:
            raise ValueError("mutation_probability must be in [0, 1]")
        self.population_size = population_size
        self.crossover_probability = crossover_probability
        self.mutation_probability = mutation_probability
        self.tournament_size = max(2, tournament_size)
        self.elite_count = max(0, elite_count)

    def _objective(self, mapping: Mapping) -> float:
        return math.log2(self.cost_model.evaluate_edp(mapping, self.problem))

    # ---- genetic operators -------------------------------------------------

    def _tournament(
        self, fitness: List[float], rng: np.random.Generator
    ) -> int:
        """Index of the fittest of ``tournament_size`` random entrants."""
        entrants = rng.integers(0, len(fitness), size=self.tournament_size)
        return int(min(entrants, key=lambda i: fitness[int(i)]))

    def _crossover(
        self, parent_a: Mapping, parent_b: Mapping, rng: np.random.Generator
    ) -> Mapping:
        """Child of A taking a random subset of B's attribute groups."""
        child = parent_a
        for group in self.space.attribute_groups():
            if rng.random() < 0.5:
                child = self.space.set_group(child, group, self.space.get_group(parent_b, group))
        return child

    def _mutate(self, individual: Mapping, rng: np.random.Generator) -> Mapping:
        """Independently resample each attribute group with probability p."""
        mutated = individual
        bounds = self.problem.bounds
        for group in self.space.attribute_groups():
            if rng.random() >= self.mutation_probability:
                continue
            kind, _, key = group.partition(":")
            if kind == "tile":
                value = sample_factorization(bounds[key], 4, rng)
            elif kind == "order":
                value = tuple(rng.permutation(list(self.space.dims)))
            else:  # alloc
                value = sample_composition(
                    self.space.accelerator.banks(key), len(self.space.tensor_names), rng
                )
            mutated = self.space.set_group(mutated, group, value)
        return mutated

    # ---- main loop ------------------------------------------------------------

    def search(
        self,
        iterations: int,
        seed: SeedLike = None,
        time_budget_s: Optional[float] = None,
    ) -> SearchResult:
        rng = ensure_rng(seed)
        budget = self.make_budget(self._objective, iterations, time_budget_s)
        population_size = min(self.population_size, max(iterations // 2, 2))

        population: List[Mapping] = []
        fitness: List[float] = []
        for _ in range(population_size):
            if budget.exhausted:
                break
            individual = self.space.sample(rng)
            population.append(individual)
            fitness.append(budget.evaluate(individual))

        while not budget.exhausted and population:
            # Elitism: carry the best few forward unchanged (no re-eval).
            elite_order = sorted(range(len(population)), key=fitness.__getitem__)
            next_population = [population[i] for i in elite_order[: self.elite_count]]
            next_fitness = [fitness[i] for i in elite_order[: self.elite_count]]
            while len(next_population) < population_size and not budget.exhausted:
                parent_a = population[self._tournament(fitness, rng)]
                parent_b = population[self._tournament(fitness, rng)]
                if rng.random() < self.crossover_probability:
                    child = self._crossover(parent_a, parent_b, rng)
                else:
                    child = parent_a
                child = self._mutate(child, rng)
                next_population.append(child)
                next_fitness.append(budget.evaluate(child))
            population, fitness = next_population, next_fitness
        return budget.result(self.name, self.problem.name)


__all__ = ["GeneticSearcher"]
