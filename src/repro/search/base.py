"""Shared searcher interface: batched ask/tell, budget accounting, traces.

The paper compares search methods on two axes (section 5.2): quality after a
fixed number of *cost-function evaluations* (iso-iteration) and after a fixed
*wall-clock time* (iso-time).  :class:`BudgetedObjective` meters both — every
recorded evaluation counts one iteration and timestamps it — so any searcher
written against it supports both comparisons for free.

Searchers follow a **batched ask/tell protocol**:

* :meth:`Searcher.reset` initializes per-run state from a seed,
* :meth:`Searcher.ask` proposes the next batch of candidate mappings,
* :meth:`Searcher.tell` feeds back the evaluated ``(mappings, values)``.

:meth:`Searcher.run` is the generic driver: it loops ask → evaluate → tell
against a :class:`BudgetedObjective` until the budget is exhausted.  Handing
the evaluator *whole batches* (instead of scalar calls in a loop) is what
lets numpy-backed oracles amortize — a surrogate prices a population in one
stacked forward pass, a memoized oracle partitions cache hits from misses
and forwards only the misses (see :mod:`repro.engine.oracle`).  External
drivers (schedulers, distributed evaluators) can run the same protocol by
hand; the parity tests in ``tests/test_search_asktell.py`` pin ``run()`` to
be exactly that loop.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.utils import Stopwatch
from repro.utils.rng import SeedLike


@dataclass
class SearchResult:
    """Complete record of one search run.

    ``objective_values[i]`` is the searcher's own objective for
    ``mappings[i]`` — the true cost for black-box searchers, the surrogate
    prediction for Mind Mappings.  ``eval_times[i]`` is cumulative seconds
    when evaluation ``i`` finished, enabling iso-time re-slicing.
    """

    searcher: str
    problem: str
    mappings: List[Mapping] = field(default_factory=list)
    objective_values: List[float] = field(default_factory=list)
    eval_times: List[float] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def n_evaluations(self) -> int:
        return len(self.mappings)

    @property
    def best_index(self) -> int:
        if not self.objective_values:
            raise ValueError("empty search result")
        return min(range(len(self.objective_values)), key=self.objective_values.__getitem__)

    @property
    def best_mapping(self) -> Mapping:
        return self.mappings[self.best_index]

    @property
    def best_objective(self) -> float:
        return self.objective_values[self.best_index]

    def best_so_far(self) -> List[float]:
        """Running minimum of the objective (the convergence curve)."""
        best = math.inf
        curve = []
        for value in self.objective_values:
            best = min(best, value)
            curve.append(best)
        return curve

    # ---- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible dict of the full trace (inverse of :meth:`from_dict`).

        Mappings serialize via :meth:`Mapping.to_dict`, so engine responses
        and harness traces export through one codec
        (:func:`repro.harness.export.result_to_json`).
        """
        return {
            "searcher": self.searcher,
            "problem": self.problem,
            "mappings": [mapping.to_dict() for mapping in self.mappings],
            "objective_values": [float(v) for v in self.objective_values],
            "eval_times": [float(t) for t in self.eval_times],
            "wall_time": float(self.wall_time),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchResult":
        """Rebuild a result from :meth:`to_dict` output (validates mappings)."""
        return cls(
            searcher=str(payload["searcher"]),
            problem=str(payload["problem"]),
            mappings=[Mapping.from_dict(m) for m in payload["mappings"]],
            objective_values=[float(v) for v in payload["objective_values"]],
            eval_times=[float(t) for t in payload["eval_times"]],
            wall_time=float(payload["wall_time"]),
        )


class BudgetedObjective:
    """Meters an objective function by evaluations and wall-clock.

    The ask/tell driver calls :meth:`evaluate_many` for every batch of
    candidates; scalar :meth:`evaluate` / :meth:`record` remain for callers
    with fused or external evaluation.  All bookkeeping for
    :class:`SearchResult` happens here so individual searchers stay focused
    on their heuristics.

    ``batch_objective`` is the vectorized evaluator (whole batch in, one
    value per candidate out); without one, :meth:`evaluate_many` falls back
    to scalar calls.  Metering is *per candidate* either way: each evaluated
    mapping counts one iteration, is charged one ``simulated_latency_s`` of
    virtual time, and gets its own timestamp — so iso-iteration and
    iso-time accounting are identical between the scalar and batched paths.
    """

    def __init__(
        self,
        objective: Callable[[Mapping], float],
        max_evaluations: int,
        time_budget_s: Optional[float] = None,
        simulated_latency_s: float = 0.0,
        batch_objective: Optional[Callable[[Sequence[Mapping]], Sequence[float]]] = None,
    ) -> None:
        if max_evaluations < 1:
            raise ValueError(f"max_evaluations must be >= 1, got {max_evaluations}")
        if simulated_latency_s < 0:
            raise ValueError("simulated_latency_s must be >= 0")
        self._objective = objective
        self._batch_objective = batch_objective
        self.max_evaluations = max_evaluations
        self.time_budget_s = time_budget_s
        self.simulated_latency_s = simulated_latency_s
        self.mappings: List[Mapping] = []
        self.values: List[float] = []
        self.times: List[float] = []
        self._stopwatch = Stopwatch().start()
        self._virtual_time = 0.0

    @property
    def elapsed(self) -> float:
        """Wall-clock plus accumulated simulated oracle latency.

        The paper's cost oracle (Timeloop) is 150-425x slower per query than
        the surrogate; our from-scratch analytical oracle is microseconds.
        Iso-time experiments therefore charge a configurable virtual latency
        per oracle query to preserve the paper's time economics without
        actually sleeping (see DESIGN.md, substitutions).
        """
        return self._stopwatch.elapsed + self._virtual_time

    def evaluate(self, mapping: Mapping) -> float:
        """Evaluate + record one candidate.

        Raises ``RuntimeError`` when the *evaluation* budget is already
        spent — that would give a searcher more iterations than its
        competitors.  Time-budget overshoot is tolerated: wall-clock elapses
        inside an evaluation, so the final in-flight evaluation may land
        past the deadline (as it would in any real deployment); the
        searcher's loop exits at its next ``exhausted`` check.
        """
        if self.used >= self.max_evaluations:
            raise RuntimeError("evaluation budget exhausted")
        value = float(self._objective(mapping))
        self._virtual_time += self.simulated_latency_s
        self.mappings.append(mapping)
        self.values.append(value)
        self.times.append(self.elapsed)
        return value

    def evaluate_many(self, mappings: Sequence[Mapping]) -> List[float]:
        """Evaluate + record a batch, truncated to what the budget affords.

        Returns the values for the recorded *prefix* of ``mappings`` (the
        caller pairs them back with ``mappings[:len(values)]``).  Truncation
        mirrors the scalar loop's ``while not exhausted: evaluate`` check,
        per candidate:

        * never more candidates than ``remaining`` iterations;
        * under a time budget, recording stops at the first candidate past
          the deadline — with simulated oracle latency the batch is also
          pre-shrunk to what the remaining virtual time affords, so the
          overshoot is at most one candidate's latency, the same tolerance
          as the scalar path's final in-flight evaluation.  (Candidates a
          batch backend computed but the deadline cut are discarded
          unrecorded — the batched analogue of wall-clock elapsing inside
          an evaluation.)

        Each recorded candidate is metered individually: one iteration, one
        latency charge, one timestamp.  With virtual latency the timestamps
        step per candidate exactly like scalar calls; pure wall-clock
        batches share their batch's completion time (they really did finish
        together).  Raises ``RuntimeError`` when the evaluation budget is
        already spent, like :meth:`evaluate`.
        """
        if self.used >= self.max_evaluations:
            raise RuntimeError("evaluation budget exhausted")
        limit = self.remaining
        if self.time_budget_s is not None and self.simulated_latency_s > 0:
            time_left = self.time_budget_s - self.elapsed
            affordable = max(
                int(math.ceil(time_left / self.simulated_latency_s)), 1
            )
            limit = min(limit, affordable)
        batch = list(mappings[:limit])
        if not batch:
            return []
        if self._batch_objective is not None:
            values = [float(v) for v in self._batch_objective(batch)]
            if len(values) != len(batch):
                raise ValueError(
                    f"batch objective returned {len(values)} values for "
                    f"{len(batch)} mappings"
                )
        else:
            values = [float(self._objective(mapping)) for mapping in batch]
        recorded: List[float] = []
        for mapping, value in zip(batch, values):
            if recorded and (
                self.time_budget_s is not None
                and self.elapsed >= self.time_budget_s
            ):
                break
            self._virtual_time += self.simulated_latency_s
            self.mappings.append(mapping)
            self.values.append(value)
            self.times.append(self.elapsed)
            recorded.append(value)
        return recorded

    def record(self, mapping: Mapping, value: float) -> None:
        """Record an externally-computed evaluation.

        For searchers whose objective computation is fused with other work;
        keeps budget accounting identical.  Time-budget overshoot is
        tolerated exactly as in :meth:`evaluate`.
        """
        if self.used >= self.max_evaluations:
            raise RuntimeError("evaluation budget exhausted")
        self._virtual_time += self.simulated_latency_s
        self.mappings.append(mapping)
        self.values.append(float(value))
        self.times.append(self.elapsed)

    @property
    def used(self) -> int:
        return len(self.mappings)

    @property
    def exhausted(self) -> bool:
        if self.used >= self.max_evaluations:
            return True
        if self.time_budget_s is not None and self.elapsed >= self.time_budget_s:
            return True
        return False

    @property
    def remaining(self) -> int:
        return max(self.max_evaluations - self.used, 0)

    def result(self, searcher: str, problem: str) -> SearchResult:
        """Freeze the recorded trace into a :class:`SearchResult`."""
        return SearchResult(
            searcher=searcher,
            problem=problem,
            mappings=list(self.mappings),
            objective_values=list(self.values),
            eval_times=list(self.times),
            wall_time=self.elapsed,
        )


class Searcher(abc.ABC):
    """Batched ask/tell interface every search method implements.

    A searcher is a candidate *proposer*: :meth:`reset` seeds its state,
    :meth:`ask` yields the next batch of mappings to price, and
    :meth:`tell` feeds the evaluated batch back so the heuristic can adapt.
    Evaluation itself lives outside the searcher — in :meth:`run`'s budget,
    or any external driver speaking the same protocol — which is what lets
    one searcher be served by a scalar cost model, a memoized oracle, or a
    stacked surrogate forward pass without modification.

    :meth:`objective` / :meth:`objective_batch` define the searcher's own
    scoring function (true log2-EDP for black-box baselines, the surrogate
    prediction for Mind Mappings); ``run()`` wires them into the budget so
    the batched path is the default.  ``name`` labels results in figures.
    ``simulated_latency_s`` charges a virtual per-query cost against the
    time budget — used by iso-time experiments to model an expensive cost
    oracle (the paper's Timeloop) without sleeping.
    """

    name: str = "searcher"

    def __init__(self, space: MapSpace) -> None:
        self.space = space
        self.problem = space.problem
        self.simulated_latency_s: float = 0.0

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def objective(self, mapping: Mapping) -> float:
        """This searcher's scalar objective for one mapping."""

    def objective_batch(self, mappings: Sequence[Mapping]) -> List[float]:
        """Objectives for a whole batch (scalar fallback; override to batch)."""
        return [self.objective(mapping) for mapping in mappings]

    # ------------------------------------------------------------------
    # Ask/tell protocol
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def reset(self, seed: SeedLike = None, iterations: Optional[int] = None) -> None:
        """Initialize per-run state.

        ``iterations`` is the driver's evaluation budget when known —
        searchers whose schedules depend on run length (SA's temperature
        schedule, GA's population sizing) read it; others ignore it.
        """

    @abc.abstractmethod
    def ask(self) -> List[Mapping]:
        """Propose the next batch of candidates to evaluate.

        An empty list means the searcher has nothing left to propose (e.g.
        exhaustive enumeration finished) and ends the run.  The driver may
        evaluate only a prefix of the batch (budget truncation); ``tell``
        receives exactly what was evaluated.
        """

    def tell(self, mappings: Sequence[Mapping], values: Sequence[float]) -> None:
        """Incorporate evaluated candidates (default: stateless no-op)."""

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def make_budget(
        self,
        iterations: int,
        time_budget_s: Optional[float] = None,
    ) -> BudgetedObjective:
        """A budget wired to this searcher's objective and oracle latency."""
        return BudgetedObjective(
            self.objective,
            iterations,
            time_budget_s,
            simulated_latency_s=self.simulated_latency_s,
            batch_objective=self.objective_batch,
        )

    def run(
        self,
        iterations: int,
        seed: SeedLike = None,
        time_budget_s: Optional[float] = None,
    ) -> SearchResult:
        """The generic ask/tell driver loop.

        Every searcher runs through this exact loop (the parity tests pin
        it): reset state, then ask → evaluate the batch against the budget →
        tell, until the budget is exhausted or ``ask`` returns nothing.
        """
        budget = self.make_budget(iterations, time_budget_s)
        self.reset(seed, iterations=iterations)
        while not budget.exhausted:
            batch = self.ask()
            if not batch:
                break
            values = budget.evaluate_many(batch)
            self.tell(batch[: len(values)], values)
        return budget.result(self.name, self.problem.name)

    def search(
        self,
        iterations: int,
        seed: SeedLike = None,
        time_budget_s: Optional[float] = None,
    ) -> SearchResult:
        """Alias of :meth:`run` (the pre-ask/tell entry point)."""
        return self.run(iterations, seed=seed, time_budget_s=time_budget_s)


class OracleSearcher(Searcher):
    """Base for black-box searchers scored by a true-cost oracle.

    ``cost_model`` is anything pricing ``(mapping, problem)`` pairs —
    a :class:`~repro.costmodel.model.CostModel` or any
    :class:`~repro.engine.oracle.CostOracle` (the engine injects its shared
    memoized oracle here).  The objective is log2 EDP, the scale the paper's
    iso-iteration figures compare on.  Batches route through the oracle's
    ``evaluate_many`` when it has one — a single partitioned/stacked oracle
    query per generation instead of one query per candidate.
    """

    def __init__(self, space: MapSpace, cost_model) -> None:
        super().__init__(space)
        self.cost_model = cost_model

    def objective(self, mapping: Mapping) -> float:
        return math.log2(self.cost_model.evaluate_edp(mapping, self.problem))

    def objective_batch(self, mappings: Sequence[Mapping]) -> List[float]:
        evaluate_many = getattr(self.cost_model, "evaluate_many", None)
        if evaluate_many is None:
            return [self.objective(mapping) for mapping in mappings]
        return [math.log2(value) for value in evaluate_many(mappings, self.problem)]


__all__ = ["BudgetedObjective", "OracleSearcher", "SearchResult", "Searcher"]
