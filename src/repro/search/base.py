"""Shared searcher interface, budget accounting, and result traces.

The paper compares search methods on two axes (section 5.2): quality after a
fixed number of *cost-function evaluations* (iso-iteration) and after a fixed
*wall-clock time* (iso-time).  :class:`BudgetedObjective` meters both — every
call to ``evaluate`` counts one iteration and timestamps it — so any searcher
written against it supports both comparisons for free.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.utils import Stopwatch
from repro.utils.rng import SeedLike


@dataclass
class SearchResult:
    """Complete record of one search run.

    ``objective_values[i]`` is the searcher's own objective for
    ``mappings[i]`` — the true cost for black-box searchers, the surrogate
    prediction for Mind Mappings.  ``eval_times[i]`` is cumulative seconds
    when evaluation ``i`` finished, enabling iso-time re-slicing.
    """

    searcher: str
    problem: str
    mappings: List[Mapping] = field(default_factory=list)
    objective_values: List[float] = field(default_factory=list)
    eval_times: List[float] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def n_evaluations(self) -> int:
        return len(self.mappings)

    @property
    def best_index(self) -> int:
        if not self.objective_values:
            raise ValueError("empty search result")
        return min(range(len(self.objective_values)), key=self.objective_values.__getitem__)

    @property
    def best_mapping(self) -> Mapping:
        return self.mappings[self.best_index]

    @property
    def best_objective(self) -> float:
        return self.objective_values[self.best_index]

    def best_so_far(self) -> List[float]:
        """Running minimum of the objective (the convergence curve)."""
        best = math.inf
        curve = []
        for value in self.objective_values:
            best = min(best, value)
            curve.append(best)
        return curve

    # ---- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible dict of the full trace (inverse of :meth:`from_dict`).

        Mappings serialize via :meth:`Mapping.to_dict`, so engine responses
        and harness traces export through one codec
        (:func:`repro.harness.export.result_to_json`).
        """
        return {
            "searcher": self.searcher,
            "problem": self.problem,
            "mappings": [mapping.to_dict() for mapping in self.mappings],
            "objective_values": [float(v) for v in self.objective_values],
            "eval_times": [float(t) for t in self.eval_times],
            "wall_time": float(self.wall_time),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchResult":
        """Rebuild a result from :meth:`to_dict` output (validates mappings)."""
        return cls(
            searcher=str(payload["searcher"]),
            problem=str(payload["problem"]),
            mappings=[Mapping.from_dict(m) for m in payload["mappings"]],
            objective_values=[float(v) for v in payload["objective_values"]],
            eval_times=[float(t) for t in payload["eval_times"]],
            wall_time=float(payload["wall_time"]),
        )


class BudgetedObjective:
    """Meters an objective function by evaluations and wall-clock.

    Searchers call :meth:`evaluate` for every candidate and poll
    :attr:`exhausted` in their loops.  All bookkeeping for
    :class:`SearchResult` happens here so individual searchers stay focused
    on their heuristics.
    """

    def __init__(
        self,
        objective: Callable[[Mapping], float],
        max_evaluations: int,
        time_budget_s: Optional[float] = None,
        simulated_latency_s: float = 0.0,
    ) -> None:
        if max_evaluations < 1:
            raise ValueError(f"max_evaluations must be >= 1, got {max_evaluations}")
        if simulated_latency_s < 0:
            raise ValueError("simulated_latency_s must be >= 0")
        self._objective = objective
        self.max_evaluations = max_evaluations
        self.time_budget_s = time_budget_s
        self.simulated_latency_s = simulated_latency_s
        self.mappings: List[Mapping] = []
        self.values: List[float] = []
        self.times: List[float] = []
        self._stopwatch = Stopwatch().start()
        self._virtual_time = 0.0

    @property
    def elapsed(self) -> float:
        """Wall-clock plus accumulated simulated oracle latency.

        The paper's cost oracle (Timeloop) is 150-425x slower per query than
        the surrogate; our from-scratch analytical oracle is microseconds.
        Iso-time experiments therefore charge a configurable virtual latency
        per oracle query to preserve the paper's time economics without
        actually sleeping (see DESIGN.md, substitutions).
        """
        return self._stopwatch.elapsed + self._virtual_time

    def evaluate(self, mapping: Mapping) -> float:
        """Evaluate + record one candidate.

        Raises ``RuntimeError`` when the *evaluation* budget is already
        spent — that would give a searcher more iterations than its
        competitors.  Time-budget overshoot is tolerated: wall-clock elapses
        inside an evaluation, so the final in-flight evaluation may land
        past the deadline (as it would in any real deployment); the
        searcher's loop exits at its next ``exhausted`` check.
        """
        if self.used >= self.max_evaluations:
            raise RuntimeError("evaluation budget exhausted")
        value = float(self._objective(mapping))
        self._virtual_time += self.simulated_latency_s
        self.mappings.append(mapping)
        self.values.append(value)
        self.times.append(self.elapsed)
        return value

    def record(self, mapping: Mapping, value: float) -> None:
        """Record an externally-computed evaluation.

        For searchers whose objective computation is fused with other work
        (Mind Mappings computes the surrogate prediction and its gradient in
        one forward/backward pass); keeps budget accounting identical.
        Time-budget overshoot is tolerated exactly as in :meth:`evaluate`.
        """
        if self.used >= self.max_evaluations:
            raise RuntimeError("evaluation budget exhausted")
        self._virtual_time += self.simulated_latency_s
        self.mappings.append(mapping)
        self.values.append(float(value))
        self.times.append(self.elapsed)

    @property
    def used(self) -> int:
        return len(self.mappings)

    @property
    def exhausted(self) -> bool:
        if self.used >= self.max_evaluations:
            return True
        if self.time_budget_s is not None and self.elapsed >= self.time_budget_s:
            return True
        return False

    @property
    def remaining(self) -> int:
        return max(self.max_evaluations - self.used, 0)

    def result(self, searcher: str, problem: str) -> SearchResult:
        """Freeze the recorded trace into a :class:`SearchResult`."""
        return SearchResult(
            searcher=searcher,
            problem=problem,
            mappings=list(self.mappings),
            objective_values=list(self.values),
            eval_times=list(self.times),
            wall_time=self.elapsed,
        )


class Searcher(abc.ABC):
    """Interface every search method implements.

    ``name`` labels results in figures; ``search`` runs until the
    evaluation budget (and optional time budget) is exhausted.
    ``simulated_latency_s`` charges a virtual per-query cost against the
    time budget — used by iso-time experiments to model an expensive cost
    oracle (the paper's Timeloop) without sleeping.
    """

    name: str = "searcher"

    def __init__(self, space: MapSpace) -> None:
        self.space = space
        self.problem = space.problem
        self.simulated_latency_s: float = 0.0

    def make_budget(
        self,
        objective: Callable[[Mapping], float],
        iterations: int,
        time_budget_s: Optional[float],
    ) -> BudgetedObjective:
        """A budget wired to this searcher's simulated oracle latency."""
        return BudgetedObjective(
            objective,
            iterations,
            time_budget_s,
            simulated_latency_s=self.simulated_latency_s,
        )

    @abc.abstractmethod
    def search(
        self,
        iterations: int,
        seed: SeedLike = None,
        time_budget_s: Optional[float] = None,
    ) -> SearchResult:
        """Run the search and return the full evaluation trace."""


__all__ = ["BudgetedObjective", "SearchResult", "Searcher"]
