"""Search methods: Mind Mappings' baselines and supporting machinery.

Implements the paper's points of comparison (section 5.2 and Appendix A):

* :class:`RandomSearcher` — uniform sampling (sanity floor),
* :class:`SimulatedAnnealingSearcher` — Metropolis acceptance with a
  geometric temperature schedule auto-tuned from probe moves,
* :class:`GeneticSearcher` — tournament selection, attribute-group
  crossover (p=0.75), per-attribute mutation (p=0.05),
* :class:`RLSearcher` — DDPG-style actor-critic over the encoded mapping
  space with replay buffer and soft target updates,
* :class:`ExhaustiveSearcher` — complete enumeration for tiny spaces.

All searchers share the batched ask/tell :class:`Searcher` interface
(``reset`` / ``ask`` / ``tell`` with ``run()`` as the generic driver) and
record a full evaluation trace, which is what the iso-iteration / iso-time
harness plots.  The gradient-based Mind Mappings searcher itself lives in
:mod:`repro.core.gradient_search` and implements the same interface.
"""

from repro.search.base import BudgetedObjective, OracleSearcher, SearchResult, Searcher
from repro.search.random_search import RandomSearcher
from repro.search.annealing import SimulatedAnnealingSearcher
from repro.search.genetic import GeneticSearcher
from repro.search.rl import RLSearcher
from repro.search.exhaustive import ExhaustiveSearcher

__all__ = [
    "BudgetedObjective",
    "ExhaustiveSearcher",
    "GeneticSearcher",
    "OracleSearcher",
    "RLSearcher",
    "RandomSearcher",
    "SearchResult",
    "Searcher",
    "SimulatedAnnealingSearcher",
]
