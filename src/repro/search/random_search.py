"""Uniform random search — the sanity-check floor every heuristic must beat."""

from __future__ import annotations

from typing import List, Optional

from repro.costmodel.model import CostModel
from repro.engine.registry import register_searcher
from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.search.base import OracleSearcher
from repro.utils.rng import SeedLike, ensure_rng


@register_searcher("random")
class RandomSearcher(OracleSearcher):
    """Draw valid mappings uniformly; keep the best seen.

    Random search is embarrassingly batchable: every ``ask`` is an
    independent block of ``batch_size`` uniform samples, priced by the
    oracle in one batched query.
    """

    name = "Random"

    def __init__(
        self, space: MapSpace, cost_model: CostModel, *, batch_size: int = 32
    ) -> None:
        super().__init__(space, cost_model)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def reset(self, seed: SeedLike = None, iterations: Optional[int] = None) -> None:
        self._rng = ensure_rng(seed)
        # Never sample (deterministically) more than the run can evaluate.
        self._batch = min(self.batch_size, iterations) if iterations else self.batch_size

    def ask(self) -> List[Mapping]:
        return [self.space.sample(self._rng) for _ in range(self._batch)]


__all__ = ["RandomSearcher"]
