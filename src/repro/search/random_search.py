"""Uniform random search — the sanity-check floor every heuristic must beat."""

from __future__ import annotations

import math
from typing import Optional

from repro.costmodel.model import CostModel
from repro.engine.registry import register_searcher
from repro.mapspace.space import MapSpace
from repro.search.base import BudgetedObjective, SearchResult, Searcher
from repro.utils.rng import SeedLike, ensure_rng


@register_searcher("random")
class RandomSearcher(Searcher):
    """Draw valid mappings uniformly; keep the best seen."""

    name = "Random"

    def __init__(self, space: MapSpace, cost_model: CostModel) -> None:
        super().__init__(space)
        self.cost_model = cost_model

    def search(
        self,
        iterations: int,
        seed: SeedLike = None,
        time_budget_s: Optional[float] = None,
    ) -> SearchResult:
        rng = ensure_rng(seed)
        budget = self.make_budget(
            lambda m: math.log2(self.cost_model.evaluate_edp(m, self.problem)),
            iterations,
            time_budget_s,
        )
        while not budget.exhausted:
            budget.evaluate(self.space.sample(rng))
        return budget.result(self.name, self.problem.name)


__all__ = ["RandomSearcher"]
