"""Simulated annealing baseline (paper section 5.2, Appendix A).

Metropolis acceptance over the map-space neighbourhood moves with a
geometric temperature schedule.  The paper lets the ``simanneal`` library
auto-tune its schedule per problem; we reproduce that by probing a short
random walk to estimate the uphill-move scale, then setting the initial and
final temperatures for ~80% initial and ~0.1% final uphill acceptance.
Costs are compared on a log2-EDP scale so temperatures are shape-invariant
across problems whose EDPs differ by orders of magnitude.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.costmodel.model import CostModel
from repro.engine.registry import register_searcher
from repro.mapspace.space import MapSpace
from repro.search.base import BudgetedObjective, SearchResult, Searcher
from repro.utils.rng import SeedLike, ensure_rng


@register_searcher("annealing", aliases=("sa", "simulated-annealing"))
class SimulatedAnnealingSearcher(Searcher):
    """Classic SA with auto-tuned geometric cooling."""

    name = "SA"

    def __init__(
        self,
        space: MapSpace,
        cost_model: CostModel,
        *,
        probe_moves: int = 16,
        initial_acceptance: float = 0.5,
        final_acceptance: float = 1e-4,
        restart_after: Optional[int] = None,
    ) -> None:
        super().__init__(space)
        self.cost_model = cost_model
        if not 0.0 < final_acceptance < initial_acceptance < 1.0:
            raise ValueError("need 0 < final_acceptance < initial_acceptance < 1")
        self.probe_moves = probe_moves
        self.initial_acceptance = initial_acceptance
        self.final_acceptance = final_acceptance
        self.restart_after = restart_after

    def _objective(self, mapping) -> float:
        return math.log2(self.cost_model.evaluate_edp(mapping, self.problem))

    def search(
        self,
        iterations: int,
        seed: SeedLike = None,
        time_budget_s: Optional[float] = None,
    ) -> SearchResult:
        rng = ensure_rng(seed)
        budget = self.make_budget(self._objective, iterations, time_budget_s)

        current = self.space.sample(rng)
        current_cost = budget.evaluate(current)

        # Auto-tune: probe the neighbourhood to estimate the typical uphill
        # step, then pick T0 / T_end for the target acceptance probabilities.
        deltas = []
        probe = current
        probe_cost = current_cost
        for _ in range(min(self.probe_moves, budget.remaining)):
            if budget.exhausted:
                break
            neighbor = self.space.random_neighbor(probe, rng)
            cost = budget.evaluate(neighbor)
            deltas.append(abs(cost - probe_cost))
            probe, probe_cost = neighbor, cost
        typical_delta = float(np.mean(deltas)) if deltas else 1.0
        typical_delta = max(typical_delta, 1e-6)
        t_start = -typical_delta / math.log(self.initial_acceptance)
        t_end = -typical_delta / math.log(self.final_acceptance)

        current, current_cost = probe, probe_cost
        total = max(budget.remaining, 1)
        step = 0
        since_improvement = 0
        best_cost = current_cost
        while not budget.exhausted:
            fraction = step / total
            temperature = t_start * (t_end / t_start) ** fraction
            neighbor = self.space.random_neighbor(current, rng)
            cost = budget.evaluate(neighbor)
            delta = cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current, current_cost = neighbor, cost
            if cost < best_cost:
                best_cost = cost
                since_improvement = 0
            else:
                since_improvement += 1
            if self.restart_after and since_improvement >= self.restart_after:
                if not budget.exhausted:
                    current = self.space.sample(rng)
                    current_cost = budget.evaluate(current)
                    since_improvement = 0
            step += 1
        return budget.result(self.name, self.problem.name)


__all__ = ["SimulatedAnnealingSearcher"]
