"""Simulated annealing baseline (paper section 5.2, Appendix A).

Metropolis acceptance over the map-space neighbourhood moves with a
geometric temperature schedule.  The paper lets the ``simanneal`` library
auto-tune its schedule per problem; we reproduce that by probing a short
random walk to estimate the uphill-move scale, then setting the initial and
final temperatures for the target initial/final uphill acceptance.
Costs are compared on a log2-EDP scale so temperatures are shape-invariant
across problems whose EDPs differ by orders of magnitude.

Ask/tell shape: the probe walk is *cost-independent* (each probe point is a
neighbour of the previous one, chosen before any cost is known), so the
entire probe — initial sample plus ``probe_moves`` walk steps — goes out as
one batch and is priced by a single oracle query.  The annealing chain
itself is inherently sequential (each move depends on the previous
acceptance), so it asks one neighbour at a time.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.costmodel.model import CostModel
from repro.engine.registry import register_searcher
from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.search.base import OracleSearcher
from repro.utils.rng import SeedLike, ensure_rng


@register_searcher("annealing", aliases=("sa", "simulated-annealing"))
class SimulatedAnnealingSearcher(OracleSearcher):
    """Classic SA with auto-tuned geometric cooling."""

    name = "SA"

    def __init__(
        self,
        space: MapSpace,
        cost_model: CostModel,
        *,
        probe_moves: int = 16,
        initial_acceptance: float = 0.5,
        final_acceptance: float = 1e-4,
        restart_after: Optional[int] = None,
    ) -> None:
        super().__init__(space, cost_model)
        if not 0.0 < final_acceptance < initial_acceptance < 1.0:
            raise ValueError("need 0 < final_acceptance < initial_acceptance < 1")
        self.probe_moves = probe_moves
        self.initial_acceptance = initial_acceptance
        self.final_acceptance = final_acceptance
        self.restart_after = restart_after

    # ------------------------------------------------------------------

    def reset(self, seed: SeedLike = None, iterations: Optional[int] = None) -> None:
        self._rng = ensure_rng(seed)
        self._iterations = iterations
        self._probing = True
        self._restart_pending = False
        self._current: Optional[Mapping] = None
        self._current_cost = math.inf
        self._best_cost = math.inf
        self._t_start = 1.0
        self._t_end = 1e-3
        self._step = 0
        self._total = 1
        self._evals_seen = 0

    def ask(self) -> List[Mapping]:
        if self._probing:
            # Initial sample + cost-independent probe walk, one batch.
            walk = [self.space.sample(self._rng)]
            for _ in range(self.probe_moves):
                walk.append(self.space.random_neighbor(walk[-1], self._rng))
            return walk
        if self._restart_pending:
            return [self.space.sample(self._rng)]
        return [self.space.random_neighbor(self._current, self._rng)]

    def tell(self, mappings: Sequence[Mapping], values: Sequence[float]) -> None:
        self._evals_seen += len(mappings)
        if self._probing:
            self._tune_schedule(mappings, values)
            return
        for mapping, cost in zip(mappings, values):
            if self._restart_pending:
                self._current, self._current_cost = mapping, cost
                self._restart_pending = False
                self._since_improvement = 0
            else:
                fraction = min(self._step / self._total, 1.0)
                temperature = self._t_start * (self._t_end / self._t_start) ** fraction
                delta = cost - self._current_cost
                if delta <= 0 or self._rng.random() < math.exp(-delta / temperature):
                    self._current, self._current_cost = mapping, cost
                self._step += 1
            if cost < self._best_cost:
                self._best_cost = cost
                self._since_improvement = 0
            else:
                self._since_improvement += 1
            if self.restart_after and self._since_improvement >= self.restart_after:
                self._restart_pending = True
                self._since_improvement = 0

    # ------------------------------------------------------------------

    def _tune_schedule(
        self, mappings: Sequence[Mapping], values: Sequence[float]
    ) -> None:
        """Set T0/T_end from probe deltas; adopt the walk's last point."""
        deltas = [abs(b - a) for a, b in zip(values, values[1:])]
        typical_delta = float(np.mean(deltas)) if deltas else 1.0
        typical_delta = max(typical_delta, 1e-6)
        self._t_start = -typical_delta / math.log(self.initial_acceptance)
        self._t_end = -typical_delta / math.log(self.final_acceptance)
        self._current = mappings[-1]
        self._current_cost = values[-1]
        self._best_cost = min(values)
        self._since_improvement = 0
        # Geometric cooling spans the evaluations left after the probe; when
        # run without a known budget, fall back to a long nominal schedule.
        if self._iterations is not None:
            self._total = max(self._iterations - self._evals_seen, 1)
        else:
            self._total = max(len(mappings) * 50, 1000)
        self._probing = False


__all__ = ["SimulatedAnnealingSearcher"]
