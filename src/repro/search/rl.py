"""Reinforcement-learning baseline: DDPG-style actor-critic (Appendix A).

The paper models mapping search as an MDP and uses Deep Deterministic
Policy Gradient (Lillicrap et al.) with actor/critic networks of 300
neurons.  Here: the *state* is the whitened encoded mapping, the *action*
is a bounded continuous delta applied to the mapping section of the vector
(decoded and projected back into the map space — the same projection
machinery gradient search uses), and the *reward* is the negated
log2-normalized EDP.  Replay buffer, target networks with soft updates, and
Gaussian exploration noise complete the standard recipe.

Every environment step queries the true cost model once, so RL iterations
line up one-to-one with the other searchers' evaluations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.encoding import MappingEncoder
from repro.core.normalize import Whitener
from repro.costmodel.lower_bound import algorithmic_minimum
from repro.costmodel.model import CostModel
from repro.engine.registry import register_searcher
from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.nn import MLP, Adam, Tensor, huber_loss, no_grad
from repro.search.base import BudgetedObjective, SearchResult, Searcher
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs


@dataclass
class _Transition:
    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray


class _ReplayBuffer:
    """Fixed-capacity FIFO with uniform sampling."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._storage: List[_Transition] = []
        self._cursor = 0

    def push(self, transition: _Transition) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
            self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, batch_size: int, rng: np.random.Generator) -> List[_Transition]:
        index = rng.integers(0, len(self._storage), size=batch_size)
        return [self._storage[int(i)] for i in index]

    def __len__(self) -> int:
        return len(self._storage)


def _soft_update(target: MLP, source: MLP, tau: float) -> None:
    for t_param, s_param in zip(target.parameters(), source.parameters()):
        t_param.data *= 1.0 - tau
        t_param.data += tau * s_param.data


def _hard_copy(target: MLP, source: MLP) -> None:
    for t_param, s_param in zip(target.parameters(), source.parameters()):
        t_param.data[...] = s_param.data


@register_searcher("rl", aliases=("ddpg",))
class RLSearcher(Searcher):
    """DDPG over the encoded mapping space."""

    name = "RL"

    def __init__(
        self,
        space: MapSpace,
        cost_model: CostModel,
        *,
        hidden_width: int = 300,
        gamma: float = 0.9,
        tau: float = 0.01,
        actor_lr: float = 1e-4,
        critic_lr: float = 1e-3,
        buffer_capacity: int = 10_000,
        batch_size: int = 64,
        warmup: int = 32,
        action_scale: float = 0.5,
        noise_std: float = 0.4,
        noise_decay: float = 0.995,
        episode_length: int = 25,
        reward_scale: float = 10.0,
    ) -> None:
        super().__init__(space)
        self.cost_model = cost_model
        self.encoder = MappingEncoder.for_problem(space.problem)
        self.hidden_width = hidden_width
        self.gamma = gamma
        self.tau = tau
        self.actor_lr = actor_lr
        self.critic_lr = critic_lr
        self.buffer_capacity = buffer_capacity
        self.batch_size = batch_size
        self.warmup = warmup
        self.action_scale = action_scale
        self.noise_std = noise_std
        self.noise_decay = noise_decay
        self.episode_length = episode_length
        self.reward_scale = reward_scale
        self._lower_bound = algorithmic_minimum(space.problem, space.accelerator)

    # ------------------------------------------------------------------

    def _objective(self, mapping: Mapping) -> float:
        return math.log2(self.cost_model.evaluate_edp(mapping, self.problem))

    def _fit_whitener(self, rng: np.random.Generator, samples: int = 64) -> Whitener:
        """Whiten states from cost-free map-space samples.

        Only the encoder runs here — no cost-model queries — so this does
        not consume search budget.
        """
        raw = np.stack(
            [
                self.encoder.encode(self.space.sample(rng), self.problem)
                for _ in range(samples)
            ]
        )
        return Whitener.fit(raw)

    def search(
        self,
        iterations: int,
        seed: SeedLike = None,
        time_budget_s: Optional[float] = None,
    ) -> SearchResult:
        rng = ensure_rng(seed)
        net_rng, env_rng = spawn_rngs(rng, 2)
        budget = self.make_budget(self._objective, iterations, time_budget_s)
        whitener = self._fit_whitener(env_rng)

        state_dim = self.encoder.length
        action_dim = self.encoder.layout.mapping_slice.stop - self.encoder.layout.mapping_slice.start
        map_slice = self.encoder.layout.mapping_slice

        actor = MLP(
            [state_dim, self.hidden_width, self.hidden_width, action_dim],
            activation="relu",
            rng=net_rng,
        )
        critic = MLP(
            [state_dim + action_dim, self.hidden_width, self.hidden_width, 1],
            activation="relu",
            rng=net_rng,
        )
        actor_target = MLP([state_dim, self.hidden_width, self.hidden_width, action_dim])
        critic_target = MLP([state_dim + action_dim, self.hidden_width, self.hidden_width, 1])
        _hard_copy(actor_target, actor)
        _hard_copy(critic_target, critic)
        actor_optimizer = Adam(actor.parameters(), lr=self.actor_lr)
        critic_optimizer = Adam(critic.parameters(), lr=self.critic_lr)
        buffer = _ReplayBuffer(self.buffer_capacity)

        def policy(state: np.ndarray, noise: float) -> np.ndarray:
            with no_grad():
                raw = actor(Tensor(state[None, :])).numpy()[0]
            action = np.tanh(raw) * self.action_scale
            if noise > 0:
                action = action + env_rng.normal(0.0, noise, size=action.shape)
            return np.clip(action, -self.action_scale, self.action_scale)

        def env_step(state: np.ndarray, action: np.ndarray) -> Tuple[np.ndarray, float, Mapping]:
            shifted = state.copy()
            shifted[map_slice] += action
            mapping = self.encoder.decode(whitener.inverse(shifted), self.space)
            cost = budget.evaluate(mapping)
            reward = -(cost - math.log2(self._lower_bound.edp)) / self.reward_scale
            next_state = whitener.transform(self.encoder.encode(mapping, self.problem))
            return next_state, reward, mapping

        noise = self.noise_std
        current_mapping = self.space.sample(env_rng)
        state = whitener.transform(self.encoder.encode(current_mapping, self.problem))
        steps_in_episode = 0

        while not budget.exhausted:
            action = policy(state, noise)
            next_state, reward, current_mapping = env_step(state, action)
            buffer.push(
                _Transition(
                    state=state.copy(),
                    action=action,
                    reward=reward,
                    next_state=next_state.copy(),
                )
            )
            state = next_state
            noise *= self.noise_decay
            steps_in_episode += 1
            if steps_in_episode >= self.episode_length:
                current_mapping = self.space.sample(env_rng)
                state = whitener.transform(
                    self.encoder.encode(current_mapping, self.problem)
                )
                steps_in_episode = 0
            if len(buffer) >= max(self.batch_size, self.warmup):
                self._train_step(
                    buffer,
                    env_rng,
                    actor,
                    critic,
                    actor_target,
                    critic_target,
                    actor_optimizer,
                    critic_optimizer,
                )
        return budget.result(self.name, self.problem.name)

    # ------------------------------------------------------------------

    def _train_step(
        self,
        buffer: _ReplayBuffer,
        rng: np.random.Generator,
        actor: MLP,
        critic: MLP,
        actor_target: MLP,
        critic_target: MLP,
        actor_optimizer: Adam,
        critic_optimizer: Adam,
    ) -> None:
        batch = buffer.sample(self.batch_size, rng)
        states = np.stack([t.state for t in batch])
        actions = np.stack([t.action for t in batch])
        rewards = np.array([t.reward for t in batch])[:, None]
        next_states = np.stack([t.next_state for t in batch])

        # Critic: fit Q(s, a) to the bootstrapped target.
        with no_grad():
            next_actions = np.tanh(actor_target(Tensor(next_states)).numpy()) * self.action_scale
            next_q = critic_target(
                Tensor(np.concatenate([next_states, next_actions], axis=1))
            ).numpy()
        target_q = rewards + self.gamma * next_q
        critic_optimizer.zero_grad()
        q_prediction = critic(Tensor(np.concatenate([states, actions], axis=1)))
        critic_loss = huber_loss(q_prediction, target_q)
        critic_loss.backward()
        critic_optimizer.step()

        # Actor: ascend Q(s, actor(s)); gradients flow through the critic.
        actor_optimizer.zero_grad()
        critic_optimizer.zero_grad()
        state_tensor = Tensor(states)
        proposed = actor(state_tensor).tanh() * self.action_scale
        q_value = critic(Tensor.concat([state_tensor, proposed], axis=1))
        actor_loss = -q_value.mean()
        actor_loss.backward()
        actor_optimizer.step()
        critic_optimizer.zero_grad()  # discard critic grads from actor pass

        _soft_update(actor_target, actor, self.tau)
        _soft_update(critic_target, critic, self.tau)


__all__ = ["RLSearcher"]
