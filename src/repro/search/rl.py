"""Reinforcement-learning baseline: DDPG-style actor-critic (Appendix A).

The paper models mapping search as an MDP and uses Deep Deterministic
Policy Gradient (Lillicrap et al.) with actor/critic networks of 300
neurons.  Here: the *state* is the whitened encoded mapping, the *action*
is a bounded continuous delta applied to the mapping section of the vector
(decoded and projected back into the map space — the same projection
machinery gradient search uses), and the *reward* is the negated
log2-normalized EDP.  Replay buffer, target networks with soft updates, and
Gaussian exploration noise complete the standard recipe.

Ask/tell shape: the policy is on-line — each action depends on the state
reached by the previous one — so ``ask`` proposes a single decoded mapping
per step and ``tell`` closes the transition (reward, replay push, one
training step).  RL iterations therefore line up one-to-one with the other
searchers' evaluations, exactly as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.encoding import MappingEncoder
from repro.core.normalize import Whitener
from repro.costmodel.lower_bound import algorithmic_minimum
from repro.costmodel.model import CostModel
from repro.engine.registry import register_searcher
from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.nn import MLP, Adam, Tensor, huber_loss, no_grad
from repro.search.base import OracleSearcher
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs


@dataclass
class _Transition:
    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray


class _ReplayBuffer:
    """Fixed-capacity FIFO with uniform sampling."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._storage: List[_Transition] = []
        self._cursor = 0

    def push(self, transition: _Transition) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
            self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, batch_size: int, rng: np.random.Generator) -> List[_Transition]:
        index = rng.integers(0, len(self._storage), size=batch_size)
        return [self._storage[int(i)] for i in index]

    def __len__(self) -> int:
        return len(self._storage)


def _soft_update(target: MLP, source: MLP, tau: float) -> None:
    for t_param, s_param in zip(target.parameters(), source.parameters()):
        t_param.data *= 1.0 - tau
        t_param.data += tau * s_param.data


def _hard_copy(target: MLP, source: MLP) -> None:
    for t_param, s_param in zip(target.parameters(), source.parameters()):
        t_param.data[...] = s_param.data


@register_searcher("rl", aliases=("ddpg",))
class RLSearcher(OracleSearcher):
    """DDPG over the encoded mapping space."""

    name = "RL"

    def __init__(
        self,
        space: MapSpace,
        cost_model: CostModel,
        *,
        hidden_width: int = 300,
        gamma: float = 0.9,
        tau: float = 0.01,
        actor_lr: float = 1e-4,
        critic_lr: float = 1e-3,
        buffer_capacity: int = 10_000,
        batch_size: int = 64,
        warmup: int = 32,
        action_scale: float = 0.5,
        noise_std: float = 0.4,
        noise_decay: float = 0.995,
        episode_length: int = 25,
        reward_scale: float = 10.0,
    ) -> None:
        super().__init__(space, cost_model)
        self.encoder = MappingEncoder.for_problem(space.problem)
        self.hidden_width = hidden_width
        self.gamma = gamma
        self.tau = tau
        self.actor_lr = actor_lr
        self.critic_lr = critic_lr
        self.buffer_capacity = buffer_capacity
        self.batch_size = batch_size
        self.warmup = warmup
        self.action_scale = action_scale
        self.noise_std = noise_std
        self.noise_decay = noise_decay
        self.episode_length = episode_length
        self.reward_scale = reward_scale
        self._lower_bound = algorithmic_minimum(space.problem, space.accelerator)

    # ------------------------------------------------------------------

    def _fit_whitener(self, rng: np.random.Generator, samples: int = 64) -> Whitener:
        """Whiten states from cost-free map-space samples.

        Only the encoder runs here — no cost-model queries — so this does
        not consume search budget.
        """
        raw = self.encoder.encode_batch(
            [self.space.sample(rng) for _ in range(samples)], self.problem
        )
        return Whitener.fit(raw)

    def reset(self, seed: SeedLike = None, iterations: Optional[int] = None) -> None:
        rng = ensure_rng(seed)
        net_rng, self._env_rng = spawn_rngs(rng, 2)
        self._whitener = self._fit_whitener(self._env_rng)

        state_dim = self.encoder.length
        map_slice = self.encoder.layout.mapping_slice
        action_dim = map_slice.stop - map_slice.start
        self._map_slice = map_slice

        self._actor = MLP(
            [state_dim, self.hidden_width, self.hidden_width, action_dim],
            activation="relu",
            rng=net_rng,
        )
        self._critic = MLP(
            [state_dim + action_dim, self.hidden_width, self.hidden_width, 1],
            activation="relu",
            rng=net_rng,
        )
        self._actor_target = MLP(
            [state_dim, self.hidden_width, self.hidden_width, action_dim]
        )
        self._critic_target = MLP(
            [state_dim + action_dim, self.hidden_width, self.hidden_width, 1]
        )
        _hard_copy(self._actor_target, self._actor)
        _hard_copy(self._critic_target, self._critic)
        self._actor_optimizer = Adam(self._actor.parameters(), lr=self.actor_lr)
        self._critic_optimizer = Adam(self._critic.parameters(), lr=self.critic_lr)
        self._buffer = _ReplayBuffer(self.buffer_capacity)

        self._noise = self.noise_std
        current_mapping = self.space.sample(self._env_rng)
        self._state = self._whiten_state(current_mapping)
        self._steps_in_episode = 0
        self._pending: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def _whiten_state(self, mapping: Mapping) -> np.ndarray:
        return self._whitener.transform(self.encoder.encode(mapping, self.problem))

    def _policy(self, state: np.ndarray, noise: float) -> np.ndarray:
        with no_grad():
            raw = self._actor(Tensor(state[None, :])).numpy()[0]
        action = np.tanh(raw) * self.action_scale
        if noise > 0:
            action = action + self._env_rng.normal(0.0, noise, size=action.shape)
        return np.clip(action, -self.action_scale, self.action_scale)

    def ask(self) -> List[Mapping]:
        action = self._policy(self._state, self._noise)
        shifted = self._state.copy()
        shifted[self._map_slice] += action
        mapping = self.encoder.decode(self._whitener.inverse(shifted), self.space)
        self._pending = (self._state.copy(), action)
        return [mapping]

    def tell(self, mappings: Sequence[Mapping], values: Sequence[float]) -> None:
        if self._pending is None:
            raise RuntimeError(
                "RLSearcher.tell called without a matching ask(); the DDPG "
                "policy needs the (state, action) pair the batch came from"
            )
        state, action = self._pending
        self._pending = None
        for mapping, cost in zip(mappings, values):
            reward = -(cost - math.log2(self._lower_bound.edp)) / self.reward_scale
            next_state = self._whiten_state(mapping)
            self._buffer.push(
                _Transition(
                    state=state,
                    action=action,
                    reward=reward,
                    next_state=next_state.copy(),
                )
            )
            self._state = next_state
            self._noise *= self.noise_decay
            self._steps_in_episode += 1
            if self._steps_in_episode >= self.episode_length:
                self._state = self._whiten_state(self.space.sample(self._env_rng))
                self._steps_in_episode = 0
            if len(self._buffer) >= max(self.batch_size, self.warmup):
                self._train_step()

    # ------------------------------------------------------------------

    def _train_step(self) -> None:
        batch = self._buffer.sample(self.batch_size, self._env_rng)
        states = np.stack([t.state for t in batch])
        actions = np.stack([t.action for t in batch])
        rewards = np.array([t.reward for t in batch])[:, None]
        next_states = np.stack([t.next_state for t in batch])

        # Critic: fit Q(s, a) to the bootstrapped target.
        with no_grad():
            next_actions = (
                np.tanh(self._actor_target(Tensor(next_states)).numpy())
                * self.action_scale
            )
            next_q = self._critic_target(
                Tensor(np.concatenate([next_states, next_actions], axis=1))
            ).numpy()
        target_q = rewards + self.gamma * next_q
        self._critic_optimizer.zero_grad()
        q_prediction = self._critic(Tensor(np.concatenate([states, actions], axis=1)))
        critic_loss = huber_loss(q_prediction, target_q)
        critic_loss.backward()
        self._critic_optimizer.step()

        # Actor: ascend Q(s, actor(s)); gradients flow through the critic.
        self._actor_optimizer.zero_grad()
        self._critic_optimizer.zero_grad()
        state_tensor = Tensor(states)
        proposed = self._actor(state_tensor).tanh() * self.action_scale
        q_value = self._critic(Tensor.concat([state_tensor, proposed], axis=1))
        actor_loss = -q_value.mean()
        actor_loss.backward()
        self._actor_optimizer.step()
        self._critic_optimizer.zero_grad()  # discard critic grads from actor pass

        _soft_update(self._actor_target, self._actor, self.tau)
        _soft_update(self._critic_target, self._critic, self.tau)


__all__ = ["RLSearcher"]
