"""Exhaustive search over tiny map spaces.

Realistic spaces (~1e25 mappings) make exhaustive search impossible — the
motivation for the whole paper — but tiny 1D-Conv spaces can be enumerated
completely, giving the test suite a *true* global optimum to compare
heuristic searchers against.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

from repro.costmodel.model import CostModel
from repro.engine.registry import register_searcher
from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.search.base import OracleSearcher
from repro.utils.rng import SeedLike


@register_searcher("exhaustive")
class ExhaustiveSearcher(OracleSearcher):
    """Evaluate every mapping the enumerator yields (budget permitting).

    ``ask`` hands the enumerator out in ``batch_size`` chunks; an empty
    chunk (enumeration finished) ends the run before the budget does.
    """

    name = "Exhaustive"

    def __init__(
        self,
        space: MapSpace,
        cost_model: CostModel,
        *,
        include_orders: bool = True,
        balanced_allocation: bool = True,
        enumeration_limit: int = 200_000,
        batch_size: int = 64,
    ) -> None:
        super().__init__(space, cost_model)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.include_orders = include_orders
        self.balanced_allocation = balanced_allocation
        self.enumeration_limit = enumeration_limit
        self.batch_size = batch_size

    def reset(self, seed: SeedLike = None, iterations: Optional[int] = None) -> None:
        # seed is unused; exhaustive enumeration is deterministic.
        self._iterator: Iterator[Mapping] = iter(
            self.space.enumerate_mappings(
                include_orders=self.include_orders,
                balanced_allocation=self.balanced_allocation,
                limit=self.enumeration_limit,
            )
        )

    def ask(self) -> List[Mapping]:
        return list(itertools.islice(self._iterator, self.batch_size))


__all__ = ["ExhaustiveSearcher"]
