"""Exhaustive search over tiny map spaces.

Realistic spaces (~1e25 mappings) make exhaustive search impossible — the
motivation for the whole paper — but tiny 1D-Conv spaces can be enumerated
completely, giving the test suite a *true* global optimum to compare
heuristic searchers against.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.costmodel.model import CostModel
from repro.engine.registry import register_searcher
from repro.mapspace.space import MapSpace
from repro.search.base import BudgetedObjective, SearchResult, Searcher
from repro.utils.rng import SeedLike


@register_searcher("exhaustive")
class ExhaustiveSearcher(Searcher):
    """Evaluate every mapping the enumerator yields (budget permitting)."""

    name = "Exhaustive"

    def __init__(
        self,
        space: MapSpace,
        cost_model: CostModel,
        *,
        include_orders: bool = True,
        balanced_allocation: bool = True,
        enumeration_limit: int = 200_000,
    ) -> None:
        super().__init__(space)
        self.cost_model = cost_model
        self.include_orders = include_orders
        self.balanced_allocation = balanced_allocation
        self.enumeration_limit = enumeration_limit

    def search(
        self,
        iterations: int,
        seed: SeedLike = None,  # unused; exhaustive search is deterministic
        time_budget_s: Optional[float] = None,
    ) -> SearchResult:
        budget = self.make_budget(
            lambda m: math.log2(self.cost_model.evaluate_edp(m, self.problem)),
            iterations,
            time_budget_s,
        )
        for mapping in self.space.enumerate_mappings(
            include_orders=self.include_orders,
            balanced_allocation=self.balanced_allocation,
            limit=self.enumeration_limit,
        ):
            if budget.exhausted:
                break
            budget.evaluate(mapping)
        return budget.result(self.name, self.problem.name)


__all__ = ["ExhaustiveSearcher"]
