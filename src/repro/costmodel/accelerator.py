"""Accelerator architecture specification.

Matches the paper's evaluated hardware (section 5.1.2): 256 PEs, a two-level
on-chip hierarchy with a 512 KB shared buffer (L2) and 64 KB private buffers
(L1), banked so capacity can be allocated per tensor, with flexible loop
order / tile size support at every level and a multicast-capable NoC.

Energy numbers are Eyeriss-class per-word access costs (relative to a ~1 pJ
MAC); absolute values only scale EDP, they do not change who wins a search
comparison, which is what the paper's figures measure.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Dict, Tuple

#: Canonical memory level names, outermost first.  The map space and cost
#: model iterate levels in this order.
MEMORY_LEVELS: Tuple[str, ...] = ("DRAM", "L2", "L1")

#: On-chip levels whose banked capacity is allocated between tensors.
ALLOCATABLE_LEVELS: Tuple[str, ...] = ("L2", "L1")


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energy costs in picojoules."""

    mac: float = 1.0
    l1_access: float = 2.0
    l2_access: float = 10.0
    dram_access: float = 200.0
    noc_hop: float = 1.0

    def access(self, level: str) -> float:
        """Per-word access energy for ``level`` (one of MEMORY_LEVELS)."""
        table = {"DRAM": self.dram_access, "L2": self.l2_access, "L1": self.l1_access}
        try:
            return table[level]
        except KeyError:
            raise KeyError(f"unknown memory level {level!r}") from None


@dataclass(frozen=True)
class Accelerator:
    """A flexible spatial accelerator (paper Figure 2 generalized).

    Capacities are in bytes; bandwidths in words per cycle; the clock is
    1 GHz as in the paper, so delay in seconds is ``cycles * 1e-9``.
    """

    name: str = "mm-accel"
    num_pes: int = 256
    l1_bytes: int = 64 * 1024
    l2_bytes: int = 512 * 1024
    l1_banks: int = 16
    l2_banks: int = 32
    word_bytes: int = 2
    dram_words_per_cycle: float = 16.0
    l2_words_per_cycle: float = 64.0
    l1_words_per_cycle: float = 4.0
    clock_ghz: float = 1.0
    energy: EnergyTable = field(default_factory=EnergyTable)

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ValueError(f"num_pes must be >= 1, got {self.num_pes}")
        if self.word_bytes < 1:
            raise ValueError(f"word_bytes must be >= 1, got {self.word_bytes}")
        for label, cap, banks in (
            ("L1", self.l1_bytes, self.l1_banks),
            ("L2", self.l2_bytes, self.l2_banks),
        ):
            if cap < 1:
                raise ValueError(f"{label} capacity must be positive, got {cap}")
            if banks < 1:
                raise ValueError(f"{label} bank count must be positive, got {banks}")
            if cap % banks != 0:
                raise ValueError(f"{label} capacity {cap} not divisible by {banks} banks")

    # ---- capacity helpers -------------------------------------------------

    def capacity_words(self, level: str) -> int:
        """Total capacity of ``level`` in words (per PE for L1)."""
        if level == "L1":
            return self.l1_bytes // self.word_bytes
        if level == "L2":
            return self.l2_bytes // self.word_bytes
        raise KeyError(f"level {level!r} has no on-chip capacity")

    def banks(self, level: str) -> int:
        """Number of allocatable banks at ``level``."""
        if level == "L1":
            return self.l1_banks
        if level == "L2":
            return self.l2_banks
        raise KeyError(f"level {level!r} has no banks")

    def bank_words(self, level: str) -> int:
        """Capacity of one bank at ``level`` in words."""
        return self.capacity_words(level) // self.banks(level)

    def bandwidth(self, level: str) -> float:
        """Words per cycle deliverable by ``level``."""
        table = {
            "DRAM": self.dram_words_per_cycle,
            "L2": self.l2_words_per_cycle,
            "L1": self.l1_words_per_cycle,
        }
        try:
            return table[level]
        except KeyError:
            raise KeyError(f"unknown memory level {level!r}") from None

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at this accelerator's clock."""
        return cycles / (self.clock_ghz * 1e9)

    def fingerprint(self) -> str:
        """Stable short digest of every architectural parameter.

        A surrogate is only valid for the accelerator it was trained
        against, so trained artifacts are keyed (and save/load verified)
        by this value.  The ``name`` field is cosmetic and excluded: two
        differently-named but identical configurations share a surrogate.
        """
        fields = asdict(self)
        fields.pop("name", None)
        canonical = repr(sorted(fields.items()))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def default_accelerator() -> Accelerator:
    """The paper's evaluation accelerator (section 5.1.2)."""
    return Accelerator()


def small_accelerator() -> Accelerator:
    """A scaled-down accelerator (16 PEs, small buffers).

    Useful for tests and the 1D-Conv example where exhaustive search over
    the map space must stay tractable.
    """
    return Accelerator(
        name="mm-accel-small",
        num_pes=16,
        l1_bytes=4 * 1024,
        l2_bytes=32 * 1024,
        l1_banks=4,
        l2_banks=8,
    )


__all__ = [
    "ALLOCATABLE_LEVELS",
    "Accelerator",
    "EnergyTable",
    "MEMORY_LEVELS",
    "default_accelerator",
    "small_accelerator",
]
