"""Memoizing cost-oracle wrapper shared by the harness and the engine.

Search traces revisit the same mappings heavily (projection rounds nearby
points onto the same lattice site; populations carry elites forward), so
re-scoring a trace with the true cost model is dominated by duplicate
queries.  :class:`CachedOracle` wraps any oracle exposing the
``evaluate`` / ``evaluate_edp`` signature of
:class:`~repro.costmodel.model.CostModel` and memoizes both, with optional
LRU eviction and hit/miss counters for observability.

Promoted from the harness-private ``_TrueCostCache`` so the experiment
runners and :class:`repro.engine.MappingEngine` share one implementation.
"""

from __future__ import annotations

import hashlib
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.costmodel.batch import megabatch_shape_stats
from repro.costmodel.stats import CostStats
from repro.mapspace.mapping import Mapping
from repro.obs.trace import span as _kernel_span
from repro.workloads.problem import Problem

#: Tap signature for the oracle's miss path: ``listener(problem, mappings,
#: edps, stats)``.  ``stats`` is the richest label the miss path had in
#: hand — a :class:`~repro.costmodel.batch.BatchCostStats` when the inner
#: backend priced the batch through its vectorized kernels, a list of
#: :class:`CostStats` for scalar ``evaluate`` misses, or ``None`` when only
#: bare EDPs exist.  Listeners must be cheap and must never raise into the
#: serving path; exceptions are swallowed with a warning.
MissListener = Callable[
    [Problem, Sequence[Mapping], Sequence[float], object], None
]


@dataclass(frozen=True)
class CacheStats:
    """Counters snapshot: queries answered from cache vs. the inner oracle.

    ``prewarmed`` counts entries inserted by the scheduler's
    :meth:`CachedOracle.prewarm` hook; those insertions are *not* queries,
    so they appear in neither ``hits`` nor ``misses`` — but the searcher
    lookups they later answer do count as hits, which is why a coalesced
    serving run reports a higher hit rate than the same requests served
    solo (same totals, different attribution).
    """

    hits: int
    misses: int
    size: int
    maxsize: Optional[int]
    prewarmed: int = 0

    @property
    def queries(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from cache (0.0 when never queried)."""
        return self.hits / self.queries if self.queries else 0.0


def problem_key(problem: Problem) -> Hashable:
    """Identity key covering every cost-relevant field of a problem.

    ``Problem`` itself is not hashable (``extra`` is a dict), so cache keys
    flatten it.  Everything that feeds the cost model must participate:
    two problems differing only in ``ops_per_point`` (or tensor
    projections) have different costs and must not share entries.
    """
    return (
        problem.algorithm,
        problem.name,
        problem.dims,
        problem.tensors,
        problem.ops_per_point,
        tuple(sorted(problem.extra.items())),
    )


def problem_fingerprint(problem: Problem) -> str:
    """Stable 16-hex digest of a problem's cost identity.

    The wire/metrics-friendly form of :func:`problem_key`: the cluster's
    consistent-hash ring routes on it and the metrics label dimension
    ``served_by_problem`` buckets on it, so the same problem maps to the
    same shard and the same series on every process.  Lives here (not in
    ``repro.cluster``) so the serving layer can label per-problem metrics
    without importing the cluster package.
    """
    digest = hashlib.sha256(repr(problem_key(problem)).encode("utf-8"))
    return digest.hexdigest()[:16]


def _shape_attrs(problems: Sequence[Problem]):
    """Deferred span attributes: kernel shape stats, built only when a
    trace is actually listening (see ``attrs_fn`` in repro.obs.trace)."""
    return lambda: dict(megabatch_shape_stats(problems))


class CachedOracle:
    """LRU-memoized view of a cost oracle, safe for concurrent callers.

    ``inner`` is anything with ``evaluate(mapping, problem) -> CostStats``
    and ``evaluate_edp(mapping, problem) -> float`` — typically a
    :class:`~repro.costmodel.model.CostModel` or another oracle from
    :mod:`repro.engine.oracle`.  ``maxsize=None`` (the default) caches
    without bound, matching the old harness behaviour; a positive bound
    evicts least-recently-used entries.

    **Concurrency contract** (audited for the ``repro.serve`` worker pool):
    every access to the LRU store *and* to the hit/miss/prewarm counters
    happens under ``self._lock`` — lookups, insertions, eviction,
    ``move_to_end`` recency updates, ``stats()``, and ``clear()``.  The
    lock is released while the inner oracle computes, so concurrent misses
    on the *same* key may each pay one inner query (both counted as
    misses, last insert wins); that duplicated work is benign because the
    inner oracle is deterministic — both threads observe the same value,
    and the store never holds torn state.  The regression hammer in
    ``tests/test_costmodel_cache.py`` drives mixed ``evaluate`` /
    ``evaluate_edp`` / ``evaluate_many`` / ``prewarm`` traffic from many
    threads and checks counters and values stay exact.

    EDP queries are answered from a cached :class:`CostStats` when one
    exists (EDP is derived from stats), so mixed ``evaluate`` /
    ``evaluate_edp`` traffic on the same mapping costs one model query.
    """

    def __init__(self, inner, maxsize: Optional[int] = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be None or >= 1, got {maxsize}")
        self.inner = inner
        self.maxsize = maxsize
        self._lock = threading.Lock()
        # One LRU store; an entry is either a full CostStats (answers both
        # query kinds) or a bare float EDP, so maxsize bounds total entries.
        self._store: "OrderedDict[Tuple[Hashable, Mapping], object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._prewarmed = 0
        self._miss_listener: Optional[MissListener] = None

    def set_miss_listener(self, listener: Optional[MissListener]) -> None:
        """Install (or clear) the miss tap.

        Every mapping the inner oracle prices — ``evaluate`` /
        ``evaluate_edp`` / ``evaluate_many`` misses and ``prewarm``
        insertions — is reported to ``listener`` together with the labels
        the miss path computed anyway, so observers (the online-learning
        replay buffer) get true-cost training samples at zero extra model
        cost.  The listener runs outside the cache lock, on the querying
        thread; it must enqueue and return (heavy work belongs on a
        background thread), and its exceptions are swallowed with a
        warning so a broken observer can never fail a query.
        """
        self._miss_listener = listener

    def _notify_misses(
        self,
        problem: Problem,
        mappings: Sequence[Mapping],
        values: Sequence[float],
        stats: object,
    ) -> None:
        listener = self._miss_listener
        if listener is None or not len(mappings):
            return
        try:
            listener(problem, mappings, values, stats)
        except Exception as error:  # noqa: BLE001 — observers never fail queries
            warnings.warn(
                f"CachedOracle miss listener failed "
                f"({error.__class__.__name__}: {error}); sample dropped"
            )

    def _price_misses(
        self, mappings: Sequence[Mapping], problem: Problem
    ) -> List[float]:
        """Price uncached mappings through the widest inner path.

        With a miss listener installed and an inner backend exposing
        ``evaluate_batch`` (the analytical :class:`CostModel` does), the
        batch is priced through the full-statistics kernels so the tap
        receives meta-statistics labels — the EDPs are derived from the
        same :class:`BatchCostStats` the scalar path would compute, so
        values are bitwise unchanged.  Otherwise this is the plain
        ``evaluate_many``/``evaluate_edp`` miss path.
        """
        listener = self._miss_listener
        inner_batch = getattr(self.inner, "evaluate_batch", None)
        # The ambient kernel span is a no-op unless a request trace is
        # active; ``attrs_fn`` defers the shape stats to that case.  Spans
        # wrap only real inner-oracle work — cache-hit replays never get
        # here — so ``kernel_s`` measures actual kernel time.
        shape = _shape_attrs([problem] * len(mappings))
        if listener is not None and inner_batch is not None:
            with _kernel_span("megabatch.kernel", stage="kernel_s",
                              attrs_fn=shape):
                batch_stats = inner_batch(mappings, problem)
            values = [float(v) for v in batch_stats.edp]
            self._notify_misses(problem, mappings, values, batch_stats)
            return values
        inner_many = getattr(self.inner, "evaluate_many", None)
        with _kernel_span("megabatch.kernel", stage="kernel_s",
                          attrs_fn=shape):
            if inner_many is not None:
                values = [float(v) for v in inner_many(mappings, problem)]
            else:
                values = [
                    float(self.inner.evaluate_edp(mapping, problem))
                    for mapping in mappings
                ]
        self._notify_misses(problem, mappings, values, None)
        return values

    def _price_misses_grouped(
        self, groups: Sequence[Tuple[Problem, Sequence[Mapping]]]
    ) -> List[List[float]]:
        """Price per-problem miss lists through **one** inner kernel call.

        ``groups`` pairs each distinct problem with its uncached mappings.
        When the inner backend exposes ``evaluate_megabatch`` (the
        analytical :class:`~repro.costmodel.model.CostModel` does), the
        whole union is lowered into a single cross-problem megabatch and
        priced by one run of the cost kernels; per-problem EDP slices and
        the tap's :class:`~repro.costmodel.batch.BatchCostStats` labels
        (``problem_slice``) are bitwise identical to pricing each group
        through :meth:`_price_misses` separately.  Backends without the
        megabatch path fall back to exactly that per-group loop.
        """
        inner_mega = getattr(self.inner, "evaluate_megabatch", None)
        if inner_mega is None or len(groups) <= 1:
            return [
                self._price_misses(mappings, problem)
                for problem, mappings in groups
            ]
        lane_mappings: List[Mapping] = []
        lane_problems: List[Problem] = []
        for problem, mappings in groups:
            lane_mappings.extend(mappings)
            lane_problems.extend([problem] * len(mappings))
        with _kernel_span("megabatch.kernel", stage="kernel_s",
                          attrs_fn=_shape_attrs(lane_problems)):
            mega = inner_mega(lane_mappings, lane_problems)
        edp = mega.edp
        listener = self._miss_listener
        results: List[List[float]] = []
        start = 0
        for g, (problem, mappings) in enumerate(groups):
            end = start + len(mappings)
            values = edp[start:end].tolist()
            results.append(values)
            if listener is not None and mappings:
                self._notify_misses(
                    problem, mappings, values, mega.problem_slice(g)
                )
            start = end
        return results

    # ------------------------------------------------------------------
    # Oracle interface
    # ------------------------------------------------------------------

    def evaluate(self, mapping: Mapping, problem: Problem) -> CostStats:
        key = (problem_key(problem), mapping)
        with self._lock:
            cached = self._store.get(key)
            if isinstance(cached, CostStats):
                self._hits += 1
                self._store.move_to_end(key)
                return cached
            was_known = cached is not None
        stats = self.inner.evaluate(mapping, problem)
        with self._lock:
            self._misses += 1
            # Upgrades an existing bare-EDP entry to the full statistics.
            self._insert(key, stats)
        if not was_known:
            # An upgrade miss re-prices a mapping the tap already saw when
            # its bare EDP was inserted; reporting it again would bias the
            # replay reservoir toward revisited (winning) mappings.
            self._notify_misses(problem, [mapping], [stats.edp], [stats])
        return stats

    def evaluate_edp(self, mapping: Mapping, problem: Problem) -> float:
        key = (problem_key(problem), mapping)
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self._hits += 1
                self._store.move_to_end(key)
                return cached.edp if isinstance(cached, CostStats) else cached
        stats: Optional[CostStats] = None
        inner_evaluate = getattr(self.inner, "evaluate", None)
        if self._miss_listener is not None and inner_evaluate is not None:
            # The scalar EDP is defined as evaluate(...).edp, so asking the
            # inner oracle for the full statistics returns the *same* value
            # at the same cost — and gives the tap a full label instead of a
            # bare float (which meta-mode replay buffers must discard).
            try:
                stats = inner_evaluate(mapping, problem)
            except NotImplementedError:
                stats = None  # e.g. a surrogate backend: scalar-only
        if stats is not None:
            value = float(stats.edp)
        else:
            value = float(self.inner.evaluate_edp(mapping, problem))
        with self._lock:
            self._misses += 1
            self._insert(key, stats if stats is not None else value)
        self._notify_misses(
            problem, [mapping], [value], None if stats is None else [stats]
        )
        return value

    def evaluate_many(self, mappings: Sequence[Mapping], problem: Problem) -> List[float]:
        """Batched EDP with hit/miss partitioning.

        Answers what it can from the cache, forwards *only the misses* to
        the inner oracle — in one ``evaluate_many`` call when the backend
        has one — and merges the results back in input order.  Counters
        match the sequential loop exactly: a batch of k cached mappings and
        m uncached ones counts k hits and m misses, and a mapping repeated
        within a batch is one miss plus hits for the repeats (the repeats
        are served from the first occurrence's result, never re-priced).
        """
        pkey = problem_key(problem)
        keys = [(pkey, mapping) for mapping in mappings]
        values: List[Optional[float]] = [None] * len(keys)
        miss_indices: List[int] = []
        first_miss: Dict[object, int] = {}
        duplicate_of: Dict[int, int] = {}
        with self._lock:
            for index, key in enumerate(keys):
                cached = self._store.get(key)
                if cached is not None:
                    self._hits += 1
                    self._store.move_to_end(key)
                    values[index] = (
                        cached.edp if isinstance(cached, CostStats) else float(cached)
                    )
                elif key in first_miss:
                    # In-batch repeat of an uncached mapping: by the time a
                    # sequential loop reached it, the first occurrence would
                    # have populated the cache — so it counts as a hit.
                    self._hits += 1
                    duplicate_of[index] = first_miss[key]
                else:
                    first_miss[key] = index
                    miss_indices.append(index)
        if miss_indices:
            misses = [mappings[index] for index in miss_indices]
            miss_values = self._price_misses(misses, problem)
            with self._lock:
                self._misses += len(miss_indices)
                for index, value in zip(miss_indices, miss_values):
                    values[index] = value
                    self._insert(keys[index], value)
        for index, source in duplicate_of.items():
            values[index] = values[source]
        return [float(value) for value in values]

    def evaluate_many_grouped(
        self, mappings: Sequence[Mapping], problems: Sequence[Problem]
    ) -> List[float]:
        """Batched EDP for aligned ``(mappings[i], problems[i])`` lanes.

        The cross-problem analogue of :meth:`evaluate_many`: hits are
        answered from cache per lane, and the misses of *all* problems are
        forwarded in one :meth:`_price_misses_grouped` union — a single
        inner megabatch when the backend has one.  Counter semantics are
        identical to calling :meth:`evaluate_many` once per problem group
        (hits, misses, and in-batch duplicate hits attribute the same
        way), and so are the values.
        """
        if len(mappings) != len(problems):
            raise ValueError(
                f"grouped lanes misaligned: {len(mappings)} mappings vs "
                f"{len(problems)} problems"
            )
        pkey_by_id: Dict[int, Hashable] = {}
        keys: List[Tuple[Hashable, Mapping]] = []
        for mapping, problem in zip(mappings, problems):
            pkey = pkey_by_id.get(id(problem))
            if pkey is None:
                pkey = problem_key(problem)
                pkey_by_id[id(problem)] = pkey
            keys.append((pkey, mapping))
        values: List[Optional[float]] = [None] * len(keys)
        miss_groups: "OrderedDict[Hashable, Tuple[Problem, List[int]]]" = (
            OrderedDict()
        )
        first_miss: Dict[object, int] = {}
        duplicate_of: Dict[int, int] = {}
        with self._lock:
            for index, key in enumerate(keys):
                cached = self._store.get(key)
                if cached is not None:
                    self._hits += 1
                    self._store.move_to_end(key)
                    values[index] = (
                        cached.edp if isinstance(cached, CostStats) else float(cached)
                    )
                elif key in first_miss:
                    self._hits += 1
                    duplicate_of[index] = first_miss[key]
                else:
                    first_miss[key] = index
                    entry = miss_groups.get(key[0])
                    if entry is None:
                        miss_groups[key[0]] = (problems[index], [index])
                    else:
                        entry[1].append(index)
        if miss_groups:
            grouped_values = self._price_misses_grouped(
                [
                    (problem, [mappings[i] for i in indices])
                    for problem, indices in miss_groups.values()
                ]
            )
            with self._lock:
                for (problem, indices), miss_values in zip(
                    miss_groups.values(), grouped_values
                ):
                    self._misses += len(indices)
                    for index, value in zip(indices, miss_values):
                        values[index] = value
                        self._insert(keys[index], value)
        for index, source in duplicate_of.items():
            values[index] = values[source]
        return [float(value) for value in values]

    def prewarm(self, mappings: Sequence[Mapping], problem: Problem) -> int:
        """Price every uncached mapping in one inner batch, counter-neutral.

        The scheduler hook behind request coalescing
        (:mod:`repro.serve.cohort`): a lockstep cohort unions the candidate
        batches of many concurrent searches and prewarms them here, so each
        search's own metered ``evaluate_many`` is answered from cache while
        the union rides the widest vectorized path through the inner
        oracle.  Prewarm insertions touch neither ``hits`` nor ``misses``
        (they are not queries — ``CacheStats.prewarmed`` counts them), and
        existing entries are left untouched, including their LRU recency.
        Returns the number of entries inserted.
        """
        return self.prewarm_grouped([(problem, mappings)])

    def prewarm_grouped(
        self, groups: Sequence[Tuple[Problem, Sequence[Mapping]]]
    ) -> int:
        """:meth:`prewarm` for a whole multi-problem round at once.

        Partitions every group's mappings into cached vs. uncached under
        one lock pass, then prices the union of *all* groups' misses
        through one :meth:`_price_misses_grouped` call — a single inner
        cost-kernel run when the backend supports megabatching — and
        inserts the results counter-neutrally (``CacheStats.prewarmed``
        counts insertions, hits/misses are untouched).  Groups repeating a
        problem (by cost identity) are merged first, so each distinct
        problem is priced as one contiguous slice.  Returns the number of
        entries inserted.
        """
        merged: "OrderedDict[Hashable, Tuple[Problem, List[Mapping]]]" = (
            OrderedDict()
        )
        for problem, mappings in groups:
            pkey = problem_key(problem)
            entry = merged.get(pkey)
            if entry is None:
                merged[pkey] = (problem, list(mappings))
            else:
                entry[1].extend(mappings)
        todo_groups: List[Tuple[Hashable, Problem, List[Mapping]]] = []
        with self._lock:
            for pkey, (problem, mappings) in merged.items():
                seen = set()
                todo: List[Mapping] = []
                for mapping in mappings:
                    key = (pkey, mapping)
                    if key in self._store or key in seen:
                        continue
                    seen.add(key)
                    todo.append(mapping)
                if todo:
                    todo_groups.append((pkey, problem, todo))
        if not todo_groups:
            return 0
        grouped_values = self._price_misses_grouped(
            [(problem, todo) for _, problem, todo in todo_groups]
        )
        inserted = 0
        with self._lock:
            for (pkey, _, todo), miss_values in zip(todo_groups, grouped_values):
                for mapping, value in zip(todo, miss_values):
                    key = (pkey, mapping)
                    # Re-check: a concurrent evaluate() may have landed a
                    # full CostStats here while we computed; never downgrade
                    # it to a bare float (or touch its recency).
                    if key in self._store:
                        continue
                    self._insert(key, value)
                    inserted += 1
            self._prewarmed += inserted
        return inserted

    # ------------------------------------------------------------------
    # Introspection / management
    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._store),
                maxsize=self.maxsize,
                prewarmed=self._prewarmed,
            )

    def clear(self) -> None:
        """Drop all cached entries and reset the counters."""
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0
            self._prewarmed = 0

    def _insert(self, key, value) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        if self.maxsize is not None and len(self._store) > self.maxsize:
            self._store.popitem(last=False)


__all__ = [
    "CacheStats",
    "CachedOracle",
    "MissListener",
    "problem_fingerprint",
    "problem_key",
]
