"""Designer-defined optimization objectives (paper section 2.3).

The paper defines the cost function as the *designer's* choice — EDP in its
evaluation, but explicitly any weighted combination of measurable factors.
:class:`Objective` captures that contract: a named, monotone scalarization
of :class:`~repro.costmodel.CostStats` that any searcher can minimize.

Built-ins cover the common accelerator design points:

* ``edp``      — energy x delay (the paper's evaluation objective),
* ``ed2p``     — energy x delay^2 (throughput-leaning),
* ``energy``   — energy only (battery-bound edge),
* ``delay``    — latency only (real-time),
* ``edap``-style weighted sums via :func:`weighted_objective`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from repro.costmodel.stats import CostStats


@dataclass(frozen=True)
class Objective:
    """A named scalar cost over :class:`CostStats` (lower is better)."""

    name: str
    evaluate: Callable[[CostStats], float]

    def __call__(self, stats: CostStats) -> float:
        return self.evaluate(stats)


def _edp(stats: CostStats) -> float:
    return stats.edp


def _ed2p(stats: CostStats) -> float:
    return stats.energy_j * stats.delay_s**2


def _energy(stats: CostStats) -> float:
    return stats.energy_j


def _delay(stats: CostStats) -> float:
    return stats.delay_s


#: Built-in objectives by name.
OBJECTIVES: Dict[str, Objective] = {
    "edp": Objective("edp", _edp),
    "ed2p": Objective("ed2p", _ed2p),
    "energy": Objective("energy", _energy),
    "delay": Objective("delay", _delay),
}


def get_objective(name: str) -> Objective:
    """Look up a built-in objective by name."""
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise KeyError(
            f"unknown objective {name!r}; built-ins: {sorted(OBJECTIVES)}"
        ) from None


def weighted_objective(weights: Mapping[str, float], name: str = "weighted") -> Objective:
    """A weighted sum of built-in objectives (paper section 2.3's form).

    ``weights`` maps built-in objective names to non-negative weights, e.g.
    ``{"energy": 0.7, "delay": 0.3}``.  Each term is evaluated in its own
    units; callers choose weights accordingly (the paper's example: weight
    DRAM accesses by energy-per-access).
    """
    if not weights:
        raise ValueError("weights must be non-empty")
    resolved = []
    for key, weight in weights.items():
        if weight < 0:
            raise ValueError(f"weight for {key!r} must be non-negative, got {weight}")
        resolved.append((get_objective(key), float(weight)))

    def evaluate(stats: CostStats) -> float:
        return sum(weight * objective(stats) for objective, weight in resolved)

    return Objective(name=name, evaluate=evaluate)


__all__ = ["OBJECTIVES", "Objective", "get_objective", "weighted_objective"]
