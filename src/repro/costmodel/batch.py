"""Vectorized batched analytical cost model.

The scalar :class:`~repro.costmodel.model.CostModel` prices one mapping at a
time: it builds a :class:`~repro.costmodel.nest.LoopNest` of Python objects,
walks it per tensor for the Timeloop-style temporal-reuse products, and
assembles a :class:`~repro.costmodel.stats.CostStats`.  Every batched caller
— Phase 1 training-set generation, the ask/tell baselines' generation
scoring, :class:`~repro.costmodel.cache.CachedOracle` miss batches, harness
trace re-scoring — ultimately prices *populations* of mappings against one
``(problem, accelerator)`` pair, so this module amortizes the analysis
across the population instead:

1. :func:`compile_batch` lowers ``N`` mappings into stacked numpy arrays —
   per-level tile factors ``(N, D, 4)``, the concatenated temporal loop
   nest as aligned bound/dimension matrices ``(N, 3D)`` (outermost
   position first), per-level tile extents, and spatial sizes — with the
   same structural validation as ``CostModel._check_structure``.
2. :func:`evaluate_batch` runs the traffic/energy/cycles kernels over those
   arrays: fill/reuse products via masked cumulative products along the
   nest axis, footprints and multicast copies via gathers over the dim
   axis, then the exact scalar traffic formulas applied elementwise.

The result is a :class:`BatchCostStats` holding per-(mapping, tensor,
level) access counts and ``(N,)`` energy/cycles/utilization/EDP vectors —
enough to rebuild any row's full :class:`CostStats` (:meth:`BatchCostStats.
stats_at`) and to build the surrogate's meta-statistics targets without a
per-row Python loop (:meth:`BatchCostStats.meta_matrix`).

Semantics are *identical* to the scalar model, not approximated: the
bound-1 loop elision rule is reproduced by masking bound-1 loops out of
the relevance tests (they contribute a factor of 1 to every product, so
only their reuse-breaking effect must be suppressed), and every arithmetic
expression mirrors the scalar code's operation order.  The parity suite
(``tests/test_costmodel_batch.py``) holds scalar and batched EDP to a
relative tolerance of 1e-9 across every Table 1 workload on both
accelerator configurations; in practice agreement is at machine precision
for all realistic problem sizes (all intermediate reuse products stay
below 2**53 and stay exact in float64).

Cross-problem megabatching
--------------------------

:func:`compile_batch` requires every mapping to share one problem, so a
serving round over a diverse traffic mix degenerates to one kernel call
per distinct problem.  :func:`compile_megabatch` /
:func:`evaluate_megabatch` lift that restriction with the wide-with-masks
idiom: heterogeneous ``(mapping, problem)`` lanes are lowered into one
rectangular array set by padding the dimension axis to ``max(D)`` with
``(1, 1, 1, 1)`` tile factors and the nest axis to ``3 * max(D)`` with
bound-1 loops (inert by the same elision masking), while everything
per-problem — tensor relevance, sliding-window footprint axes, output
roles, ops per point — lives in per-problem tables gathered per lane
through ``problem_idx``.  The kernels then run *once* over the union,
vectorized over the tensor-slot axis as well, with invalid (padding)
slots masked to zero traffic.  Every lane's arithmetic is ordered exactly
as the homogeneous kernel orders it, and padding only ever multiplies by
1.0 or adds 0.0, so a lane's statistics are **bitwise identical** to
evaluating its problem's slice through :func:`evaluate_batch` — which is
what lets the serving layer union a whole round across all live problems
into a single kernel call without perturbing any response.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.accelerator import Accelerator, MEMORY_LEVELS
from repro.costmodel.stats import CostStats, TensorLevelEnergy
from repro.mapspace.mapping import Mapping
from repro.workloads.problem import Problem, TensorSpec

#: Tile-factor slot indices within a mapping's per-dimension factor tuple.
_DRAM, _L2, _SPATIAL, _L1 = 0, 1, 2, 3

#: Temporal levels in nest order (outermost first) with their factor slots.
_TEMPORAL_SLOTS: Tuple[Tuple[str, int], ...] = (("DRAM", _DRAM), ("L2", _L2), ("L1", _L1))

#: The temporal factor slots as an index vector, for vectorized gathers.
_LEVEL_SLOTS = np.asarray([slot for _, slot in _TEMPORAL_SLOTS], dtype=np.int64)


@dataclass(frozen=True)
class MappingBatch:
    """``N`` mappings over one problem, lowered to stacked arrays.

    Arrays are aligned with ``problem.dim_names`` on the dimension axis and
    with the mapping order on the batch axis.  ``nest_bounds`` /
    ``nest_dims`` describe the full concatenated temporal loop nest (DRAM
    loops, then L2, then L1 — each level in its mapping's loop order,
    outermost loop first): position ``p`` of row ``n`` is a loop over
    dimension index ``nest_dims[n, p]`` with bound ``nest_bounds[n, p]``.
    Bound-1 loops are *kept* in place (unlike the scalar
    :func:`~repro.costmodel.nest.build_nest`, which elides them): they
    multiply every product by 1, and the reuse kernels mask them out of
    relevance tests, which reproduces the elision semantics exactly while
    keeping the arrays rectangular.
    """

    problem: Problem
    tile_factors: np.ndarray  # (N, D, 4) int64
    nest_bounds: np.ndarray  # (N, 3D) float64, outermost position first
    nest_dims: np.ndarray  # (N, 3D) int64 dimension index per position
    spatial: np.ndarray  # (N,) float64 — PEs used per mapping

    def __len__(self) -> int:
        return self.tile_factors.shape[0]

    @property
    def n_dims(self) -> int:
        return self.tile_factors.shape[1]

    def level_extents(self, level: str) -> np.ndarray:
        """Per-dimension tile extents at ``level`` as an ``(N, D)`` array.

        Mirrors :meth:`repro.mapspace.mapping.Mapping.tile_extents`; the
        extra pseudo-level ``"union"`` is the union of all PEs' L1 tiles
        (L1 x spatial), the granularity L2 serves multicast reads at.
        """
        tf = self.tile_factors
        if level == "L1":
            return tf[:, :, _L1]
        if level == "union":
            return tf[:, :, _L1] * tf[:, :, _SPATIAL]
        if level == "L2":
            return tf[:, :, _L1] * tf[:, :, _SPATIAL] * tf[:, :, _L2]
        if level == "DRAM":
            return np.prod(tf, axis=2)
        raise KeyError(f"unknown level {level!r}")


def compile_batch(mappings: Sequence[Mapping], problem: Problem) -> MappingBatch:
    """Lower ``mappings`` into a :class:`MappingBatch` for ``problem``.

    Performs the scalar model's structural validation across the whole
    batch: every mapping's dims must match the problem's and every
    dimension's factors must multiply to its bound.  Raises ``ValueError``
    naming the first offender, like ``CostModel.evaluate`` does.
    """
    dims = problem.dim_names
    dim_index = {dim: i for i, dim in enumerate(dims)}
    n = len(mappings)
    n_dims = len(dims)

    for mapping in mappings:
        if mapping.dims != dims:
            raise ValueError(
                f"mapping dims {mapping.dims} do not match problem dims {dims}"
            )
    tile_factors = np.asarray(
        [mapping.tile_factors for mapping in mappings], dtype=np.int64
    ).reshape(n, n_dims, 4)
    order_index = np.asarray(
        [
            [[dim_index[dim] for dim in order] for order in mapping.loop_orders]
            for mapping in mappings
        ],
        dtype=np.int64,
    ).reshape(n, 3, n_dims)

    if n:
        implied = np.prod(tile_factors, axis=2)  # (N, D)
        bounds = np.asarray([d.bound for d in problem.dims], dtype=np.int64)
        bad = np.argwhere(implied != bounds[None, :])
        if bad.size:
            row, col = bad[0]
            raise ValueError(
                f"mapping factors of {dims[col]} multiply to {implied[row, col]}, "
                f"problem bound is {bounds[col]}"
            )

    # Concatenated temporal nest: per level, gather that level's factor slot
    # through the level's loop order, then stack levels outermost first.
    per_level = [
        np.take_along_axis(tile_factors[:, :, slot], order_index[:, l, :], axis=1)
        for l, (_, slot) in enumerate(_TEMPORAL_SLOTS)
    ]
    nest_bounds = np.concatenate(per_level, axis=1).astype(np.float64)
    nest_dims = np.concatenate([order_index[:, l, :] for l in range(3)], axis=1)
    spatial = np.prod(tile_factors[:, :, _SPATIAL], axis=1).astype(np.float64)
    return MappingBatch(
        problem=problem,
        tile_factors=tile_factors,
        nest_bounds=nest_bounds,
        nest_dims=nest_dims,
        spatial=spatial,
    )


class _AggregateStats:
    """Shared derived views over stacked access/energy arrays.

    Mixed into :class:`BatchCostStats` and :class:`MegaBatchCostStats`,
    which both carry ``accesses`` / ``access_energy_pj`` / ``noc_words`` /
    ``cycles`` arrays plus a ``mac_energy_pj`` (scalar for a homogeneous
    batch, per-lane vector for a megabatch — the formulas broadcast).  All
    reductions use explicit axes so zero-row batches stay well-formed:
    every derived property of an empty batch is ``(0,)``-shaped.
    """

    def __len__(self) -> int:
        return self.accesses.shape[0]

    @property
    def energies_pj(self) -> np.ndarray:
        """Per-(mapping, tensor, level) energy: ``accesses * access cost``."""
        return self.accesses * self.access_energy_pj[None, None, :]

    @property
    def memory_energy_pj(self) -> np.ndarray:
        return self.energies_pj.sum(axis=(1, 2))

    @property
    def noc_energy_pj(self) -> np.ndarray:
        return self.noc_words * self.noc_hop_pj

    @property
    def total_energy_pj(self) -> np.ndarray:
        return self.memory_energy_pj + self.noc_energy_pj + self.mac_energy_pj

    @property
    def energy_j(self) -> np.ndarray:
        return self.total_energy_pj * 1e-12

    @property
    def delay_s(self) -> np.ndarray:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def edp(self) -> np.ndarray:
        """Energy-delay products in joule-seconds, shape ``(N,)``."""
        return self.energy_j * self.delay_s

    def _check_index(self, index: int) -> None:
        """``stats_at`` contract: plain bounds, no negative wrap-around.

        Numpy's negative indexing would silently serve ``stats_at(-1)``
        from the last row while ``stats_at(N)`` raises — an out-of-contract
        index must never return a valid-looking row.
        """
        if not 0 <= index < len(self):
            raise IndexError(
                f"batch index {index} out of range for {len(self)} rows"
            )


@dataclass(frozen=True)
class BatchCostStats(_AggregateStats):
    """Vectorized evaluation result for ``N`` mappings of one problem.

    The batched analogue of :class:`~repro.costmodel.stats.CostStats`:
    ``accesses[n, t, l]`` is the word-access count of mapping ``n`` for the
    problem's ``t``-th tensor at memory level ``l`` (``MEMORY_LEVELS``
    order), and the remaining fields are ``(N,)`` vectors or constants
    shared by the whole batch.  Aggregates (energy, EDP) are derived
    properties, mirroring the scalar formulas elementwise.
    """

    problem_name: str
    tensor_names: Tuple[str, ...]
    accesses: np.ndarray  # (N, T, L) word accesses
    access_energy_pj: np.ndarray  # (L,) per-word access energy
    noc_words: np.ndarray  # (N,)
    noc_hop_pj: float
    mac_energy_pj: float  # identical across the batch (same problem)
    cycles: np.ndarray  # (N,)
    utilization: np.ndarray  # (N,)
    spatial_pes: np.ndarray  # (N,) int64
    clock_ghz: float = 1.0

    # ---- interop ---------------------------------------------------------

    def stats_at(self, index: int) -> CostStats:
        """Rebuild the full scalar :class:`CostStats` for one batch row.

        Raises ``IndexError`` unless ``0 <= index < len(self)``.
        """
        self._check_index(index)
        energies = self.energies_pj[index]
        records = tuple(
            TensorLevelEnergy(
                tensor=tensor,
                level=level,
                accesses=float(self.accesses[index, t, l]),
                energy_pj=float(energies[t, l]),
            )
            for t, tensor in enumerate(self.tensor_names)
            for l, level in enumerate(MEMORY_LEVELS)
        )
        return CostStats(
            problem_name=self.problem_name,
            records=records,
            noc_energy_pj=float(self.noc_energy_pj[index]),
            mac_energy_pj=float(self.mac_energy_pj),
            cycles=float(self.cycles[index]),
            utilization=float(self.utilization[index]),
            spatial_pes=int(self.spatial_pes[index]),
            clock_ghz=self.clock_ghz,
        )

    def meta_matrix(self, tensor_order: Sequence[str]) -> np.ndarray:
        """Stacked meta-statistics vectors, shape ``(N, 3T + 3)``.

        Row ``n`` equals ``stats_at(n).meta_vector(tensor_order)``: per-level
        energies for each tensor in ``tensor_order``, then total energy,
        utilization, cycles — the surrogate's training-target layout
        (:meth:`repro.costmodel.stats.CostStats.meta_vector`), built with
        column arithmetic instead of N Python calls.
        """
        name_to_index = {name: t for t, name in enumerate(self.tensor_names)}
        try:
            order = [name_to_index[name] for name in tensor_order]
        except KeyError as error:
            raise KeyError(
                f"tensor {error.args[0]!r} not in batch tensors {self.tensor_names}"
            ) from None
        energies = self.energies_pj[:, order, :]  # (N, T, L) reordered
        out = np.empty((len(self), 3 * len(order) + 3), dtype=np.float64)
        # Explicit column count: reshape(N, -1) cannot infer a width from a
        # zero-row array, and empty batches must stay well-formed.
        out[:, : 3 * len(order)] = energies.reshape(len(self), 3 * len(order))
        out[:, -3] = self.total_energy_pj
        out[:, -2] = self.utilization
        out[:, -1] = self.cycles
        return out


# ----------------------------------------------------------------------
# Reuse kernels
# ----------------------------------------------------------------------


def _fill_events(
    cumprod: np.ndarray, relevant: np.ndarray, prefix: int
) -> np.ndarray:
    """Vectorized :func:`repro.costmodel.nest.fill_events` over a batch.

    ``cumprod[n, p]`` is the running product of nest bounds through
    position ``p``; ``relevant[n, p]`` marks loops that both iterate
    (bound > 1) and touch the tensor.  The fill count is the cumulative
    product at the *last* relevant position — and because bounds are >= 1
    the cumulative product is non-decreasing along the nest, so that value
    is simply the masked maximum (1.0 when no loop above is relevant).
    """
    if prefix == 0:
        return np.ones(cumprod.shape[0], dtype=np.float64)
    masked = np.where(relevant[:, :prefix], cumprod[:, :prefix], 1.0)
    return masked.max(axis=1)


def _distinct_tiles(
    bounds: np.ndarray, relevant: np.ndarray, prefix: int
) -> np.ndarray:
    """Vectorized :func:`repro.costmodel.nest.distinct_tiles` over a batch:
    the product of relevant loop bounds above the storage level."""
    if prefix == 0:
        return np.ones(bounds.shape[0], dtype=np.float64)
    return np.where(relevant[:, :prefix], bounds[:, :prefix], 1.0).prod(axis=1)


def _footprints(
    tensor: TensorSpec, extents: np.ndarray, dim_index: Dict[str, int]
) -> np.ndarray:
    """Vectorized :meth:`TensorSpec.footprint` over ``(N, D)`` extents.

    Sliding-window axes like ``(X, R)`` add their extents and subtract the
    overlap (``x + r - 1`` positions), exactly as the scalar rule.
    """
    total = np.ones(extents.shape[0], dtype=np.float64)
    for axis in tensor.axes:
        span = np.full(extents.shape[0], -(len(axis) - 1), dtype=np.int64)
        for dim in axis:
            span = span + extents[:, dim_index[dim]]
        total = total * np.maximum(span, 1)
    return total


# ----------------------------------------------------------------------
# The batched kernels
# ----------------------------------------------------------------------


def evaluate_batch(
    accelerator: Accelerator, mappings: Sequence[Mapping], problem: Problem
) -> BatchCostStats:
    """Price ``mappings`` against ``problem`` in one vectorized pass.

    Produces per-tensor/per-level traffic, NoC words, cycles, utilization
    — everything the scalar :meth:`CostModel.evaluate` computes — as
    stacked arrays, with semantics identical to evaluating each mapping
    independently (see the parity suite).
    """
    batch = compile_batch(mappings, problem)
    return evaluate_compiled(accelerator, batch)


def evaluate_compiled(accelerator: Accelerator, batch: MappingBatch) -> BatchCostStats:
    """The traffic/energy/cycles kernels over an already-compiled batch."""
    problem = batch.problem
    n = len(batch)
    n_dims = batch.n_dims
    dims = problem.dim_names
    dim_index = {dim: i for i, dim in enumerate(dims)}
    tensors = problem.tensors
    n_tensors = len(tensors)

    bounds = batch.nest_bounds  # (N, 3D)
    cumprod = np.cumprod(bounds, axis=1) if n else bounds
    iterating = bounds > 1.0  # bound-1 loops are transparent to reuse
    spatial = batch.spatial
    spatial_factors = batch.tile_factors[:, :, _SPATIAL]  # (N, D)

    l1_extents = batch.level_extents("L1")
    union_extents = batch.level_extents("union")
    l2_extents = batch.level_extents("L2")

    #: Loops strictly outside each storage level, as nest-position prefixes:
    #: DRAM loops only (above L2), DRAM+L2 (above L1), all (above REG).
    above_l2, above_l1, above_reg = n_dims, 2 * n_dims, 3 * n_dims

    accesses = np.empty((n, n_tensors, len(MEMORY_LEVELS)), dtype=np.float64)
    noc_words = np.zeros(n, dtype=np.float64)
    for t, tensor in enumerate(tensors):
        relevant_dims = np.zeros(n_dims, dtype=bool)
        for dim in tensor.dims:
            relevant_dims[dim_index[dim]] = True
        relevant = relevant_dims[batch.nest_dims] & iterating  # (N, 3D)

        fp_l2 = _footprints(tensor, l2_extents, dim_index)
        fp_union = _footprints(tensor, union_extents, dim_index)

        if tensor.is_output:
            fp_l1 = _footprints(tensor, l1_extents, dim_index)
            installs = _fill_events(cumprod, relevant, above_l2)
            distinct = _distinct_tiles(bounds, relevant, above_l2)
            spills = installs - distinct
            dram_words = distinct * fp_l2 + 2.0 * spills * fp_l2

            installs_l1 = _fill_events(cumprod, relevant, above_l1)
            distinct_l1 = _distinct_tiles(bounds, relevant, above_l1)
            spills_l1 = installs_l1 - distinct_l1
            drains = installs_l1 * fp_union
            restores = spills_l1 * fp_union
            l2_words = dram_words + drains + restores

            reg_updates = _fill_events(cumprod, relevant, above_reg)
            l1_words = (
                2.0 * reg_updates * spatial
                + (installs_l1 + spills_l1) * fp_l1 * spatial
            )
            noc_words += (installs_l1 + spills_l1) * fp_l1 * spatial
            accesses[:, t, 0] = dram_words
            accesses[:, t, 1] = l2_words
            accesses[:, t, 2] = l1_words
        else:
            fills_l2 = _fill_events(cumprod, relevant, above_l2)
            dram_reads = fills_l2 * fp_l2

            fills_l1 = _fill_events(cumprod, relevant, above_l1)
            l2_reads = fills_l1 * fp_union  # multicast: unique words read once
            copies = np.where(relevant_dims[None, :], 1, spatial_factors).prod(axis=1)
            deliveries = fills_l1 * fp_union * copies

            reg_fills = _fill_events(cumprod, relevant, above_reg)
            l1_reads = reg_fills * spatial

            noc_words += deliveries
            accesses[:, t, 0] = dram_reads
            accesses[:, t, 1] = dram_reads + l2_reads  # fill writes + drains
            accesses[:, t, 2] = deliveries + l1_reads  # fills + compute reads

    # ---- cycles (max of compute-bound and bandwidth-bound counts) --------
    temporal_points = cumprod[:, -1] if n else np.ones(0)
    compute_cycles = temporal_points * problem.ops_per_point
    level_words = accesses.sum(axis=1)  # (N, L) summed over tensors
    dram_cycles = level_words[:, 0] / accelerator.bandwidth("DRAM")
    l2_cycles = level_words[:, 1] / accelerator.bandwidth("L2")
    per_pe_l1 = level_words[:, 2] / np.maximum(spatial, 1.0)
    l1_cycles = per_pe_l1 / accelerator.bandwidth("L1")
    cycles = np.maximum.reduce(
        [compute_cycles, dram_cycles, l2_cycles, l1_cycles, np.ones(n)]
    )
    ideal = problem.total_ops / accelerator.num_pes
    utilization = np.minimum(ideal / cycles, 1.0) if n else np.ones(0)

    access_energy = np.asarray(
        [accelerator.energy.access(level) for level in MEMORY_LEVELS],
        dtype=np.float64,
    )
    return BatchCostStats(
        problem_name=problem.name,
        tensor_names=tuple(tensor.name for tensor in tensors),
        accesses=accesses,
        access_energy_pj=access_energy,
        noc_words=noc_words,
        noc_hop_pj=accelerator.energy.noc_hop,
        mac_energy_pj=problem.total_ops * accelerator.energy.mac,
        cycles=cycles,
        utilization=utilization,
        spatial_pes=spatial.astype(np.int64),
        clock_ghz=accelerator.clock_ghz,
    )


def edp_batch(
    accelerator: Accelerator, mappings: Sequence[Mapping], problem: Problem
) -> np.ndarray:
    """``(N,)`` EDP vector — the batched form of ``CostModel.evaluate_edp``."""
    if not len(mappings):
        return np.empty(0, dtype=np.float64)
    return evaluate_batch(accelerator, mappings, problem).edp


# ----------------------------------------------------------------------
# Cross-problem megabatching
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ProblemTables:
    """Per-problem static lowering tables, shared by every lane of a problem.

    Everything the megabatch kernels need to know about a problem, in that
    problem's *own* sizes (``D`` dims, ``T`` tensors, ``A`` footprint axes):
    tensor relevance and output-role masks over the dim axis, and the
    sliding-window footprint axes as a linear *selection tensor*
    ``sel[t, a, :]`` — column ``d < D`` counts how many times dim ``d`` is a
    member of axis ``a`` and column ``D`` holds the scalar
    ``-(len(axis) - 1)`` overlap term, so an axis span is one dot product
    with the per-lane extents (augmented with a constant-1 column).  Sums
    of integer extents are exact in any order, which keeps the dot-product
    form bitwise identical to the scalar member-by-member sum.

    ``order_cache[padded_width]`` memoizes ``loop_orders`` keys to small
    integer *codes* into ``order_rows[padded_width]``, a growing list of
    flat dim-index rows already padded to the union's nest width;
    ``order_matrices`` caches each width's rows as one stacked matrix so a
    steady-state compile lowers orders with a single fancy-index gather
    instead of re-converting Python ints.  ``order_memo[padded_width]``
    fronts the equality cache with an identity map — re-evaluating a
    mapping (replay, prewarm hits priced again) re-presents the *same*
    ``loop_orders`` tuple object, whose code is then found by one int-key
    lookup instead of re-hashing a nested tuple of strings.  Entries pin
    the keyed tuple, so a memoized id can never be recycled to a different
    object.  Servers see the same orders over and over, and bounded caches
    keep a long-lived process from growing them without limit.
    """

    dim_index: Dict[str, int]
    bounds: np.ndarray  # (D,) int64 problem dimension bounds
    is_output: np.ndarray  # (T,) bool
    relevant: np.ndarray  # (T, D) bool
    sel: np.ndarray  # (T, A, D + 1) int64 axis-span selection tensor
    ops_per_point: float
    total_ops: float
    order_cache: Dict[int, Dict[Hashable, int]]
    order_rows: Dict[int, List[List[int]]]
    order_matrices: Dict[int, Tuple[int, np.ndarray]]
    order_memo: Dict[int, Dict[int, Tuple[Hashable, int]]]

    @property
    def n_dims(self) -> int:
        return self.bounds.shape[0]

    @property
    def n_tensors(self) -> int:
        return self.is_output.shape[0]

    def order_matrix(self, width: int) -> np.ndarray:
        """The stacked ``(n_rows, width)`` order-row matrix for ``width``.

        Rebuilt only when new rows were memoized since the last call; the
        steady state (serving the same orders repeatedly) is a dict hit.
        """
        rows = self.order_rows[width]
        cached = self.order_matrices.get(width)
        if cached is None or cached[0] != len(rows):
            cached = (len(rows), np.asarray(rows, dtype=np.int64))
            self.order_matrices[width] = cached
        return cached[1]


#: Memoized per-problem tables.  Keyed by the same identity the oracle
#: cache uses; values are immutable once built, so a benign double-build
#: race just produces an equal value (``setdefault`` keeps one winner).
_PROBLEM_TABLES: Dict[Hashable, _ProblemTables] = {}

#: Bound on each problem's loop-order memo; beyond this, rows are computed
#: without being stored (searchers can emit unboundedly many orders).
_ORDER_CACHE_LIMIT = 4096


def _problem_tables(problem: Problem, key: Hashable = None) -> _ProblemTables:
    if key is None:
        from repro.costmodel.cache import problem_key  # deferred: avoids cycle risk

        key = problem_key(problem)
    tables = _PROBLEM_TABLES.get(key)
    if tables is not None:
        return tables
    dims = problem.dim_names
    dim_index = {dim: i for i, dim in enumerate(dims)}
    tensors = problem.tensors
    n_dims = len(dims)
    n_tensors = len(tensors)
    n_axes = max((len(tensor.axes) for tensor in tensors), default=0)
    is_output = np.zeros(n_tensors, dtype=bool)
    relevant = np.zeros((n_tensors, n_dims), dtype=bool)
    sel = np.zeros((n_tensors, n_axes, n_dims + 1), dtype=np.int64)
    for t, tensor in enumerate(tensors):
        is_output[t] = tensor.is_output
        for dim in tensor.dims:
            relevant[t, dim_index[dim]] = True
        for a, axis in enumerate(tensor.axes):
            sel[t, a, n_dims] = -(len(axis) - 1)
            for dim in axis:
                sel[t, a, dim_index[dim]] += 1
    tables = _ProblemTables(
        dim_index=dim_index,
        bounds=np.asarray([d.bound for d in problem.dims], dtype=np.int64),
        is_output=is_output,
        relevant=relevant,
        sel=sel,
        ops_per_point=float(problem.ops_per_point),
        total_ops=float(problem.total_ops),
        order_cache={},
        order_rows={},
        order_matrices={},
        order_memo={},
    )
    return _PROBLEM_TABLES.setdefault(key, tables)


@dataclass(frozen=True)
class _SlotBlock:
    """Per-problem tables of one problem *set*, stacked and padded once.

    Everything in a :class:`MegaBatch` that depends only on which problems
    are in the union (not on the mappings): slot tables padded to the
    union's ``max(T)``/``max(D)``/``max(A)``/``max(M)`` and the padded
    dimension bounds used for factor validation.  Serving rounds reuse the
    same live problem set over and over, so these are memoized by the
    ordered tuple of problem keys.
    """

    n_dims: int  # Dmax over the set
    valid: np.ndarray  # (P, Tmax) bool
    is_output: np.ndarray  # (P, Tmax) bool
    relevant: np.ndarray  # (P, Tmax, Dmax) bool
    sel: np.ndarray  # (P, Tmax, Amax, Dmax + 1) float64, zero-padded
    bounds: np.ndarray  # (P, Dmax) int64, padded dims bound 1
    ops_per_point: np.ndarray  # (P,) float64
    total_ops: np.ndarray  # (P,) float64


#: Memoized slot blocks per ordered problem-set key (bounded; unseen sets
#: beyond the limit are built per call without being stored).
_SLOT_BLOCKS: Dict[Tuple[Hashable, ...], _SlotBlock] = {}
_SLOT_BLOCK_LIMIT = 128


def _slot_block(
    keys: Tuple[Hashable, ...], tables: Sequence[_ProblemTables]
) -> _SlotBlock:
    block = _SLOT_BLOCKS.get(keys)
    if block is not None:
        return block
    n_problems = len(tables)
    max_dims = max((t.n_dims for t in tables), default=0)
    max_slots = max((t.n_tensors for t in tables), default=0)
    max_axes = max((t.sel.shape[1] for t in tables), default=0)
    valid = np.zeros((n_problems, max_slots), dtype=bool)
    is_output = np.zeros((n_problems, max_slots), dtype=bool)
    relevant = np.zeros((n_problems, max_slots, max_dims), dtype=bool)
    # float64 so the footprint matmul needs no per-call cast; the counts
    # are small integers, exactly representable.
    sel = np.zeros((n_problems, max_slots, max_axes, max_dims + 1))
    bounds = np.ones((n_problems, max_dims), dtype=np.int64)
    ops_per_point = np.empty(n_problems, dtype=np.float64)
    total_ops = np.empty(n_problems, dtype=np.float64)
    for g, tab in enumerate(tables):
        t, d = tab.n_tensors, tab.n_dims
        a = tab.sel.shape[1]
        valid[g, :t] = True
        is_output[g, :t] = tab.is_output
        relevant[g, :t, :d] = tab.relevant
        # Dim-count columns keep their positions; the constant (overlap)
        # column moves to the padded constant slot.  Zero rows for padding
        # axes/slots give span 0, clamped to a multiplicative-identity 1.
        sel[g, :t, :a, :d] = tab.sel[:, :, :d]
        sel[g, :t, :a, max_dims] = tab.sel[:, :, d]
        bounds[g, :d] = tab.bounds
        ops_per_point[g] = tab.ops_per_point
        total_ops[g] = tab.total_ops
    block = _SlotBlock(
        n_dims=max_dims,
        valid=valid,
        is_output=is_output,
        relevant=relevant,
        sel=sel,
        bounds=bounds,
        ops_per_point=ops_per_point,
        total_ops=total_ops,
    )
    if len(_SLOT_BLOCKS) < _SLOT_BLOCK_LIMIT:
        return _SLOT_BLOCKS.setdefault(keys, block)
    return block


@dataclass(frozen=True)
class MegaBatch:
    """``N`` heterogeneous (mapping, problem) lanes as one rectangular set.

    The cross-problem analogue of :class:`MappingBatch`: the dim axis is
    padded to the union's ``max(D)`` with ``(1, 1, 1, 1)`` tile factors and
    the nest axis to ``3 * max(D)`` with bound-1 loops at the end of each
    level segment (semantically inert — the kernels mask bound-1 loops out
    of every relevance test, and they multiply every product by 1).
    Per-problem tensor tables are padded to the union's ``max(T)`` slots in
    each problem's *own tensor order* (``slot_valid`` masks the padding
    slots), which keeps every per-lane reduction ordered exactly as the
    homogeneous kernel orders it — megabatched statistics are bitwise
    identical to :func:`evaluate_batch` of the same lanes.

    Rows are stored *group-major* (all of problem 0's lanes, then problem
    1's, ...; within a group, input order) so per-problem lowering needs no
    scatter; ``lane_index[row]`` is the input lane a row came from, and the
    kernel restores input-lane order in the stats it returns.  Row ``r``
    belongs to ``problems[problem_idx[r]]``.
    """

    problems: Tuple[Problem, ...]  # distinct problems, first-appearance order
    problem_idx: np.ndarray  # (N,) int64 row -> problems index, group-major
    lane_index: np.ndarray  # (N,) int64 row -> input lane (a permutation)
    tile_factors: np.ndarray  # (N, Dmax, 4) int64, padded dims all-1
    nest_bounds: np.ndarray  # (N, 3*Dmax) float64, outermost first
    nest_dims: np.ndarray  # (N, 3*Dmax) int64
    spatial: np.ndarray  # (N,) float64
    slot_valid: np.ndarray  # (P, Tmax) bool
    slot_is_output: np.ndarray  # (P, Tmax) bool
    slot_relevant: np.ndarray  # (P, Tmax, Dmax) bool
    slot_sel: np.ndarray  # (P, Tmax, Amax, Dmax + 1) float64 span selectors
    ops_per_point: np.ndarray  # (P,) float64
    total_ops: np.ndarray  # (P,) float64

    def __len__(self) -> int:
        return self.tile_factors.shape[0]

    @property
    def n_dims(self) -> int:
        """The union's padded dimension count, ``max(D)`` over problems."""
        return self.tile_factors.shape[1]

    @property
    def n_slots(self) -> int:
        """The union's padded tensor-slot count, ``max(T)`` over problems."""
        return self.slot_valid.shape[1]

    def level_extents(self, level: str) -> np.ndarray:
        """Per-dimension tile extents at ``level``, ``(N, Dmax)`` (padding
        dims have extent 1 at every level)."""
        tf = self.tile_factors
        if level == "L1":
            return tf[:, :, _L1]
        if level == "union":
            return tf[:, :, _L1] * tf[:, :, _SPATIAL]
        if level == "L2":
            return tf[:, :, _L1] * tf[:, :, _SPATIAL] * tf[:, :, _L2]
        if level == "DRAM":
            return np.prod(tf, axis=2)
        raise KeyError(f"unknown level {level!r}")


def compile_megabatch(
    mappings: Sequence[Mapping], problems: Sequence[Problem]
) -> MegaBatch:
    """Lower aligned ``(mappings[i], problems[i])`` lanes into a :class:`MegaBatch`.

    ``problems`` may repeat freely (a serving round lists each lane's
    problem); distinct problems are deduplicated by cost identity
    (:func:`~repro.costmodel.cache.problem_key`) in first-appearance order.
    Validation matches :func:`compile_batch` per lane: mismatched dims or
    factor products raise ``ValueError`` naming the first offender.
    """
    from repro.costmodel.cache import problem_key

    mappings = list(mappings)
    problems = list(problems)
    if len(mappings) != len(problems):
        raise ValueError(
            f"megabatch lanes misaligned: {len(mappings)} mappings vs "
            f"{len(problems)} problems"
        )
    n = len(mappings)

    # Dedup lanes into distinct problems.  Serving rounds repeat the same
    # Problem *objects* lane after lane, so an identity memo short-circuits
    # the structural key for all but the first lane of each object; equal
    # problems behind different objects still merge through the key.
    distinct: List[Problem] = []
    keys: List[Hashable] = []
    group_of: Dict[Hashable, int] = {}
    group_by_id: Dict[int, int] = {}
    lane_groups: List[List[int]] = []
    prev: Optional[Problem] = None
    prev_group = -1
    for i, problem in enumerate(problems):
        if problem is prev:  # serving rounds come in per-problem runs
            lane_groups[prev_group].append(i)
            continue
        g = group_by_id.get(id(problem))
        if g is None:
            key = problem_key(problem)
            g = group_of.get(key)
            if g is None:
                g = len(distinct)
                group_of[key] = g
                keys.append(key)
                distinct.append(problem)
                lane_groups.append([])
            group_by_id[id(problem)] = g
        prev = problem
        prev_group = g
        lane_groups[g].append(i)

    tables = [
        _problem_tables(problem, key) for problem, key in zip(distinct, keys)
    ]
    block = _slot_block(tuple(keys), tables)
    max_dims = block.n_dims

    # Group-major rows: lower each problem's lanes contiguously.  Tile rows
    # land in a ones-filled (N, Dmax, 4) array (padding dims keep factor 1
    # at every level) via each mapping's cached ``factor_array``; memoized
    # order rows are stored already padded (padding positions name the
    # problem's first padding dim, whose factors are all 1, so the
    # nest-bound gather below reads bound 1 for them without a second
    # pass).
    lane_index = np.asarray(
        [i for group in lane_groups for i in group], dtype=np.int64
    )
    problem_idx = np.repeat(
        np.arange(len(distinct), dtype=np.int64),
        [len(group) for group in lane_groups],
    )
    width = 3 * max_dims
    tile_factors = np.ones((n, max_dims, 4), dtype=np.int64)
    overflow_rows: List[List[int]] = []
    nest_dims = np.empty((n, width), dtype=np.int64)
    row_start = 0
    for g, (problem, tab) in enumerate(zip(distinct, tables)):
        dims = problem.dim_names
        d = tab.n_dims
        pad_order = [d] * (max_dims - d)
        dim_index = tab.dim_index
        cache = tab.order_cache.setdefault(max_dims, {})
        memo = tab.order_memo.setdefault(max_dims, {})
        rows = tab.order_rows.setdefault(max_dims, [])
        tile_rows: List[np.ndarray] = []
        codes: List[int] = []
        for i in lane_groups[g]:
            mapping = mappings[i]
            if mapping.dims != dims:
                raise ValueError(
                    f"mapping dims {mapping.dims} do not match problem dims {dims}"
                )
            tile_rows.append(mapping.factor_array)
            orders = mapping.loop_orders
            entry = memo.get(id(orders))
            if entry is not None and entry[0] is orders:
                codes.append(entry[1])
                continue
            code = cache.get(orders)
            if code is None:
                row: List[int] = []
                for order in orders:
                    row.extend(dim_index[dim] for dim in order)
                    row.extend(pad_order)
                if len(cache) < _ORDER_CACHE_LIMIT:
                    code = len(rows)
                    rows.append(row)
                    cache[orders] = code
                else:  # memo full: lower this lane without storing the row
                    code = -1 - len(overflow_rows)
                    overflow_rows.append(row)
            if code >= 0 and len(memo) < _ORDER_CACHE_LIMIT:
                memo[id(orders)] = (orders, code)
            codes.append(code)
        row_end = row_start + len(codes)
        tile_factors[row_start:row_end, :d, :] = np.concatenate(tile_rows).reshape(
            len(tile_rows), d, 4
        )
        code_arr = np.fromiter(codes, dtype=np.int64, count=len(codes))
        if overflow_rows:
            cached_mask = code_arr >= 0
            group_nest = np.empty((len(codes), width), dtype=np.int64)
            if cached_mask.any():
                group_nest[cached_mask] = tab.order_matrix(max_dims)[
                    code_arr[cached_mask]
                ]
            group_nest[~cached_mask] = np.asarray(
                [overflow_rows[-1 - c] for c in codes if c < 0], dtype=np.int64
            )
            nest_dims[row_start:row_end] = group_nest
            overflow_rows.clear()
        else:
            nest_dims[row_start:row_end] = tab.order_matrix(max_dims)[code_arr]
        row_start = row_end

    if n:
        implied = tile_factors.prod(axis=2)  # (N, Dmax)
        expected = block.bounds[problem_idx]
        mismatch = implied != expected
        if mismatch.any():
            bad = np.argwhere(mismatch)
            first = bad[np.argsort(lane_index[bad[:, 0]], kind="stable")[0]]
            row_i, col = int(first[0]), int(first[1])
            dims = distinct[int(problem_idx[row_i])].dim_names
            raise ValueError(
                f"mapping factors of {dims[col]} multiply to {implied[row_i, col]}, "
                f"problem bound is {expected[row_i, col]}"
            )

    # One flat gather builds the concatenated temporal nest: level ``l`` of
    # row ``r`` reads factor slot ``_TEMPORAL_SLOTS[l]`` through that
    # level's loop order (padding positions read a padding dim, factor 1).
    slot_offsets = np.repeat(_LEVEL_SLOTS, max_dims)[None, :]
    flat = nest_dims * 4 + slot_offsets + (np.arange(n) * (max_dims * 4))[:, None]
    nest_bounds = tile_factors.ravel().take(flat).astype(np.float64)
    spatial = tile_factors[:, :, _SPATIAL].prod(axis=1).astype(np.float64)

    return MegaBatch(
        problems=tuple(distinct),
        problem_idx=problem_idx,
        lane_index=lane_index,
        tile_factors=tile_factors,
        nest_bounds=nest_bounds,
        nest_dims=nest_dims,
        spatial=spatial,
        slot_valid=block.valid,
        slot_is_output=block.is_output,
        slot_relevant=block.relevant,
        slot_sel=block.sel,
        ops_per_point=block.ops_per_point,
        total_ops=block.total_ops,
    )


@dataclass(frozen=True)
class MegaBatchCostStats:
    """Vectorized evaluation result for heterogeneous (mapping, problem) lanes.

    Same layout as :class:`BatchCostStats` with a problem axis folded in:
    ``accesses[n, t, l]`` is lane ``n``'s word-access count for its
    problem's ``t``-th tensor (the problem's own tensor order; slots past
    the lane's tensor count are zero), and per-problem constants are
    gathered per lane through ``problem_idx``.  ``problem_slice`` carves
    one problem's lanes back out as a genuine :class:`BatchCostStats` —
    bitwise identical to evaluating those lanes homogeneously.

    Storage is *group-major* (``row_*`` fields, all of one problem's lanes
    contiguous, matching the compiled :class:`MegaBatch` rows); the public
    per-lane views (``accesses``, ``cycles``, ``edp``, ...) permute rows
    back to input-lane order on first use and are cached.  Row values are
    row-exact, so the permutation is pure reordering — it cannot perturb
    any value — while the hot consumers (``problem_slice`` for per-problem
    lowering, ``edp`` for pricing) stay one contiguous slice or one final
    ``(N,)`` permutation instead of an eager full scatter.
    """

    problems: Tuple[Problem, ...]
    lane_index: np.ndarray  # (N,) int64 row -> input lane (a permutation)
    row_problem_idx: np.ndarray  # (N,) int64, group-major (nondecreasing)
    row_accesses: np.ndarray  # (N, Tmax, L), zero-padded slots
    access_energy_pj: np.ndarray  # (L,)
    row_noc_words: np.ndarray  # (N,)
    noc_hop_pj: float
    mac_by_problem: np.ndarray  # (P,) per-problem MAC energy in pJ
    row_cycles: np.ndarray  # (N,)
    row_utilization: np.ndarray  # (N,)
    row_spatial_pes: np.ndarray  # (N,) int64
    clock_ghz: float = 1.0

    def __len__(self) -> int:
        return self.row_accesses.shape[0]

    def _lanes(self, rows: np.ndarray) -> np.ndarray:
        """Permute group-major ``rows`` back to input-lane order."""
        out = np.empty_like(rows)
        out[self.lane_index] = rows
        return out

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self):
            raise IndexError(
                f"batch index {index} out of range for {len(self)} rows"
            )

    @cached_property
    def _row_of_lane(self) -> np.ndarray:
        """Inverse permutation: input lane -> group-major row."""
        rows = np.empty(len(self), dtype=np.int64)
        rows[self.lane_index] = np.arange(len(self), dtype=np.int64)
        return rows

    # -- public per-lane views (cached, input-lane order) ------------------

    @cached_property
    def problem_idx(self) -> np.ndarray:
        """Lane ``n``'s index into :attr:`problems`, ``(N,)``."""
        return self._lanes(self.row_problem_idx)

    @cached_property
    def accesses(self) -> np.ndarray:
        return self._lanes(self.row_accesses)

    @cached_property
    def noc_words(self) -> np.ndarray:
        return self._lanes(self.row_noc_words)

    @cached_property
    def cycles(self) -> np.ndarray:
        return self._lanes(self.row_cycles)

    @cached_property
    def utilization(self) -> np.ndarray:
        return self._lanes(self.row_utilization)

    @cached_property
    def spatial_pes(self) -> np.ndarray:
        return self._lanes(self.row_spatial_pes)

    @cached_property
    def mac_energy_pj(self) -> np.ndarray:
        """Per-lane MAC energy, gathered from the lane's problem, ``(N,)``."""
        return self.mac_by_problem[self.problem_idx]

    # -- aggregates (same formulas/operation order as _AggregateStats, -----
    # -- computed row-major and permuted at the end) -----------------------

    @cached_property
    def _row_energies_pj(self) -> np.ndarray:
        return self.row_accesses * self.access_energy_pj

    @cached_property
    def _row_total_energy_pj(self) -> np.ndarray:
        memory = self._row_energies_pj.sum(axis=(1, 2))
        noc = self.row_noc_words * self.noc_hop_pj
        return memory + noc + self.mac_by_problem[self.row_problem_idx]

    @cached_property
    def energies_pj(self) -> np.ndarray:
        return self._lanes(self._row_energies_pj)

    @cached_property
    def memory_energy_pj(self) -> np.ndarray:
        return self._lanes(self._row_energies_pj.sum(axis=(1, 2)))

    @cached_property
    def noc_energy_pj(self) -> np.ndarray:
        return self._lanes(self.row_noc_words * self.noc_hop_pj)

    @cached_property
    def total_energy_pj(self) -> np.ndarray:
        return self._lanes(self._row_total_energy_pj)

    @cached_property
    def energy_j(self) -> np.ndarray:
        return self._lanes(self._row_total_energy_pj * 1e-12)

    @cached_property
    def delay_s(self) -> np.ndarray:
        return self._lanes(self.row_cycles / (self.clock_ghz * 1e9))

    @cached_property
    def edp(self) -> np.ndarray:
        energy_j = self._row_total_energy_pj * 1e-12
        delay_s = self.row_cycles / (self.clock_ghz * 1e9)
        return self._lanes(energy_j * delay_s)

    # -- per-problem / per-lane carve-outs ---------------------------------

    def _group_rows(self, group: int) -> slice:
        """The contiguous group-major row range of ``problems[group]``."""
        start = int(np.searchsorted(self.row_problem_idx, group, side="left"))
        stop = int(np.searchsorted(self.row_problem_idx, group, side="right"))
        return slice(start, stop)

    def problem_lanes(self, group: int) -> np.ndarray:
        """Lane indices belonging to ``problems[group]``, in lane order."""
        return np.sort(self.lane_index[self._group_rows(group)])

    def problem_slice(self, group: int) -> BatchCostStats:
        """One problem's lanes as a homogeneous :class:`BatchCostStats`.

        Rows follow :meth:`problem_lanes` order (the group's input-lane
        order, which group-major storage keeps contiguous); slots are
        trimmed to the problem's tensor count.  Values are bitwise
        identical to :func:`evaluate_batch` over the same lanes, so
        downstream consumers of homogeneous batches (replay-buffer labels,
        meta matrices) cannot tell the difference.
        """
        problem = self.problems[group]
        rows = self._group_rows(group)
        n_tensors = len(problem.tensors)
        return BatchCostStats(
            problem_name=problem.name,
            tensor_names=tuple(tensor.name for tensor in problem.tensors),
            accesses=self.row_accesses[rows, :n_tensors, :],
            access_energy_pj=self.access_energy_pj,
            noc_words=self.row_noc_words[rows],
            noc_hop_pj=self.noc_hop_pj,
            mac_energy_pj=float(self.mac_by_problem[group]),
            cycles=self.row_cycles[rows],
            utilization=self.row_utilization[rows],
            spatial_pes=self.row_spatial_pes[rows],
            clock_ghz=self.clock_ghz,
        )

    def stats_at(self, index: int) -> CostStats:
        """Rebuild the full scalar :class:`CostStats` for one lane.

        Raises ``IndexError`` unless ``0 <= index < len(self)``.
        """
        self._check_index(index)
        row = int(self._row_of_lane[index])
        group = int(self.row_problem_idx[row])
        problem = self.problems[group]
        energies = self._row_energies_pj[row]
        records = tuple(
            TensorLevelEnergy(
                tensor=tensor.name,
                level=level,
                accesses=float(self.row_accesses[row, t, l]),
                energy_pj=float(energies[t, l]),
            )
            for t, tensor in enumerate(problem.tensors)
            for l, level in enumerate(MEMORY_LEVELS)
        )
        return CostStats(
            problem_name=problem.name,
            records=records,
            noc_energy_pj=float(self.row_noc_words[row] * self.noc_hop_pj),
            mac_energy_pj=float(self.mac_by_problem[group]),
            cycles=float(self.row_cycles[row]),
            utilization=float(self.row_utilization[row]),
            spatial_pes=int(self.row_spatial_pes[row]),
            clock_ghz=self.clock_ghz,
        )


#: Widest nest (3 * Dmax) the bit-packed fills position recovery handles:
#: packed position words must fit the float64 mantissa to stay exact.
#: Wider nests take the direct masked-position fallback (bitwise identical,
#: just slower); tests force the fallback by monkeypatching this to 0.
_BITPACK_MAX_WIDTH = 53


def _slot_footprints(
    extents3: np.ndarray, sel: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`_footprints` vectorized over tensor slots *and* levels.

    ``extents3`` stacks the per-level tile extents ``(3, N, Dmax)``;
    ``sel[n, t, a, :]`` is the lane's axis-span selection row — dim-extent
    counts in columns ``:Dmax`` plus the scalar overlap term in the
    constant column — so every span is one dot product with the extents
    augmented by a constant-1 column, here one batched matmul against all
    three levels at once.  Zero rows (padding axes and slots) give span 0,
    clamped to a multiplicative-identity 1.  Spans are integer-valued and
    below 2**53, so the float64 dot products are exact — bitwise the same
    values as the scalar member-by-member integer sums.  Returns the
    ``(N, T)`` footprints at (L2, union, L1).
    """
    n, d = extents3.shape[1], extents3.shape[2]
    t, a = sel.shape[1], sel.shape[2]
    ext = np.empty((n, d + 1, 3))
    ext[:, :d, :] = extents3.transpose(1, 2, 0)
    ext[:, d, :] = 1.0
    span = np.matmul(sel.reshape(n, t * a, d + 1), ext)  # (N, T*A, 3)
    fp = np.maximum(span, 1.0).reshape(n, t, a, 3).prod(axis=2)  # (N, T, 3)
    return fp[:, :, 0], fp[:, :, 1], fp[:, :, 2]


def evaluate_megabatch(
    accelerator: Accelerator,
    mappings: Sequence[Mapping],
    problems: Sequence[Problem],
) -> MegaBatchCostStats:
    """Price heterogeneous ``(mappings[i], problems[i])`` lanes in one pass.

    The cross-problem form of :func:`evaluate_batch`: one compile, one run
    of the traffic/energy/cycles kernels over the whole union, however
    many distinct problems the lanes span.  Per-lane results are bitwise
    identical to evaluating each problem's slice homogeneously.
    """
    return evaluate_mega_compiled(accelerator, compile_megabatch(mappings, problems))


def evaluate_mega_compiled(
    accelerator: Accelerator, mega: MegaBatch
) -> MegaBatchCostStats:
    """The megabatch kernels over an already-compiled :class:`MegaBatch`.

    Runs the same fill/reuse/traffic formulas as :func:`evaluate_compiled`
    but vectorized over the tensor-slot axis too: both the output-tensor
    and operand kernels are computed for every slot and selected by the
    per-lane output-role mask (the wide-with-masks idiom — lanes never
    branch).  Invalid padding slots are masked to zero traffic, which
    keeps every cross-slot sum exact.  The compiled rows are group-major
    and the returned stats keep that layout, restoring input-lane order
    lazily through ``lane_index`` (a pure row permutation), so
    ``stats.problem_idx`` and every public per-lane array align with the
    lanes the megabatch was compiled from.
    """
    n = len(mega)
    n_dims = mega.n_dims
    n_slots = mega.n_slots
    access_energy = np.asarray(
        [accelerator.energy.access(level) for level in MEMORY_LEVELS],
        dtype=np.float64,
    )
    mac_by_problem = mega.total_ops * accelerator.energy.mac
    if not n:
        return MegaBatchCostStats(
            problems=mega.problems,
            lane_index=np.empty(0, dtype=np.int64),
            row_problem_idx=np.empty(0, dtype=np.int64),
            row_accesses=np.empty((0, n_slots, len(MEMORY_LEVELS))),
            access_energy_pj=access_energy,
            row_noc_words=np.empty(0),
            noc_hop_pj=accelerator.energy.noc_hop,
            mac_by_problem=mac_by_problem,
            row_cycles=np.empty(0),
            row_utilization=np.empty(0),
            row_spatial_pes=np.empty(0, dtype=np.int64),
            clock_ghz=accelerator.clock_ghz,
        )
    rg = mega.problem_idx  # (N,) row -> problem group, group-major

    bounds = mega.nest_bounds  # (N, 3Dmax)
    cumprod = np.cumprod(bounds, axis=1)
    iterating = bounds > 1.0
    spatial = mega.spatial
    spatial_col = spatial[:, None]
    tf = mega.tile_factors
    spatial_factors = tf[:, :, _SPATIAL]  # (N, Dmax)
    width = 3 * n_dims

    # Tile extents per level, stacked (L2, union, L1) for one footprint pass.
    l1_extents = tf[:, :, _L1]
    union_extents = l1_extents * spatial_factors
    l2_extents = union_extents * tf[:, :, _L2]
    extents3 = np.stack([l2_extents, union_extents, l1_extents])

    # Per-lane slot tables (gathered once; every kernel below reuses them).
    valid = mega.slot_valid[rg]  # (N, T)
    is_output = mega.slot_is_output[rg]  # (N, T)
    relevant_dims = mega.slot_relevant[rg]  # (N, T, Dmax)

    rng = np.arange(n)
    fp_l2, fp_union, fp_l1 = _slot_footprints(extents3, mega.slot_sel[rg])

    # Fill events at each level: running bound product at the innermost
    # relevant loop above it.  The running product is nondecreasing (every
    # bound is >= 1), so the masked maximum over a nest prefix is exactly
    # the cumprod *element* at the prefix's last relevant iterating
    # position — find that position, then one gather reads the identical
    # float64 value bitwise.
    if width <= _BITPACK_MAX_WIDTH:
        # Bit-packed position recovery: scatter ``2.0 ** position`` into
        # each iterating loop's dim slot, sum a slot's relevant dims
        # (positions are distinct so the sum sets disjoint bits, no
        # carries), and the highest set bit — floor(log2) — is the last
        # relevant iterating position.  Power-of-two sums below 2**53 are
        # exact in float64, which lets the per-slot reduction run as one
        # batched matmul; wider nests take the direct masked-position
        # reduction below.
        bits = np.where(
            iterating, np.ldexp(1.0, np.arange(width))[None, :], 0.0
        ).reshape(n, 3, n_dims)
        bit_by_dim = np.zeros((n, 3, n_dims))
        np.put_along_axis(
            bit_by_dim, mega.nest_dims.reshape(n, 3, n_dims), bits, axis=2
        )
        sums = np.matmul(
            relevant_dims.astype(np.float64), bit_by_dim.transpose(0, 2, 1)
        )  # (N, T, 3) packed positions per level segment
        pos = np.where(
            sums > 0,
            np.log2(np.maximum(sums, 1.0)).astype(np.int64),
            np.int64(-1),
        )
        pos = np.maximum.accumulate(pos, axis=2)  # prefixes of segments
        gathered = cumprod.ravel().take(
            np.maximum(pos, 0) + (rng * width)[:, None, None]
        )
        fills3 = np.where(pos >= 0, gathered, 1.0)  # (N, T, 3)
        fills_l2 = fills3[:, :, 0]
        fills_l1 = fills3[:, :, 1]
        fills_reg = fills3[:, :, 2]
    else:
        rel_by_dim = np.ascontiguousarray(
            relevant_dims.transpose(0, 2, 1)
        ).reshape(n * n_dims, n_slots)
        rel_nest = np.take(
            rel_by_dim, mega.nest_dims + (rng * n_dims)[:, None], axis=0
        )
        rel_nest &= iterating[:, :, None]  # (N, 3Dmax, T)
        nest_pos = np.arange(1, width + 1, dtype=np.int64)  # 1-based; 0 = none
        last_rel = (
            (rel_nest * nest_pos[None, :, None])
            .reshape(n, 3, n_dims, n_slots)
            .max(axis=2)
        )  # (N, 3, T) last relevant 1-based position per level segment
        last_rel = np.maximum.accumulate(last_rel, axis=1)
        pos = last_rel - 1
        gathered = cumprod.ravel().take(
            np.maximum(pos, 0) + (rng * width)[:, None, None]
        )
        fills3 = np.where(pos >= 0, gathered, 1.0)  # (N, 3, T)
        fills_l2 = fills3[:, 0, :]
        fills_l1 = fills3[:, 1, :]
        fills_reg = fills3[:, 2, :]

    # Distinct tiles: product of relevant bounds above the level — exactly
    # the relevant DRAM (resp. DRAM*L2) tile factors, one per dim, so the
    # segment reduction collapses to per-dim integer products.  Factor
    # products stay below 2**53, hence exact in any order and bitwise
    # identical to the homogeneous masked float product.
    distinct_l2 = (
        np.where(relevant_dims, tf[:, None, :, _DRAM], 1)
        .prod(axis=2)
        .astype(np.float64)
    )
    distinct_l1 = distinct_l2 * np.where(
        relevant_dims, tf[:, None, :, _L2], 1
    ).prod(axis=2)

    # Output-role kernel (partial-sum spills), every slot.
    spills = fills_l2 - distinct_l2
    spills_l1 = fills_l1 - distinct_l1
    out_dram = distinct_l2 * fp_l2 + 2.0 * spills * fp_l2
    drains = fills_l1 * fp_union  # == the operand kernel's L2 reads
    restores = spills_l1 * fp_union
    out_l2 = out_dram + drains + restores
    out_noc = (fills_l1 + spills_l1) * fp_l1 * spatial_col
    out_l1 = 2.0 * fills_reg * spatial_col + out_noc

    # Operand kernel (multicast fills), every slot.
    in_dram = fills_l2 * fp_l2
    copies = np.where(relevant_dims, 1, spatial_factors[:, None, :]).prod(axis=2)
    deliveries = drains * copies
    in_l2 = in_dram + drains
    in_l1 = deliveries + fills_reg * spatial_col

    accesses = np.empty((n, n_slots, len(MEMORY_LEVELS)), dtype=np.float64)
    accesses[:, :, 0] = np.where(valid, np.where(is_output, out_dram, in_dram), 0.0)
    accesses[:, :, 1] = np.where(valid, np.where(is_output, out_l2, in_l2), 0.0)
    accesses[:, :, 2] = np.where(valid, np.where(is_output, out_l1, in_l1), 0.0)
    noc_words = np.where(valid, np.where(is_output, out_noc, deliveries), 0.0).sum(
        axis=1
    )

    # ---- cycles (max of compute-bound and bandwidth-bound counts) --------
    temporal_points = cumprod[:, -1]
    compute_cycles = temporal_points * mega.ops_per_point[rg]
    level_words = accesses.sum(axis=1)  # (N, L) summed over slots
    dram_cycles = level_words[:, 0] / accelerator.bandwidth("DRAM")
    l2_cycles = level_words[:, 1] / accelerator.bandwidth("L2")
    per_pe_l1 = level_words[:, 2] / np.maximum(spatial, 1.0)
    l1_cycles = per_pe_l1 / accelerator.bandwidth("L1")
    cycles = np.maximum.reduce(
        [compute_cycles, dram_cycles, l2_cycles, l1_cycles, np.ones(n)]
    )
    ideal = mega.total_ops[rg] / accelerator.num_pes
    utilization = np.minimum(ideal / cycles, 1.0)

    return MegaBatchCostStats(
        problems=mega.problems,
        lane_index=mega.lane_index,
        row_problem_idx=rg,
        row_accesses=accesses,
        access_energy_pj=access_energy,
        row_noc_words=noc_words,
        noc_hop_pj=accelerator.energy.noc_hop,
        mac_by_problem=mac_by_problem,
        row_cycles=cycles,
        row_utilization=utilization,
        row_spatial_pes=spatial.astype(np.int64),
        clock_ghz=accelerator.clock_ghz,
    )


def megabatch_shape_stats(problems: Sequence[Problem]) -> Dict[str, object]:
    """Cheap kernel-shape counters for a prospective megabatch union.

    Pure bookkeeping over the lanes' problem shapes — no numpy, no
    compile — so the observability layer can attach per-round kernel
    attributes (lane count, union width, padding waste) to its trace
    spans without paying for :func:`compile_megabatch`.

    ``padding_waste_ratio`` is the fraction of padded per-lane cells that
    hold inert padding rather than real loops/slots: lanes are padded to
    ``union_dims`` dimensions and ``union_slots`` tensor slots (the
    rectangular union :func:`compile_megabatch` lowers to), so a
    homogeneous union wastes 0.0 and a union mixing narrow lanes into a
    wide rectangle approaches the fraction of cells that are bound-1 /
    invalid-slot filler.
    """
    if not problems:
        return {
            "lanes": 0,
            "problems": 0,
            "union_dims": 0,
            "union_slots": 0,
            "padding_waste_ratio": 0.0,
        }
    dim_counts = [len(problem.dims) for problem in problems]
    slot_counts = [len(problem.tensors) for problem in problems]
    union_dims = max(dim_counts)
    union_slots = max(slot_counts)
    distinct = len({id(problem) for problem in problems})
    used = sum(dim_counts) + sum(slot_counts)
    padded = len(problems) * (union_dims + union_slots)
    return {
        "lanes": len(problems),
        "problems": distinct,
        "union_dims": union_dims,
        "union_slots": union_slots,
        "padding_waste_ratio": 1.0 - used / padded if padded else 0.0,
    }


__all__ = [
    "BatchCostStats",
    "MappingBatch",
    "MegaBatch",
    "MegaBatchCostStats",
    "compile_batch",
    "compile_megabatch",
    "edp_batch",
    "evaluate_batch",
    "evaluate_compiled",
    "evaluate_megabatch",
    "evaluate_mega_compiled",
    "megabatch_shape_stats",
]
