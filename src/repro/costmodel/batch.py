"""Vectorized batched analytical cost model.

The scalar :class:`~repro.costmodel.model.CostModel` prices one mapping at a
time: it builds a :class:`~repro.costmodel.nest.LoopNest` of Python objects,
walks it per tensor for the Timeloop-style temporal-reuse products, and
assembles a :class:`~repro.costmodel.stats.CostStats`.  Every batched caller
— Phase 1 training-set generation, the ask/tell baselines' generation
scoring, :class:`~repro.costmodel.cache.CachedOracle` miss batches, harness
trace re-scoring — ultimately prices *populations* of mappings against one
``(problem, accelerator)`` pair, so this module amortizes the analysis
across the population instead:

1. :func:`compile_batch` lowers ``N`` mappings into stacked numpy arrays —
   per-level tile factors ``(N, D, 4)``, the concatenated temporal loop
   nest as aligned bound/dimension matrices ``(N, 3D)`` (outermost
   position first), per-level tile extents, and spatial sizes — with the
   same structural validation as ``CostModel._check_structure``.
2. :func:`evaluate_batch` runs the traffic/energy/cycles kernels over those
   arrays: fill/reuse products via masked cumulative products along the
   nest axis, footprints and multicast copies via gathers over the dim
   axis, then the exact scalar traffic formulas applied elementwise.

The result is a :class:`BatchCostStats` holding per-(mapping, tensor,
level) access counts and ``(N,)`` energy/cycles/utilization/EDP vectors —
enough to rebuild any row's full :class:`CostStats` (:meth:`BatchCostStats.
stats_at`) and to build the surrogate's meta-statistics targets without a
per-row Python loop (:meth:`BatchCostStats.meta_matrix`).

Semantics are *identical* to the scalar model, not approximated: the
bound-1 loop elision rule is reproduced by masking bound-1 loops out of
the relevance tests (they contribute a factor of 1 to every product, so
only their reuse-breaking effect must be suppressed), and every arithmetic
expression mirrors the scalar code's operation order.  The parity suite
(``tests/test_costmodel_batch.py``) holds scalar and batched EDP to a
relative tolerance of 1e-9 across every Table 1 workload on both
accelerator configurations; in practice agreement is at machine precision
for all realistic problem sizes (all intermediate reuse products stay
below 2**53 and stay exact in float64).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.costmodel.accelerator import Accelerator, MEMORY_LEVELS
from repro.costmodel.stats import CostStats, TensorLevelEnergy
from repro.mapspace.mapping import Mapping
from repro.workloads.problem import Problem, TensorSpec

#: Tile-factor slot indices within a mapping's per-dimension factor tuple.
_DRAM, _L2, _SPATIAL, _L1 = 0, 1, 2, 3

#: Temporal levels in nest order (outermost first) with their factor slots.
_TEMPORAL_SLOTS: Tuple[Tuple[str, int], ...] = (("DRAM", _DRAM), ("L2", _L2), ("L1", _L1))


@dataclass(frozen=True)
class MappingBatch:
    """``N`` mappings over one problem, lowered to stacked arrays.

    Arrays are aligned with ``problem.dim_names`` on the dimension axis and
    with the mapping order on the batch axis.  ``nest_bounds`` /
    ``nest_dims`` describe the full concatenated temporal loop nest (DRAM
    loops, then L2, then L1 — each level in its mapping's loop order,
    outermost loop first): position ``p`` of row ``n`` is a loop over
    dimension index ``nest_dims[n, p]`` with bound ``nest_bounds[n, p]``.
    Bound-1 loops are *kept* in place (unlike the scalar
    :func:`~repro.costmodel.nest.build_nest`, which elides them): they
    multiply every product by 1, and the reuse kernels mask them out of
    relevance tests, which reproduces the elision semantics exactly while
    keeping the arrays rectangular.
    """

    problem: Problem
    tile_factors: np.ndarray  # (N, D, 4) int64
    nest_bounds: np.ndarray  # (N, 3D) float64, outermost position first
    nest_dims: np.ndarray  # (N, 3D) int64 dimension index per position
    spatial: np.ndarray  # (N,) float64 — PEs used per mapping

    def __len__(self) -> int:
        return self.tile_factors.shape[0]

    @property
    def n_dims(self) -> int:
        return self.tile_factors.shape[1]

    def level_extents(self, level: str) -> np.ndarray:
        """Per-dimension tile extents at ``level`` as an ``(N, D)`` array.

        Mirrors :meth:`repro.mapspace.mapping.Mapping.tile_extents`; the
        extra pseudo-level ``"union"`` is the union of all PEs' L1 tiles
        (L1 x spatial), the granularity L2 serves multicast reads at.
        """
        tf = self.tile_factors
        if level == "L1":
            return tf[:, :, _L1]
        if level == "union":
            return tf[:, :, _L1] * tf[:, :, _SPATIAL]
        if level == "L2":
            return tf[:, :, _L1] * tf[:, :, _SPATIAL] * tf[:, :, _L2]
        if level == "DRAM":
            return np.prod(tf, axis=2)
        raise KeyError(f"unknown level {level!r}")


def compile_batch(mappings: Sequence[Mapping], problem: Problem) -> MappingBatch:
    """Lower ``mappings`` into a :class:`MappingBatch` for ``problem``.

    Performs the scalar model's structural validation across the whole
    batch: every mapping's dims must match the problem's and every
    dimension's factors must multiply to its bound.  Raises ``ValueError``
    naming the first offender, like ``CostModel.evaluate`` does.
    """
    dims = problem.dim_names
    dim_index = {dim: i for i, dim in enumerate(dims)}
    n = len(mappings)
    n_dims = len(dims)

    for mapping in mappings:
        if mapping.dims != dims:
            raise ValueError(
                f"mapping dims {mapping.dims} do not match problem dims {dims}"
            )
    tile_factors = np.asarray(
        [mapping.tile_factors for mapping in mappings], dtype=np.int64
    ).reshape(n, n_dims, 4)
    order_index = np.asarray(
        [
            [[dim_index[dim] for dim in order] for order in mapping.loop_orders]
            for mapping in mappings
        ],
        dtype=np.int64,
    ).reshape(n, 3, n_dims)

    if n:
        implied = np.prod(tile_factors, axis=2)  # (N, D)
        bounds = np.asarray([d.bound for d in problem.dims], dtype=np.int64)
        bad = np.argwhere(implied != bounds[None, :])
        if bad.size:
            row, col = bad[0]
            raise ValueError(
                f"mapping factors of {dims[col]} multiply to {implied[row, col]}, "
                f"problem bound is {bounds[col]}"
            )

    # Concatenated temporal nest: per level, gather that level's factor slot
    # through the level's loop order, then stack levels outermost first.
    per_level = [
        np.take_along_axis(tile_factors[:, :, slot], order_index[:, l, :], axis=1)
        for l, (_, slot) in enumerate(_TEMPORAL_SLOTS)
    ]
    nest_bounds = np.concatenate(per_level, axis=1).astype(np.float64)
    nest_dims = np.concatenate([order_index[:, l, :] for l in range(3)], axis=1)
    spatial = np.prod(tile_factors[:, :, _SPATIAL], axis=1).astype(np.float64)
    return MappingBatch(
        problem=problem,
        tile_factors=tile_factors,
        nest_bounds=nest_bounds,
        nest_dims=nest_dims,
        spatial=spatial,
    )


@dataclass(frozen=True)
class BatchCostStats:
    """Vectorized evaluation result for ``N`` mappings of one problem.

    The batched analogue of :class:`~repro.costmodel.stats.CostStats`:
    ``accesses[n, t, l]`` is the word-access count of mapping ``n`` for the
    problem's ``t``-th tensor at memory level ``l`` (``MEMORY_LEVELS``
    order), and the remaining fields are ``(N,)`` vectors or constants
    shared by the whole batch.  Aggregates (energy, EDP) are derived
    properties, mirroring the scalar formulas elementwise.
    """

    problem_name: str
    tensor_names: Tuple[str, ...]
    accesses: np.ndarray  # (N, T, L) word accesses
    access_energy_pj: np.ndarray  # (L,) per-word access energy
    noc_words: np.ndarray  # (N,)
    noc_hop_pj: float
    mac_energy_pj: float  # identical across the batch (same problem)
    cycles: np.ndarray  # (N,)
    utilization: np.ndarray  # (N,)
    spatial_pes: np.ndarray  # (N,) int64
    clock_ghz: float = 1.0

    def __len__(self) -> int:
        return self.accesses.shape[0]

    # ---- aggregate views (vectorized CostStats properties) ---------------

    @property
    def energies_pj(self) -> np.ndarray:
        """Per-(mapping, tensor, level) energy: ``accesses * access cost``."""
        return self.accesses * self.access_energy_pj[None, None, :]

    @property
    def memory_energy_pj(self) -> np.ndarray:
        return self.energies_pj.reshape(len(self), -1).sum(axis=1)

    @property
    def noc_energy_pj(self) -> np.ndarray:
        return self.noc_words * self.noc_hop_pj

    @property
    def total_energy_pj(self) -> np.ndarray:
        return self.memory_energy_pj + self.noc_energy_pj + self.mac_energy_pj

    @property
    def energy_j(self) -> np.ndarray:
        return self.total_energy_pj * 1e-12

    @property
    def delay_s(self) -> np.ndarray:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def edp(self) -> np.ndarray:
        """Energy-delay products in joule-seconds, shape ``(N,)``."""
        return self.energy_j * self.delay_s

    # ---- interop ---------------------------------------------------------

    def stats_at(self, index: int) -> CostStats:
        """Rebuild the full scalar :class:`CostStats` for one batch row."""
        energies = self.energies_pj[index]
        records = tuple(
            TensorLevelEnergy(
                tensor=tensor,
                level=level,
                accesses=float(self.accesses[index, t, l]),
                energy_pj=float(energies[t, l]),
            )
            for t, tensor in enumerate(self.tensor_names)
            for l, level in enumerate(MEMORY_LEVELS)
        )
        return CostStats(
            problem_name=self.problem_name,
            records=records,
            noc_energy_pj=float(self.noc_energy_pj[index]),
            mac_energy_pj=float(self.mac_energy_pj),
            cycles=float(self.cycles[index]),
            utilization=float(self.utilization[index]),
            spatial_pes=int(self.spatial_pes[index]),
            clock_ghz=self.clock_ghz,
        )

    def meta_matrix(self, tensor_order: Sequence[str]) -> np.ndarray:
        """Stacked meta-statistics vectors, shape ``(N, 3T + 3)``.

        Row ``n`` equals ``stats_at(n).meta_vector(tensor_order)``: per-level
        energies for each tensor in ``tensor_order``, then total energy,
        utilization, cycles — the surrogate's training-target layout
        (:meth:`repro.costmodel.stats.CostStats.meta_vector`), built with
        column arithmetic instead of N Python calls.
        """
        name_to_index = {name: t for t, name in enumerate(self.tensor_names)}
        try:
            order = [name_to_index[name] for name in tensor_order]
        except KeyError as error:
            raise KeyError(
                f"tensor {error.args[0]!r} not in batch tensors {self.tensor_names}"
            ) from None
        energies = self.energies_pj[:, order, :]  # (N, T, L) reordered
        out = np.empty((len(self), 3 * len(order) + 3), dtype=np.float64)
        out[:, : 3 * len(order)] = energies.reshape(len(self), -1)
        out[:, -3] = self.total_energy_pj
        out[:, -2] = self.utilization
        out[:, -1] = self.cycles
        return out


# ----------------------------------------------------------------------
# Reuse kernels
# ----------------------------------------------------------------------


def _fill_events(
    cumprod: np.ndarray, relevant: np.ndarray, prefix: int
) -> np.ndarray:
    """Vectorized :func:`repro.costmodel.nest.fill_events` over a batch.

    ``cumprod[n, p]`` is the running product of nest bounds through
    position ``p``; ``relevant[n, p]`` marks loops that both iterate
    (bound > 1) and touch the tensor.  The fill count is the cumulative
    product at the *last* relevant position — and because bounds are >= 1
    the cumulative product is non-decreasing along the nest, so that value
    is simply the masked maximum (1.0 when no loop above is relevant).
    """
    if prefix == 0:
        return np.ones(cumprod.shape[0], dtype=np.float64)
    masked = np.where(relevant[:, :prefix], cumprod[:, :prefix], 1.0)
    return masked.max(axis=1)


def _distinct_tiles(
    bounds: np.ndarray, relevant: np.ndarray, prefix: int
) -> np.ndarray:
    """Vectorized :func:`repro.costmodel.nest.distinct_tiles` over a batch:
    the product of relevant loop bounds above the storage level."""
    if prefix == 0:
        return np.ones(bounds.shape[0], dtype=np.float64)
    return np.where(relevant[:, :prefix], bounds[:, :prefix], 1.0).prod(axis=1)


def _footprints(
    tensor: TensorSpec, extents: np.ndarray, dim_index: Dict[str, int]
) -> np.ndarray:
    """Vectorized :meth:`TensorSpec.footprint` over ``(N, D)`` extents.

    Sliding-window axes like ``(X, R)`` add their extents and subtract the
    overlap (``x + r - 1`` positions), exactly as the scalar rule.
    """
    total = np.ones(extents.shape[0], dtype=np.float64)
    for axis in tensor.axes:
        span = np.full(extents.shape[0], -(len(axis) - 1), dtype=np.int64)
        for dim in axis:
            span = span + extents[:, dim_index[dim]]
        total = total * np.maximum(span, 1)
    return total


# ----------------------------------------------------------------------
# The batched kernels
# ----------------------------------------------------------------------


def evaluate_batch(
    accelerator: Accelerator, mappings: Sequence[Mapping], problem: Problem
) -> BatchCostStats:
    """Price ``mappings`` against ``problem`` in one vectorized pass.

    Produces per-tensor/per-level traffic, NoC words, cycles, utilization
    — everything the scalar :meth:`CostModel.evaluate` computes — as
    stacked arrays, with semantics identical to evaluating each mapping
    independently (see the parity suite).
    """
    batch = compile_batch(mappings, problem)
    return evaluate_compiled(accelerator, batch)


def evaluate_compiled(accelerator: Accelerator, batch: MappingBatch) -> BatchCostStats:
    """The traffic/energy/cycles kernels over an already-compiled batch."""
    problem = batch.problem
    n = len(batch)
    n_dims = batch.n_dims
    dims = problem.dim_names
    dim_index = {dim: i for i, dim in enumerate(dims)}
    tensors = problem.tensors
    n_tensors = len(tensors)

    bounds = batch.nest_bounds  # (N, 3D)
    cumprod = np.cumprod(bounds, axis=1) if n else bounds
    iterating = bounds > 1.0  # bound-1 loops are transparent to reuse
    spatial = batch.spatial
    spatial_factors = batch.tile_factors[:, :, _SPATIAL]  # (N, D)

    l1_extents = batch.level_extents("L1")
    union_extents = batch.level_extents("union")
    l2_extents = batch.level_extents("L2")

    #: Loops strictly outside each storage level, as nest-position prefixes:
    #: DRAM loops only (above L2), DRAM+L2 (above L1), all (above REG).
    above_l2, above_l1, above_reg = n_dims, 2 * n_dims, 3 * n_dims

    accesses = np.empty((n, n_tensors, len(MEMORY_LEVELS)), dtype=np.float64)
    noc_words = np.zeros(n, dtype=np.float64)
    for t, tensor in enumerate(tensors):
        relevant_dims = np.zeros(n_dims, dtype=bool)
        for dim in tensor.dims:
            relevant_dims[dim_index[dim]] = True
        relevant = relevant_dims[batch.nest_dims] & iterating  # (N, 3D)

        fp_l2 = _footprints(tensor, l2_extents, dim_index)
        fp_union = _footprints(tensor, union_extents, dim_index)

        if tensor.is_output:
            fp_l1 = _footprints(tensor, l1_extents, dim_index)
            installs = _fill_events(cumprod, relevant, above_l2)
            distinct = _distinct_tiles(bounds, relevant, above_l2)
            spills = installs - distinct
            dram_words = distinct * fp_l2 + 2.0 * spills * fp_l2

            installs_l1 = _fill_events(cumprod, relevant, above_l1)
            distinct_l1 = _distinct_tiles(bounds, relevant, above_l1)
            spills_l1 = installs_l1 - distinct_l1
            drains = installs_l1 * fp_union
            restores = spills_l1 * fp_union
            l2_words = dram_words + drains + restores

            reg_updates = _fill_events(cumprod, relevant, above_reg)
            l1_words = (
                2.0 * reg_updates * spatial
                + (installs_l1 + spills_l1) * fp_l1 * spatial
            )
            noc_words += (installs_l1 + spills_l1) * fp_l1 * spatial
            accesses[:, t, 0] = dram_words
            accesses[:, t, 1] = l2_words
            accesses[:, t, 2] = l1_words
        else:
            fills_l2 = _fill_events(cumprod, relevant, above_l2)
            dram_reads = fills_l2 * fp_l2

            fills_l1 = _fill_events(cumprod, relevant, above_l1)
            l2_reads = fills_l1 * fp_union  # multicast: unique words read once
            copies = np.where(relevant_dims[None, :], 1, spatial_factors).prod(axis=1)
            deliveries = fills_l1 * fp_union * copies

            reg_fills = _fill_events(cumprod, relevant, above_reg)
            l1_reads = reg_fills * spatial

            noc_words += deliveries
            accesses[:, t, 0] = dram_reads
            accesses[:, t, 1] = dram_reads + l2_reads  # fill writes + drains
            accesses[:, t, 2] = deliveries + l1_reads  # fills + compute reads

    # ---- cycles (max of compute-bound and bandwidth-bound counts) --------
    temporal_points = cumprod[:, -1] if n else np.ones(0)
    compute_cycles = temporal_points * problem.ops_per_point
    level_words = accesses.sum(axis=1)  # (N, L) summed over tensors
    dram_cycles = level_words[:, 0] / accelerator.bandwidth("DRAM")
    l2_cycles = level_words[:, 1] / accelerator.bandwidth("L2")
    per_pe_l1 = level_words[:, 2] / np.maximum(spatial, 1.0)
    l1_cycles = per_pe_l1 / accelerator.bandwidth("L1")
    cycles = np.maximum.reduce(
        [compute_cycles, dram_cycles, l2_cycles, l1_cycles, np.ones(n)]
    )
    ideal = problem.total_ops / accelerator.num_pes
    utilization = np.minimum(ideal / cycles, 1.0) if n else np.ones(0)

    access_energy = np.asarray(
        [accelerator.energy.access(level) for level in MEMORY_LEVELS],
        dtype=np.float64,
    )
    return BatchCostStats(
        problem_name=problem.name,
        tensor_names=tuple(tensor.name for tensor in tensors),
        accesses=accesses,
        access_energy_pj=access_energy,
        noc_words=noc_words,
        noc_hop_pj=accelerator.energy.noc_hop,
        mac_energy_pj=problem.total_ops * accelerator.energy.mac,
        cycles=cycles,
        utilization=utilization,
        spatial_pes=spatial.astype(np.int64),
        clock_ghz=accelerator.clock_ghz,
    )


def edp_batch(
    accelerator: Accelerator, mappings: Sequence[Mapping], problem: Problem
) -> np.ndarray:
    """``(N,)`` EDP vector — the batched form of ``CostModel.evaluate_edp``."""
    if not len(mappings):
        return np.empty(0, dtype=np.float64)
    return evaluate_batch(accelerator, mappings, problem).edp


__all__ = [
    "BatchCostStats",
    "MappingBatch",
    "compile_batch",
    "edp_batch",
    "evaluate_batch",
    "evaluate_compiled",
]
