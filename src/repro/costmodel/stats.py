"""Cost statistics produced by the analytical model.

The paper (section 4.1.3) trains the surrogate against a *meta-statistics*
vector rather than scalar EDP: per-level energy for each tensor, compute
utilization, total cycles, and total energy.  :class:`CostStats` is that
vector plus enough bookkeeping (access counts, NoC/MAC energy) for the
benchmarks and tests to audit the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, NamedTuple, Sequence, Tuple

import numpy as np

from repro.costmodel.accelerator import MEMORY_LEVELS


class TensorLevelEnergy(NamedTuple):
    """Accesses and energy for one (tensor, memory level) pair."""

    tensor: str
    level: str
    accesses: float
    energy_pj: float


@dataclass(frozen=True)
class CostStats:
    """Full evaluation result for one (mapping, problem) pair.

    Energies are picojoules; ``cycles`` at the accelerator clock;
    ``utilization`` is achieved compute throughput over peak (0..1].
    """

    problem_name: str
    records: Tuple[TensorLevelEnergy, ...]
    noc_energy_pj: float
    mac_energy_pj: float
    cycles: float
    utilization: float
    spatial_pes: int
    clock_ghz: float = 1.0

    # ---- aggregate views ---------------------------------------------------

    @property
    def memory_energy_pj(self) -> float:
        """Energy spent in the memory hierarchy (all tensors, all levels)."""
        return sum(record.energy_pj for record in self.records)

    @property
    def total_energy_pj(self) -> float:
        """Total energy: memory + NoC + compute."""
        return self.memory_energy_pj + self.noc_energy_pj + self.mac_energy_pj

    @property
    def energy_j(self) -> float:
        return self.total_energy_pj * 1e-12

    @property
    def delay_s(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds — the search objective."""
        return self.energy_j * self.delay_s

    def energy_pj_for(self, tensor: str, level: str) -> float:
        """Energy for one (tensor, level) pair (0.0 when never accessed)."""
        for record in self.records:
            if record.tensor == tensor and record.level == level:
                return record.energy_pj
        return 0.0

    def accesses_for(self, tensor: str, level: str) -> float:
        """Word accesses for one (tensor, level) pair."""
        for record in self.records:
            if record.tensor == tensor and record.level == level:
                return record.accesses
        return 0.0

    def energy_by_level(self) -> Dict[str, float]:
        """Energy per memory level summed over tensors."""
        totals = {level: 0.0 for level in MEMORY_LEVELS}
        for record in self.records:
            totals[record.level] += record.energy_pj
        return totals

    # ---- the paper's meta-statistics vector ---------------------------------

    def meta_vector(self, tensor_order: Sequence[str]) -> np.ndarray:
        """The surrogate's training target (paper section 5.5).

        Layout: per-level energy for each tensor in ``tensor_order`` (levels
        in ``MEMORY_LEVELS`` order), then total energy, utilization, cycles.
        Length is ``3 * n_tensors + 3``: 12 values for CNN-Layer's three
        tensors, 15 for MTTKRP's four — matching the paper's output widths.
        """
        values = [
            self.energy_pj_for(tensor, level)
            for tensor in tensor_order
            for level in MEMORY_LEVELS
        ]
        values.append(self.total_energy_pj)
        values.append(self.utilization)
        values.append(self.cycles)
        return np.asarray(values, dtype=np.float64)

    @staticmethod
    def meta_vector_length(n_tensors: int) -> int:
        """Length of :meth:`meta_vector` for ``n_tensors`` tensors."""
        return 3 * n_tensors + 3

    def summary(self) -> str:
        """One-line rendering used by examples and the harness."""
        return (
            f"{self.problem_name}: EDP={self.edp:.3e} J*s, "
            f"energy={self.energy_j * 1e3:.3f} mJ, cycles={self.cycles:.3e}, "
            f"util={self.utilization:.2%}, PEs={self.spatial_pes}"
        )

    # ---- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible dict (inverse of :meth:`from_dict`).

        Floats survive a JSON round-trip exactly (shortest-repr encoding),
        so serialized statistics compare bit-equal after
        ``from_dict(json.loads(json.dumps(to_dict())))`` — the property the
        serving-layer response codec relies on.
        """
        return {
            "problem_name": self.problem_name,
            "records": [
                [r.tensor, r.level, r.accesses, r.energy_pj] for r in self.records
            ],
            "noc_energy_pj": self.noc_energy_pj,
            "mac_energy_pj": self.mac_energy_pj,
            "cycles": self.cycles,
            "utilization": self.utilization,
            "spatial_pes": self.spatial_pes,
            "clock_ghz": self.clock_ghz,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CostStats":
        """Rebuild full statistics from :meth:`to_dict` output."""
        return cls(
            problem_name=str(payload["problem_name"]),
            records=tuple(
                TensorLevelEnergy(
                    tensor=str(tensor),
                    level=str(level),
                    accesses=float(accesses),
                    energy_pj=float(energy),
                )
                for tensor, level, accesses, energy in payload["records"]
            ),
            noc_energy_pj=float(payload["noc_energy_pj"]),
            mac_energy_pj=float(payload["mac_energy_pj"]),
            cycles=float(payload["cycles"]),
            utilization=float(payload["utilization"]),
            spatial_pes=int(payload["spatial_pes"]),
            clock_ghz=float(payload.get("clock_ghz", 1.0)),
        )


__all__ = ["CostStats", "TensorLevelEnergy"]
