"""The analytical accelerator cost model (the reproduction's "Timeloop").

Given a valid mapping and a problem, computes per-tensor traffic at every
level of the memory hierarchy using the temporal-reuse rule in
:mod:`repro.costmodel.nest`, spatial multicast/reduction across the PE
array, bandwidth- and compute-bound cycle counts, and the resulting energy
breakdown.  The result is deliberately *non-smooth* in the mapping — tiny
tile changes flip reuse patterns and capacity cliffs — reproducing the
search-space structure in the paper's Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.costmodel.accelerator import Accelerator, MEMORY_LEVELS
from repro.costmodel.batch import (
    BatchCostStats,
    MegaBatchCostStats,
    evaluate_batch,
    evaluate_megabatch,
)
from repro.costmodel.nest import LoopNest, build_nest, distinct_tiles, fill_events
from repro.costmodel.stats import CostStats, TensorLevelEnergy
from repro.mapspace.mapping import Mapping
from repro.utils import prod
from repro.workloads.problem import Problem, TensorSpec


class CostModel:
    """Evaluates mappings against one accelerator: ``f(m)`` in the paper.

    Instances are stateless (beyond the architecture) and cheap; share one
    per accelerator.  ``evaluate`` raises ``ValueError`` for mappings whose
    factor products do not match the problem bounds — membership/capacity
    checks live in :class:`~repro.mapspace.MapSpace`.
    """

    def __init__(self, accelerator: Accelerator) -> None:
        self.accelerator = accelerator

    # ------------------------------------------------------------------

    def evaluate(self, mapping: Mapping, problem: Problem) -> CostStats:
        """Full cost statistics for running ``problem`` under ``mapping``."""
        self._check_structure(mapping, problem)
        nest = build_nest(mapping)
        spatial = mapping.spatial_size

        records: List[TensorLevelEnergy] = []
        noc_words = 0.0
        totals = {level: 0.0 for level in MEMORY_LEVELS}
        l1_words_total = 0.0

        for tensor in problem.tensors:
            if tensor.is_output:
                traffic, noc = self._output_traffic(mapping, nest, tensor, spatial)
            else:
                traffic, noc = self._input_traffic(mapping, nest, tensor, spatial)
            noc_words += noc
            for level in MEMORY_LEVELS:
                accesses = traffic[level]
                totals[level] += accesses
                if level == "L1":
                    l1_words_total += accesses
                records.append(
                    TensorLevelEnergy(
                        tensor=tensor.name,
                        level=level,
                        accesses=accesses,
                        energy_pj=accesses * self.accelerator.energy.access(level),
                    )
                )

        cycles, utilization = self._cycles(nest, problem, spatial, totals, l1_words_total)
        return CostStats(
            problem_name=problem.name,
            records=tuple(records),
            noc_energy_pj=noc_words * self.accelerator.energy.noc_hop,
            mac_energy_pj=problem.total_ops * self.accelerator.energy.mac,
            cycles=cycles,
            utilization=utilization,
            spatial_pes=spatial,
            clock_ghz=self.accelerator.clock_ghz,
        )

    def evaluate_edp(self, mapping: Mapping, problem: Problem) -> float:
        """Shortcut for searchers that only need the scalar objective."""
        return self.evaluate(mapping, problem).edp

    def evaluate_many(self, mappings: Sequence[Mapping], problem: Problem) -> List[float]:
        """EDP for each mapping in a batch, priced in one vectorized pass.

        Thin wrapper over the batched analytical backend
        (:mod:`repro.costmodel.batch`): the batch is lowered to stacked
        numpy arrays once and the traffic/energy/cycles kernels run over
        the whole population.  Results match per-mapping :meth:`evaluate`
        to machine precision (see ``tests/test_costmodel_batch.py``);
        :meth:`evaluate` remains the scalar reference implementation.
        """
        if not len(mappings):
            return []
        return [float(edp) for edp in self.evaluate_batch(mappings, problem).edp]

    def evaluate_batch(
        self, mappings: Sequence[Mapping], problem: Problem
    ) -> BatchCostStats:
        """Full vectorized statistics for a whole batch of mappings.

        The batched analogue of :meth:`evaluate`: one
        :class:`~repro.costmodel.batch.BatchCostStats` holding stacked
        per-tensor/per-level access counts, cycles, utilization, and EDP
        for every mapping.  Callers that need a scalar row can rebuild it
        with :meth:`BatchCostStats.stats_at`.
        """
        return evaluate_batch(self.accelerator, mappings, problem)

    def evaluate_many_grouped(
        self, mappings: Sequence[Mapping], problems: Sequence[Problem]
    ) -> List[float]:
        """EDP for aligned ``(mappings[i], problems[i])`` lanes, one pass.

        The cross-problem analogue of :meth:`evaluate_many`: lanes over
        *different* problems are lowered into one padded/masked
        :class:`~repro.costmodel.batch.MegaBatch` and priced by a single
        run of the cost kernels.  Values are bitwise identical to pricing
        each problem's lanes through :meth:`evaluate_many` separately.
        """
        if not len(mappings):
            return []
        return self.evaluate_megabatch(mappings, problems).edp.tolist()

    def evaluate_megabatch(
        self, mappings: Sequence[Mapping], problems: Sequence[Problem]
    ) -> MegaBatchCostStats:
        """Full vectorized statistics for heterogeneous (mapping, problem) lanes.

        Returns a :class:`~repro.costmodel.batch.MegaBatchCostStats` in
        input-lane order; per-problem slices (``problem_slice``) and scalar
        rows (``stats_at``) rebuild the homogeneous views bitwise.
        """
        return evaluate_megabatch(self.accelerator, mappings, problems)

    # ------------------------------------------------------------------

    def _check_structure(self, mapping: Mapping, problem: Problem) -> None:
        if mapping.dims != problem.dim_names:
            raise ValueError(
                f"mapping dims {mapping.dims} do not match problem dims "
                f"{problem.dim_names}"
            )
        for dim in problem.dims:
            implied = mapping.dim_bound(dim.name)
            if implied != dim.bound:
                raise ValueError(
                    f"mapping factors of {dim.name} multiply to {implied}, "
                    f"problem bound is {dim.bound}"
                )

    # ---- traffic ------------------------------------------------------

    def _spatial_union_extents(self, mapping: Mapping) -> Dict[str, int]:
        """Per-dim extent of the union of all PEs' L1 tiles (L1 x spatial)."""
        extents = {}
        for dim, (dram, l2, s, l1) in zip(mapping.dims, mapping.tile_factors):
            extents[dim] = l1 * s
        return extents

    def _multicast_copies(self, mapping: Mapping, tensor: TensorSpec) -> int:
        """PEs receiving each word: product of irrelevant spatial factors."""
        copies = 1
        for dim, factor in mapping.spatial_factors.items():
            if not tensor.is_relevant(dim):
                copies *= factor
        return copies

    def _input_traffic(
        self, mapping: Mapping, nest: LoopNest, tensor: TensorSpec, spatial: int
    ) -> Tuple[Dict[str, float], float]:
        """Word-access counts per level, and NoC words, for an operand."""
        relevant = set(tensor.dims)
        fp_l2 = tensor.footprint(mapping.tile_extents("L2"))
        fp_union = tensor.footprint(self._spatial_union_extents(mapping))

        fills_l2 = fill_events(nest.above_level("L2"), relevant)
        dram_reads = fills_l2 * fp_l2

        fills_l1 = fill_events(nest.above_level("L1"), relevant)
        l2_reads = fills_l1 * fp_union  # multicast: each unique word read once
        copies = self._multicast_copies(mapping, tensor)
        deliveries = fills_l1 * fp_union * copies

        reg_fills = fill_events(nest.above_level("REG"), relevant)
        l1_reads = reg_fills * spatial

        traffic = {
            "DRAM": float(dram_reads),
            "L2": float(dram_reads + l2_reads),  # fill writes + drain reads
            "L1": float(deliveries + l1_reads),  # fill writes + compute reads
        }
        return traffic, float(deliveries)

    def _output_traffic(
        self, mapping: Mapping, nest: LoopNest, tensor: TensorSpec, spatial: int
    ) -> Tuple[Dict[str, float], float]:
        """Traffic for the output tensor: final writes + partial-sum spills.

        Every re-install of a partially-reduced tile beyond its first visit
        costs a write (evict) and a read (restore) at the boundary; the
        final visit writes the completed tile outward once.
        """
        relevant = set(tensor.dims)
        fp_l2 = tensor.footprint(mapping.tile_extents("L2"))
        fp_union = tensor.footprint(self._spatial_union_extents(mapping))
        fp_l1 = tensor.footprint(mapping.tile_extents("L1"))

        above_l2 = nest.above_level("L2")
        installs = fill_events(above_l2, relevant)
        distinct = distinct_tiles(above_l2, relevant)
        spills = installs - distinct
        dram_words = distinct * fp_l2 + 2.0 * spills * fp_l2

        above_l1 = nest.above_level("L1")
        installs_l1 = fill_events(above_l1, relevant)
        distinct_l1 = distinct_tiles(above_l1, relevant)
        spills_l1 = installs_l1 - distinct_l1
        drains = installs_l1 * fp_union  # every install eventually drains up
        restores = spills_l1 * fp_union
        l2_words = dram_words + drains + restores

        reg_updates = fill_events(nest.above_level("REG"), relevant)
        l1_words = 2.0 * reg_updates * spatial + (installs_l1 + spills_l1) * fp_l1 * spatial

        noc_words = (installs_l1 + spills_l1) * fp_l1 * spatial
        traffic = {"DRAM": float(dram_words), "L2": float(l2_words), "L1": float(l1_words)}
        return traffic, float(noc_words)

    # ---- cycles ---------------------------------------------------------

    def _cycles(
        self,
        nest: LoopNest,
        problem: Problem,
        spatial: int,
        level_words: Dict[str, float],
        l1_words: float,
    ) -> Tuple[float, float]:
        """Max of compute-bound and per-level bandwidth-bound cycle counts."""
        compute_cycles = float(nest.temporal_points) * problem.ops_per_point
        dram_cycles = level_words["DRAM"] / self.accelerator.bandwidth("DRAM")
        l2_cycles = level_words["L2"] / self.accelerator.bandwidth("L2")
        per_pe_l1 = l1_words / max(spatial, 1)
        l1_cycles = per_pe_l1 / self.accelerator.bandwidth("L1")
        cycles = max(compute_cycles, dram_cycles, l2_cycles, l1_cycles, 1.0)
        ideal = problem.total_ops / self.accelerator.num_pes
        utilization = min(ideal / cycles, 1.0)
        return cycles, utilization


__all__ = ["CostModel"]
