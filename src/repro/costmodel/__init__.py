"""Timeloop-style analytical cost model for flexible accelerators.

This package is the reproduction's stand-in for the Timeloop infrastructure
the paper uses as its reference cost function ``f(m)`` (paper section 5.1.2).
It models a spatial accelerator with

* ``num_pes`` processing elements, each with a private L1 buffer,
* a shared, banked L2 buffer,
* DRAM behind a fixed-bandwidth channel, and
* a flexible NoC that multicasts operands across PEs.

Given a :class:`~repro.mapspace.Mapping` and a
:class:`~repro.workloads.Problem`, :class:`CostModel` produces a
:class:`CostStats` holding the paper's meta-statistics vector (per-level
per-tensor energy, cycles, utilization, total energy) from which EDP is
derived.  The model is intentionally *non-smooth* in the mapping — tiling
cliffs, reuse discontinuities, utilization steps — because that structure is
precisely what makes mapping space search hard (paper Figure 3).
"""

from repro.costmodel.accelerator import Accelerator, EnergyTable, default_accelerator
from repro.costmodel.stats import CostStats, TensorLevelEnergy
from repro.costmodel.batch import (
    BatchCostStats,
    MappingBatch,
    MegaBatch,
    MegaBatchCostStats,
    compile_batch,
    compile_megabatch,
    edp_batch,
    evaluate_batch,
    evaluate_megabatch,
)
from repro.costmodel.model import CostModel
from repro.costmodel.cache import CacheStats, CachedOracle
from repro.costmodel.lower_bound import algorithmic_minimum
from repro.costmodel.nest import LoopNest, build_nest
from repro.costmodel.objective import OBJECTIVES, Objective, get_objective, weighted_objective

__all__ = [
    "Accelerator",
    "OBJECTIVES",
    "Objective",
    "BatchCostStats",
    "CacheStats",
    "CachedOracle",
    "CostModel",
    "CostStats",
    "EnergyTable",
    "LoopNest",
    "MappingBatch",
    "MegaBatch",
    "MegaBatchCostStats",
    "TensorLevelEnergy",
    "algorithmic_minimum",
    "build_nest",
    "compile_batch",
    "compile_megabatch",
    "default_accelerator",
    "edp_batch",
    "evaluate_batch",
    "evaluate_megabatch",
    "get_objective",
    "weighted_objective",
]
