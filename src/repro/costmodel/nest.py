"""Loop-nest construction and temporal-reuse analysis.

The analytical model reasons about the *full* loop nest implied by a mapping:
DRAM-level loops outermost, then L2-level loops, then (conceptually parallel)
spatial distribution, then L1-level loops innermost.  Temporal reuse follows
Timeloop's rule: a tensor's tile resident at some level must be re-filled
once per iteration of every loop above that level, *except* trailing loops
that are all irrelevant to the tensor — those iterate with the tile resident
and contribute pure reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container, Iterable, List, Sequence, Tuple

from repro.mapspace.mapping import Mapping, ORDER_LEVELS
from repro.utils import prod


@dataclass(frozen=True)
class Loop:
    """One temporal loop: the dimension it iterates, bound, home level."""

    dim: str
    bound: int
    level: str

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise ValueError(f"loop over {self.dim!r} has bound {self.bound}")


@dataclass(frozen=True)
class LoopNest:
    """The concatenated temporal loop nest of a mapping, outermost first.

    Bound-1 loops are dropped: they neither iterate nor break reuse, and
    eliding them keeps the reuse products exact while shrinking the walks.
    """

    loops: Tuple[Loop, ...]

    def at_level(self, level: str) -> Tuple[Loop, ...]:
        """The loops homed at ``level``."""
        return tuple(loop for loop in self.loops if loop.level == level)

    def above_level(self, level: str) -> Tuple[Loop, ...]:
        """All loops strictly outside the storage at ``level``.

        For L2 that is the DRAM-level loops; for L1 it is DRAM + L2 loops;
        for the register level (``level="REG"``) it is every temporal loop.
        """
        if level == "DRAM":
            return ()
        if level == "L2":
            return self.at_level("DRAM")
        if level == "L1":
            return self.at_level("DRAM") + self.at_level("L2")
        if level == "REG":
            return self.loops
        raise KeyError(f"unknown level {level!r}")

    @property
    def temporal_points(self) -> int:
        """Product of all temporal loop bounds (iterations per PE)."""
        return prod(loop.bound for loop in self.loops)


def build_nest(mapping: Mapping) -> LoopNest:
    """The temporal loop nest implied by ``mapping``.

    Each level contributes one loop per dimension in that level's loop
    order (outermost loop first); bound-1 loops are elided.
    """
    loops: List[Loop] = []
    for level in ORDER_LEVELS:
        factors = mapping.level_factors(level)
        for dim in mapping.loop_order(level):
            bound = factors[dim]
            if bound > 1:
                loops.append(Loop(dim=dim, bound=bound, level=level))
    return LoopNest(loops=tuple(loops))


def fill_events(loops_above: Sequence[Loop], relevant: Container[str]) -> int:
    """Times a tile must be (re)filled, given the loops outside its storage.

    Timeloop's temporal-reuse rule: multiply the bounds of every loop from
    the outermost down to the innermost loop whose dimension is *relevant*
    to the tensor.  Trailing irrelevant loops keep the tile resident (pure
    reuse) and do not contribute.  With no relevant loop above, the tile is
    filled exactly once.
    """
    last_relevant = -1
    for index, loop in enumerate(loops_above):
        if loop.dim in relevant:
            last_relevant = index
    return prod(loop.bound for loop in loops_above[: last_relevant + 1])


def distinct_tiles(loops_above: Sequence[Loop], relevant: Container[str]) -> int:
    """Number of *distinct* tiles touched, given the loops outside storage.

    Product of relevant loop bounds only.  ``fill_events / distinct_tiles``
    is the average number of times each tile is re-installed; for output
    tensors every re-install beyond the first is partial-sum spill traffic.
    """
    return prod(loop.bound for loop in loops_above if loop.dim in relevant)


def reuse_factor(loops_above: Sequence[Loop], relevant: Container[str]) -> float:
    """Temporal reuse: iterations that ran per tile fill (>= 1)."""
    total = prod(loop.bound for loop in loops_above)
    fills = fill_events(loops_above, relevant)
    return total / fills if fills else float(total)


__all__ = ["Loop", "LoopNest", "build_nest", "distinct_tiles", "fill_events", "reuse_factor"]
