"""Algorithmic-minimum oracle (paper section 5.2 and Appendix A).

The paper normalizes every search result to a *possibly unachievable*
theoretical lower bound on EDP: minimum energy assumes each tensor word is
accessed exactly once per memory-hierarchy level (perfect reuse, inclusive
hierarchy), and minimum delay assumes 100% PE utilization.  The product of
the two is the lower-bound EDP; real mappings trade one against the other,
so the bound is typically not achievable — it is a normalization constant,
not a target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.accelerator import Accelerator
from repro.workloads.problem import Problem


@dataclass(frozen=True)
class AlgorithmicMinimum:
    """Lower bounds on energy, delay, and EDP for one problem."""

    problem_name: str
    energy_pj: float
    cycles: float
    clock_ghz: float

    @property
    def energy_j(self) -> float:
        return self.energy_pj * 1e-12

    @property
    def delay_s(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def edp(self) -> float:
        """Lower-bound EDP in joule-seconds."""
        return self.energy_j * self.delay_s


def algorithmic_minimum(problem: Problem, accelerator: Accelerator) -> AlgorithmicMinimum:
    """Theoretical lower-bound cost (paper Appendix A).

    Energy: each word of each tensor is touched once at each level of the
    inclusive hierarchy (one DRAM access + one L2 access + one L1 access
    per word), plus one MAC per compute op.  Cycles: perfect utilization of
    all PEs at one op per PE per cycle.
    """
    energy = accelerator.energy
    per_word = energy.dram_access + energy.l2_access + energy.l1_access
    data_words = sum(problem.tensor_size(tensor) for tensor in problem.tensors)
    energy_pj = data_words * per_word + problem.total_ops * energy.mac
    cycles = max(problem.total_ops / accelerator.num_pes, 1.0)
    return AlgorithmicMinimum(
        problem_name=problem.name,
        energy_pj=energy_pj,
        cycles=cycles,
        clock_ghz=accelerator.clock_ghz,
    )


__all__ = ["AlgorithmicMinimum", "algorithmic_minimum"]
