"""Input/output whitening (paper sections 4.1.2-4.1.3).

Every value in the mapping vector and every meta-statistic is normalized to
mean 0 / standard deviation 1 *with respect to the training set* before it
reaches the surrogate.  The fitted statistics travel with the surrogate so
that Phase 2 can whiten fresh candidates identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass
class Whitener:
    """Affine standardization ``z = (x - mean) / std`` with frozen stats."""

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, data: np.ndarray, min_std: float = 1e-8) -> "Whitener":
        """Fit per-column statistics; constant columns get std 1.

        Constant columns (e.g. an attribute that never varies for this
        algorithm) would otherwise divide by ~0 and explode both training
        targets and Phase 2 gradients.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"expected 2-D data, got shape {data.shape}")
        mean = data.mean(axis=0)
        std = data.std(axis=0)
        std = np.where(std < min_std, 1.0, std)
        return cls(mean=mean, std=std)

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Whiten rows (or one row) of raw values."""
        return (np.asarray(data, dtype=np.float64) - self.mean) / self.std

    def inverse(self, data: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        return np.asarray(data, dtype=np.float64) * self.std + self.mean

    def transform_column(self, value: float, column: int) -> float:
        return (value - self.mean[column]) / self.std[column]

    def inverse_column(self, value: float, column: int) -> float:
        return value * self.std[column] + self.mean[column]

    @property
    def width(self) -> int:
        return int(self.mean.shape[0])

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {"mean": self.mean.copy(), "std": self.std.copy()}

    @classmethod
    def from_state(cls, state: Dict[str, np.ndarray]) -> "Whitener":
        return cls(mean=np.asarray(state["mean"]), std=np.asarray(state["std"]))


__all__ = ["Whitener"]
