"""Phase 2: projected gradient descent on the surrogate (paper section 4.2).

Implements the paper's seven-step loop with its published hyper-parameters
(Appendix A): learning rate 1 with no decay, a random valid mapping injected
every 10 iterations, accepted by a simulated-annealing criterion annealed by
0.75 every 50 injections.  The paper's initial temperature of 50 applies to
its linear normalized-EDP cost scale; our objective is log2-normalized EDP,
so the equivalent default here is 5 (same acceptance behaviour for typical
cost deltas).

Each descent iteration:

1. whiten the current valid mapping(s) into surrogate coordinates,
2. forward + backward through the surrogate for the predicted
   log2-normalized EDP and its gradient w.r.t. the input,
3. step ``x <- x - lr * grad`` (the problem-id section is frozen — it
   conditions the surrogate but is not searchable),
4. decode + project back onto the valid map space (nearest factorization /
   argsort permutation / bank rounding / capacity repair), and
5. periodically consider replacing each point with a fresh random mapping.

Crucially the *true* cost model is never queried during the search — only
the surrogate — which is where the iso-time advantage in Figure 6 comes
from.

**Vectorized multi-restart.**  ``restarts=R`` runs R independent descent
chains at once: every ``ask`` proposes all R current points, the batched
objective stacks them into one ``(R, D)`` tensor forward/backward
(:meth:`Surrogate.objective_and_gradient_batch`), and ``tell`` applies all
R projected updates.  One fused autograd pass per iteration instead of R —
the chains share nothing except the network weights, so results are
identical to R sequential chains with the same per-chain draws.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.surrogate import Surrogate
from repro.engine.registry import register_searcher
from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.search.base import Searcher
from repro.utils.rng import SeedLike, ensure_rng


@register_searcher("gradient", aliases=("mm", "mind-mappings"))
class GradientSearcher(Searcher):
    """Mind Mappings' gradient-based searcher (the paper's "MM")."""

    name = "MM"

    def __init__(
        self,
        space: MapSpace,
        surrogate: Surrogate,
        *,
        learning_rate: float = 1.0,
        inject_every: int = 10,
        initial_temperature: float = 5.0,
        temperature_decay: float = 0.75,
        decay_every_injections: int = 50,
        normalize_gradient: bool = True,
        escalate_when_stuck: bool = True,
        max_escalation: float = 16.0,
        restarts: int = 1,
    ) -> None:
        """``normalize_gradient`` scales each step to unit infinity-norm so
        step size is set by ``learning_rate`` alone (whitened units);
        ``escalate_when_stuck`` doubles the effective step whenever the
        projection rounds the update back to the current mapping — without
        it, small gradients can fail to cross a factorization rounding
        threshold and the search idles.  Both default on; disable both for
        the paper's literal update rule (the ablation benchmark compares).
        ``restarts`` runs that many descent chains in lockstep, fused into
        one stacked surrogate pass per iteration."""
        super().__init__(space)
        if surrogate.encoder.dims != space.problem.dim_names:
            raise ValueError(
                f"surrogate is for dims {surrogate.encoder.dims}, problem has "
                f"{space.problem.dim_names}"
            )
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if inject_every < 1:
            raise ValueError(f"inject_every must be >= 1, got {inject_every}")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        self.surrogate = surrogate
        self.learning_rate = learning_rate
        self.inject_every = inject_every
        self.initial_temperature = initial_temperature
        self.temperature_decay = temperature_decay
        self.decay_every_injections = decay_every_injections
        self.normalize_gradient = normalize_gradient
        self.escalate_when_stuck = escalate_when_stuck
        self.max_escalation = max_escalation
        self.restarts = restarts
        self._injecting = False
        self._stash: Optional[Tuple[List[Mapping], np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Objective (surrogate only — the true oracle is never queried)
    # ------------------------------------------------------------------

    def objective(self, mapping: Mapping) -> float:
        """Surrogate-predicted log2-normalized EDP for one mapping."""
        whitened = self.surrogate.whiten_mapping(mapping, self.problem)
        return float(self.surrogate.predict_log2_norm_edp(whitened)[0])

    def objective_batch(self, mappings: Sequence[Mapping]) -> List[float]:
        """Batch objective, fused with the gradients ``tell`` will need.

        On descent steps, one stacked forward/backward prices the whole
        batch *and* yields every chain's input gradient; the (whitened,
        gradient) pair is stashed so the following ``tell`` doesn't
        recompute the pass.  Injection candidates only need values, so they
        take the forward-only prediction path (same numbers, no backward).
        """
        mappings = list(mappings)
        whitened = self.surrogate.whiten_mappings(mappings, self.problem)
        if self._injecting:
            return [float(v) for v in self.surrogate.predict_log2_norm_edp(whitened)]
        values, gradients = self.surrogate.objective_and_gradient_batch(whitened)
        self._stash = (mappings, whitened, gradients)
        return [float(v) for v in values]

    def _gradients_for(
        self, mappings: Sequence[Mapping]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(whitened, gradients) rows for ``mappings``, from the stash when
        it matches (the driver evaluates exactly what was asked, possibly
        truncated to a prefix); recomputed otherwise so external drivers
        that score candidates elsewhere still descend correctly."""
        if self._stash is not None:
            stashed, whitened, gradients = self._stash
            n = len(mappings)
            if stashed[:n] == list(mappings):
                return whitened[:n], gradients[:n]
        whitened = self.surrogate.whiten_mappings(mappings, self.problem)
        _, gradients = self.surrogate.objective_and_gradient_batch(whitened)
        return whitened, gradients

    # ------------------------------------------------------------------
    # Ask/tell
    # ------------------------------------------------------------------

    def reset(self, seed: SeedLike = None, iterations: Optional[int] = None) -> None:
        self._rng = ensure_rng(seed)
        self._current = [self.space.sample(self._rng) for _ in range(self.restarts)]
        self._current_objectives = [math.inf] * self.restarts
        self._escalation = [1.0] * self.restarts
        self._temperature = self.initial_temperature
        self._injections = 0
        self._step = 0
        self._injecting = False
        self._stash: Optional[Tuple[List[Mapping], np.ndarray, np.ndarray]] = None

    def ask(self) -> List[Mapping]:
        if self._injecting:
            # Step 6: fresh random candidates, one per chain.
            return [self.space.sample(self._rng) for _ in range(len(self._current))]
        return list(self._current)

    def tell(self, mappings: Sequence[Mapping], values: Sequence[float]) -> None:
        if self._injecting:
            self._tell_injection(mappings, values)
            return
        self._tell_descent(mappings, values)

    def _tell_descent(
        self, mappings: Sequence[Mapping], values: Sequence[float]
    ) -> None:
        """Steps 2-5 for every chain, vectorized over the batch."""
        n = len(mappings)
        whitened, gradients = self._gradients_for(mappings)
        gradients = gradients.copy()
        mapping_slice = self.surrogate.encoder.layout.mapping_slice
        # The pid section conditions the surrogate but is not searchable.
        gradients[:, : mapping_slice.start] = 0.0
        if self.normalize_gradient:
            magnitude = np.abs(gradients).max(axis=1, keepdims=True)
            gradients = gradients / np.where(magnitude > 1e-12, magnitude, 1.0)
        escalation = np.asarray(self._escalation[:n], dtype=np.float64)[:, None]
        updated = whitened - self.learning_rate * escalation * gradients
        raw = self.surrogate.input_whitener.inverse(updated)
        for i in range(n):
            decoded = self.surrogate.encoder.decode(raw[i], self.space)
            if self.escalate_when_stuck:
                if decoded == mappings[i]:
                    self._escalation[i] = min(
                        self._escalation[i] * 2.0, self.max_escalation
                    )
                else:
                    self._escalation[i] = 1.0
            self._current[i] = decoded
            self._current_objectives[i] = float(values[i])
        self._step += 1
        if self._step % self.inject_every == 0:
            self._injecting = True

    def _tell_injection(
        self, mappings: Sequence[Mapping], values: Sequence[float]
    ) -> None:
        """SA-style acceptance of random injections, per chain."""
        for i, (candidate, candidate_objective) in enumerate(zip(mappings, values)):
            if i >= len(self._current):
                break
            if self._accept(
                float(candidate_objective),
                self._current_objectives[i],
                self._temperature,
                self._rng,
            ):
                self._current[i] = candidate
                self._current_objectives[i] = float(candidate_objective)
                self._escalation[i] = 1.0
        self._injections += 1
        if self._injections % self.decay_every_injections == 0:
            self._temperature *= self.temperature_decay
        self._injecting = False

    # ------------------------------------------------------------------

    def _accept(
        self,
        candidate: float,
        current: float,
        temperature: float,
        rng: np.random.Generator,
    ) -> bool:
        """Simulated-annealing acceptance for random injections."""
        if candidate <= current:
            return True
        if temperature <= 0:
            return False
        return bool(rng.random() < math.exp(-(candidate - current) / temperature))


__all__ = ["GradientSearcher"]
