"""Phase 2: projected gradient descent on the surrogate (paper section 4.2).

Implements the paper's seven-step loop with its published hyper-parameters
(Appendix A): learning rate 1 with no decay, a random valid mapping injected
every 10 iterations, accepted by a simulated-annealing criterion annealed by
0.75 every 50 injections.  The paper's initial temperature of 50 applies to
its linear normalized-EDP cost scale; our objective is log2-normalized EDP,
so the equivalent default here is 5 (same acceptance behaviour for typical
cost deltas).

Each iteration:

1. whiten the current valid mapping into surrogate coordinates,
2. forward + backward through the surrogate for the predicted
   log2-normalized EDP and its gradient w.r.t. the input,
3. step ``x <- x - lr * grad`` (the problem-id section is frozen — it
   conditions the surrogate but is not searchable),
4. decode + project back onto the valid map space (nearest factorization /
   argsort permutation / bank rounding / capacity repair), and
5. periodically consider replacing the point with a fresh random mapping.

Crucially the *true* cost model is never queried during the search — only
the surrogate — which is where the iso-time advantage in Figure 6 comes
from.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.surrogate import Surrogate
from repro.engine.registry import register_searcher
from repro.mapspace.mapping import Mapping
from repro.mapspace.space import MapSpace
from repro.search.base import BudgetedObjective, SearchResult, Searcher
from repro.utils.rng import SeedLike, ensure_rng


@register_searcher("gradient", aliases=("mm", "mind-mappings"))
class GradientSearcher(Searcher):
    """Mind Mappings' gradient-based searcher (the paper's "MM")."""

    name = "MM"

    def __init__(
        self,
        space: MapSpace,
        surrogate: Surrogate,
        *,
        learning_rate: float = 1.0,
        inject_every: int = 10,
        initial_temperature: float = 5.0,
        temperature_decay: float = 0.75,
        decay_every_injections: int = 50,
        normalize_gradient: bool = True,
        escalate_when_stuck: bool = True,
        max_escalation: float = 16.0,
    ) -> None:
        """``normalize_gradient`` scales each step to unit infinity-norm so
        step size is set by ``learning_rate`` alone (whitened units);
        ``escalate_when_stuck`` doubles the effective step whenever the
        projection rounds the update back to the current mapping — without
        it, small gradients can fail to cross a factorization rounding
        threshold and the search idles.  Both default on; disable both for
        the paper's literal update rule (the ablation benchmark compares)."""
        super().__init__(space)
        if surrogate.encoder.dims != space.problem.dim_names:
            raise ValueError(
                f"surrogate is for dims {surrogate.encoder.dims}, problem has "
                f"{space.problem.dim_names}"
            )
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if inject_every < 1:
            raise ValueError(f"inject_every must be >= 1, got {inject_every}")
        self.surrogate = surrogate
        self.learning_rate = learning_rate
        self.inject_every = inject_every
        self.initial_temperature = initial_temperature
        self.temperature_decay = temperature_decay
        self.decay_every_injections = decay_every_injections
        self.normalize_gradient = normalize_gradient
        self.escalate_when_stuck = escalate_when_stuck
        self.max_escalation = max_escalation

    # ------------------------------------------------------------------

    def search(
        self,
        iterations: int,
        seed: SeedLike = None,
        time_budget_s: Optional[float] = None,
    ) -> SearchResult:
        rng = ensure_rng(seed)
        budget = self.make_budget(
            self._predict,  # only used by .evaluate on injection candidates
            iterations,
            time_budget_s,
        )
        layout = self.surrogate.encoder.layout
        mapping_slice = layout.mapping_slice

        current = self.space.sample(rng)
        whitened = self.surrogate.whiten_mapping(current, self.problem)
        temperature = self.initial_temperature
        injections = 0
        step = 0
        escalation = 1.0
        current_objective = math.inf

        while not budget.exhausted:
            # Steps 2-3: surrogate forward/backward — one fused evaluation.
            objective, gradient = self.surrogate.objective_and_gradient(whitened)
            budget.record(current, objective)
            current_objective = objective

            # Step 4: gradient update on the mapping section only.
            gradient[: mapping_slice.start] = 0.0
            if self.normalize_gradient:
                magnitude = float(np.abs(gradient).max())
                if magnitude > 1e-12:
                    gradient = gradient / magnitude
            updated = whitened - self.learning_rate * escalation * gradient

            # Step 5: project back onto the valid map space.
            raw = self.surrogate.input_whitener.inverse(updated)
            decoded = self.surrogate.encoder.decode(raw, self.space)
            if self.escalate_when_stuck:
                if decoded == current:
                    escalation = min(escalation * 2.0, self.max_escalation)
                else:
                    escalation = 1.0
            current = decoded
            whitened = self.surrogate.whiten_mapping(current, self.problem)

            # Step 6: periodic random injection with SA-style acceptance.
            step += 1
            if step % self.inject_every == 0 and not budget.exhausted:
                candidate = self.space.sample(rng)
                candidate_objective = budget.evaluate(candidate)
                if self._accept(
                    candidate_objective, current_objective, temperature, rng
                ):
                    current = candidate
                    whitened = self.surrogate.whiten_mapping(current, self.problem)
                    current_objective = candidate_objective
                injections += 1
                if injections % self.decay_every_injections == 0:
                    temperature *= self.temperature_decay
        return budget.result(self.name, self.problem.name)

    # ------------------------------------------------------------------

    def _predict(self, mapping: Mapping) -> float:
        """Surrogate-predicted log2-normalized EDP for one mapping."""
        whitened = self.surrogate.whiten_mapping(mapping, self.problem)
        return float(self.surrogate.predict_log2_norm_edp(whitened)[0])

    def _accept(
        self,
        candidate: float,
        current: float,
        temperature: float,
        rng: np.random.Generator,
    ) -> bool:
        """Simulated-annealing acceptance for random injections."""
        if candidate <= current:
            return True
        if temperature <= 0:
            return False
        return bool(rng.random() < math.exp(-(candidate - current) / temperature))


__all__ = ["GradientSearcher"]
